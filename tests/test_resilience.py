"""Tests for the resilience subsystem: fault plans, injector hooks,
forward-progress watchdog, structured errors, and the crash-tolerant
harness (timeouts, retries, quarantine, checkpoint resume)."""

import time

import pytest

from repro.common.errors import (
    ConfigError,
    CoreDiagnostic,
    DeadlockError,
    EventBudgetError,
    LivelockError,
    ProtocolInvariantError,
    RunTimeoutError,
    SimulationError,
)
from repro.common.stats import RunStats
from repro.harness.export import fingerprint
from repro.harness.multiseed import multi_seed_runs_resilient
from repro.harness.sweeps import Sweep
from repro.harness.systems import get_system
from repro.htm.isa import Plain, Txn, compute, store
from repro.resilience import (
    FaultPlan,
    WatchdogConfig,
    chaos_monkey,
    default_campaign,
    delay_jitter,
    diagnose_machine,
    get_plan,
    lossy_delivery,
    nack_storm,
    plan_names,
)
from repro.resilience.harness import (
    QuarantineRecord,
    RetryPolicy,
    SweepCheckpoint,
    call_with_timeout,
    run_sweep_resilient,
)
from repro.sim.engine import SimEngine
from repro.sim.fuzz import case_programs, fuzz_params
from repro.sim.machine import Machine


def make_machine(progs, system, seed=0, plan=None, watchdog=None):
    return Machine(
        fuzz_params(max(4, len(progs))),
        get_system(system),
        progs,
        seed=seed,
        fault_plan=plan,
        watchdog=watchdog,
    )


def run_and_observe(progs, system, seed=0, plan=None, watchdog=None):
    m = make_machine(progs, system, seed, plan, watchdog)
    cycles = m.run()
    stats = RunStats(execution_cycles=cycles, cores=m.core_stats)
    return cycles, m.engine.events_processed, fingerprint(stats), m


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_default_is_empty(self):
        assert FaultPlan().empty

    def test_any_knob_makes_non_empty(self):
        assert not FaultPlan(msg_jitter_prob=0.1).empty
        assert not FaultPlan(disable_wakeup_timeout=True).empty
        assert not FaultPlan(escape_rejects=3).empty

    def test_validates_probabilities(self):
        with pytest.raises(ConfigError):
            FaultPlan(msg_jitter_prob=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(drop_nack_prob=-0.1)

    def test_validates_magnitudes(self):
        with pytest.raises(ConfigError):
            FaultPlan(msg_jitter_max=-1)
        with pytest.raises(ConfigError):
            FaultPlan(escape_rejects=0)

    def test_compose_takes_max_and_or(self):
        a = FaultPlan(name="a", msg_jitter_prob=0.3, escape_rejects=5)
        b = FaultPlan(
            name="b",
            msg_jitter_prob=0.1,
            drop_wakeup_prob=0.4,
            disable_wakeup_timeout=True,
            escape_rejects=2,
        )
        c = a | b
        assert c.name == "a+b"
        assert c.msg_jitter_prob == 0.3
        assert c.drop_wakeup_prob == 0.4
        assert c.disable_wakeup_timeout
        assert c.escape_rejects == 2  # tighter threshold wins

    def test_with_name_and_describe(self):
        p = delay_jitter().with_name("renamed")
        assert p.name == "renamed"
        assert "renamed" in p.describe()
        assert "msg_jitter_prob" in p.describe()
        assert "empty" in FaultPlan().describe()

    def test_registry(self):
        names = plan_names()
        assert "jitter" in names and "chaos-monkey" in names
        for name in names:
            assert not get_plan(name).empty

    def test_registry_unknown(self):
        with pytest.raises(ConfigError):
            get_plan("no-such-plan")

    def test_default_campaign(self):
        plans = default_campaign()
        assert len(plans) >= 3
        assert len({p.name for p in plans}) == len(plans)


# ----------------------------------------------------------------------
# Determinism and the zero-overhead-when-off contract
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_plan_identical(self):
        progs = case_programs(7, 2)
        runs = [
            run_and_observe(progs, "LockillerTM", seed=9, plan=chaos_monkey())
            for _ in range(2)
        ]
        (cyc_a, ev_a, fp_a, ma), (cyc_b, ev_b, fp_b, mb) = runs
        assert (cyc_a, ev_a, fp_a) == (cyc_b, ev_b, fp_b)
        assert ma.injector.summary() == mb.injector.summary()

    def test_injection_actually_happens(self):
        progs = case_programs(7, 2)
        _, _, _, m = run_and_observe(
            progs, "LockillerTM", seed=9, plan=chaos_monkey()
        )
        assert sum(m.injector.summary().values()) > 0

    def test_different_seed_different_schedule(self):
        progs = case_programs(7, 2)
        _, _, _, a = run_and_observe(
            progs, "LockillerTM", seed=9, plan=chaos_monkey()
        )
        _, _, _, b = run_and_observe(
            progs, "LockillerTM", seed=10, plan=chaos_monkey()
        )
        # Not bit-identical schedules (astronomically unlikely to match).
        assert a.injector.summary() != b.injector.summary() or (
            a.engine.events_processed != b.engine.events_processed
        )

    def test_empty_plan_is_zero_overhead(self):
        progs = case_programs(3, 1)
        for system in ("CGL", "Baseline", "LockillerTM"):
            clean = run_and_observe(progs, system, seed=4, plan=None)
            empty = run_and_observe(progs, system, seed=4, plan=FaultPlan())
            assert clean[:3] == empty[:3]
            assert empty[3].injector is None

    def test_watchdog_does_not_perturb_timing(self):
        progs = case_programs(3, 1)
        clean = run_and_observe(progs, "LockillerTM", seed=4)
        watched = run_and_observe(
            progs, "LockillerTM", seed=4, watchdog=WatchdogConfig()
        )
        assert clean[0] == watched[0]
        assert clean[2] == watched[2]


# ----------------------------------------------------------------------
# Watchdog and structured errors
# ----------------------------------------------------------------------

CONFLICT_PROGS = [
    [Txn([store(0, 1), compute(50)])],
    [Txn([store(0, 1), compute(50)])],
]


class TestWatchdog:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(horizon=0)
        with pytest.raises(ValueError):
            WatchdogConfig(check_every=-1)
        assert WatchdogConfig(horizon=100).period == 25
        assert WatchdogConfig(horizon=100, check_every=7).period == 7

    def test_reject_storm_livelock_detected(self):
        # RETRY_LATER never burns the retry budget, so a full reject
        # storm livelocks — exactly what the watchdog must catch.
        storm = FaultPlan(name="storm", reject_storm_prob=1.0)
        m = make_machine(
            CONFLICT_PROGS,
            "LockillerTM-RRI",
            seed=3,
            plan=storm,
            watchdog=WatchdogConfig(horizon=200_000),
        )
        with pytest.raises(LivelockError) as exc_info:
            m.run()
        err = exc_info.value
        assert err.now >= 200_000
        assert err.replay["system"] == "LockillerTM-RRI"
        assert err.replay["fault_plan"] == "storm"
        assert len(err.cores) == 2
        assert all(isinstance(c, CoreDiagnostic) for c in err.cores)
        assert all(c.commits == 0 for c in err.cores)
        assert "core 0" in str(err) and "replay" in str(err)

    def test_escape_hatch_degrades_to_fallback(self):
        # The same storm with the escape hatch armed: rejects burn the
        # budget, the txns take the lock path, and the run completes.
        esc = FaultPlan(
            name="storm-esc", reject_storm_prob=1.0, escape_rejects=3
        )
        m = make_machine(
            CONFLICT_PROGS,
            "LockillerTM-RRI",
            seed=3,
            plan=esc,
            watchdog=WatchdogConfig(horizon=200_000),
        )
        m.run()
        assert m.injector.escapes_taken > 0
        assert sum(cs.commits for cs in m.core_stats) == 2
        assert sum(cs.commits_lock for cs in m.core_stats) > 0

    def test_event_budget_becomes_livelock_error(self):
        storm = FaultPlan(name="storm", reject_storm_prob=1.0)
        m = make_machine(CONFLICT_PROGS, "LockillerTM-RRI", seed=3, plan=storm)
        m.engine._max_events = 20_000  # no watchdog: budget is the guard
        with pytest.raises(LivelockError) as exc_info:
            m.run()
        assert isinstance(exc_info.value.__cause__, EventBudgetError)
        assert "event budget" in str(exc_info.value)

    def test_diagnose_machine_shape(self):
        m = make_machine(CONFLICT_PROGS, "LockillerTM", seed=0)
        diags = diagnose_machine(m)
        assert [d.core for d in diags] == [0, 1]
        assert all("core" in d.render() for d in diags)


class TestStructuredErrors:
    def test_event_budget_error_is_simulation_error(self):
        err = EventBudgetError(1000, 42)
        assert isinstance(err, SimulationError)
        assert err.max_events == 1000 and err.now == 42

    def test_engine_step_enforces_budget(self):
        eng = SimEngine(max_events=5)

        def respawn(t):
            eng.schedule_after(1, respawn)

        eng.schedule(0, respawn)
        with pytest.raises(EventBudgetError):
            for _ in range(100):
                if not eng.step():
                    pytest.fail("heap drained before budget")

    def test_deadlock_from_stranded_waiter(self):
        # Core 1 parks on core 0; the wake-up is dropped and the timeout
        # guard disabled, so the heap drains with core 1 unfinished.
        progs = [
            [Txn([store(0, 1), compute(400)])],
            [Plain([compute(100)]), Txn([store(0, 1)])],
        ]
        plan = FaultPlan(
            name="strand", drop_wakeup_prob=1.0, disable_wakeup_timeout=True
        )
        m = make_machine(progs, "LockillerTM-RWI", seed=0, plan=plan)
        with pytest.raises(DeadlockError):
            m.run()
        assert m.injector.wakeups_dropped >= 1

    def test_wakeup_timeout_recovers_dropped_wakeup(self):
        # Same scenario with the timeout guard active: the stranded
        # waiter recovers on its own and the run completes.
        progs = [
            [Txn([store(0, 1), compute(400)])],
            [Plain([compute(100)]), Txn([store(0, 1)])],
        ]
        plan = FaultPlan(name="lossy-wakeup", drop_wakeup_prob=1.0)
        m = make_machine(progs, "LockillerTM-RWI", seed=0, plan=plan)
        m.run()
        assert sum(cs.commits for cs in m.core_stats) == 2
        assert sum(cs.wakeup_timeouts for cs in m.core_stats) >= 1

    def test_check_quiescent_reports_problems(self):
        m = make_machine([[Txn([store(0, 1)])]], "LockillerTM", seed=0)
        m.run()
        assert m.memsys.check_quiescent() == []
        m.memsys.tx_readers[0x40] = 1 << 0  # core bitmask
        m.memsys.sig_owner = 0
        m.memsys.of_rd_sig.insert(0x40)
        problems = m.memsys.check_quiescent()
        assert any("tx_readers" in p for p in problems)
        assert any("owned" in p for p in problems)
        assert any("signatures not cleared" in p for p in problems)

    def test_paranoid_raises_protocol_invariant(self):
        from repro.coherence.cachearray import MESI

        m = make_machine([[], []], "LockillerTM", seed=0)
        m.memsys.paranoid = True
        # Smuggle an untracked line into core 1's L1: SWMR bookkeeping
        # no longer matches the directory.
        m.memsys.l1s[1].insert(0x1000 << 6, MESI.M, pinned=None)
        with pytest.raises(ProtocolInvariantError):
            m.memsys.access(0, 0x40, False, 0)

    def test_livelock_error_render(self):
        diag = CoreDiagnostic(
            core=0,
            mode="HTM",
            aborted=False,
            done=False,
            parked=True,
            retries_left=2,
            attempts=5,
            priority=7,
            commits=0,
        )
        err = LivelockError(
            "stuck",
            now=123,
            cores=[diag],
            replay={"seed": 1},
            pending_events=4,
        )
        text = str(err)
        assert "stuck" in text and "t=123" in text
        assert "parked" in text and "retries_left=2" in text


# ----------------------------------------------------------------------
# Crash-tolerant harness
# ----------------------------------------------------------------------


class TestRetryAndTimeout:
    def test_retry_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(timeout_s=0)

    def test_no_timeout_passthrough(self):
        assert call_with_timeout(lambda: 42, None) == 42
        assert call_with_timeout(lambda: 42, 0) == 42

    def test_timeout_fires(self):
        def spin():
            deadline = time.time() + 5.0
            while time.time() < deadline:
                pass
            return "never"

        t0 = time.time()
        with pytest.raises(RunTimeoutError):
            call_with_timeout(spin, 0.2)
        assert time.time() - t0 < 4.0

    def test_timeout_restores_handler(self):
        import signal

        before = signal.getsignal(signal.SIGALRM)
        call_with_timeout(lambda: None, 1.0)
        assert signal.getsignal(signal.SIGALRM) is before


def tiny_sweep(systems=("CGL", "LockillerTM")):
    return Sweep(
        workloads=("ssca2",),
        systems=systems,
        threads=(2,),
        seeds=(1,),
        scale=0.05,
    )


class TestResilientSweep:
    def test_clean_sweep_matches_plain_run(self):
        sweep = tiny_sweep()
        plain = sweep.run()
        report = sweep.run_resilient()
        assert report.ok
        assert report.executed == sweep.size()
        assert len(report.results) == len(plain)
        for r_plain, r_res in zip(plain.records, report.results.records):
            assert r_plain.point == r_res.point
            assert fingerprint(r_plain.stats) == fingerprint(r_res.stats)

    def test_quarantine_keeps_campaign_alive(self):
        def resolver(name):
            if name == "Broken":
                raise ConfigError("deliberately broken system")
            return get_system(name)

        sweep = tiny_sweep(systems=("CGL", "Broken", "LockillerTM"))
        sweep.spec_resolver = resolver
        report = run_sweep_resilient(sweep, retry=RetryPolicy(max_attempts=2))
        assert not report.ok
        assert len(report.results) == 2  # the good cells survived
        (q,) = report.quarantined
        assert q.replay["system"] == "Broken"
        assert q.attempts == 2
        assert q.error_type == "ConfigError"
        assert "Broken" in report.render()

    def test_checkpoint_resume(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        sweep = tiny_sweep()
        first = run_sweep_resilient(sweep, checkpoint_path=path)
        assert first.executed == sweep.size() and first.resumed == 0
        second = run_sweep_resilient(sweep, checkpoint_path=path)
        assert second.executed == 0 and second.resumed == sweep.size()
        for a, b in zip(first.results.records, second.results.records):
            assert fingerprint(a.stats) == fingerprint(b.stats)

    def test_checkpoint_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        sweep = tiny_sweep(systems=("CGL",))
        stats = sweep.run().records[0].stats
        ckpt = SweepCheckpoint(path)
        ckpt.put("cell", stats, meta={"system": "CGL"})
        ckpt.quarantine(
            QuarantineRecord("bad", {"seed": 1}, "ValueError", "boom", 2)
        )
        ckpt.save()
        loaded = SweepCheckpoint.load(path)
        assert loaded.has("cell") and not loaded.has("other")
        assert fingerprint(loaded.get("cell")) == fingerprint(stats)
        (q,) = loaded.quarantined
        assert q.label == "bad" and q.attempts == 2

    def test_multi_seed_resilient(self, tmp_path):
        path = str(tmp_path / "seeds.json")
        runs, quarantined = multi_seed_runs_resilient(
            "ssca2", "CGL", 2, seeds=(1, 2), scale=0.05, checkpoint_path=path
        )
        assert len(runs) == 2 and not quarantined
        again, _ = multi_seed_runs_resilient(
            "ssca2", "CGL", 2, seeds=(1, 2), scale=0.05, checkpoint_path=path
        )
        assert [fingerprint(r) for r in again] == [
            fingerprint(r) for r in runs
        ]
