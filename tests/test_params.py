"""Unit tests for repro.common.params (Table I configurations)."""

import pytest

from repro.common.params import (
    CacheParams,
    HtmParams,
    MemoryParams,
    NetworkParams,
    SystemParams,
    large_cache_params,
    small_cache_params,
    typical_params,
)


class TestCacheParams:
    def test_table1_l1_geometry(self):
        l1 = CacheParams(32 * 1024, 4, 2)
        assert l1.num_lines == 512
        assert l1.num_sets == 128

    def test_table1_llc_geometry(self):
        llc = CacheParams(8 * 1024 * 1024, 16, 12)
        assert llc.num_lines == 131072
        assert llc.num_sets == 8192

    def test_set_index_wraps(self):
        l1 = CacheParams(8 * 64, 2, 1)
        assert l1.num_sets == 4
        assert l1.set_index(0) == 0
        assert l1.set_index(5) == 1
        assert l1.set_index(7) == 3
        assert l1.set_index(8) == 0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            CacheParams(0, 4, 2)

    def test_rejects_nonpositive_assoc(self):
        with pytest.raises(ValueError):
            CacheParams(1024, 0, 2)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ValueError):
            CacheParams(1000, 3, 2)

    def test_frozen(self):
        l1 = CacheParams(32 * 1024, 4, 2)
        with pytest.raises(AttributeError):
            l1.assoc = 8


class TestNetworkParams:
    def test_defaults_match_table1(self):
        n = NetworkParams()
        assert (n.mesh_cols, n.mesh_rows) == (4, 8)
        assert n.num_tiles == 32
        assert n.link_latency == 1
        assert n.data_flits == 5
        assert n.control_flits == 1
        assert n.flit_bytes == 16


class TestSystemParams:
    def test_typical_matches_table1(self):
        p = typical_params()
        assert p.num_cores == 32
        assert p.l1.size_bytes == 32 * 1024
        assert p.llc.size_bytes == 8 * 1024 * 1024
        assert p.memory.latency == 100

    def test_small_cache_config(self):
        p = small_cache_params()
        assert p.l1.size_bytes == 8 * 1024
        assert p.llc.size_bytes == 1024 * 1024

    def test_large_cache_config(self):
        p = large_cache_params()
        assert p.l1.size_bytes == 128 * 1024
        assert p.llc.size_bytes == 32 * 1024 * 1024

    def test_overrides(self):
        p = typical_params(num_cores=8)
        assert p.num_cores == 8
        p2 = small_cache_params(num_cores=2)
        assert p2.num_cores == 2 and p2.l1.size_bytes == 8 * 1024

    def test_too_many_cores_rejected(self):
        with pytest.raises(ValueError):
            SystemParams(num_cores=64)

    def test_memory_defaults(self):
        m = MemoryParams()
        assert m.size_bytes == 8 << 30

    def test_htm_defaults_sane(self):
        h = HtmParams()
        assert h.max_retries > 0
        assert h.signature_bits & (h.signature_bits - 1) == 0
        assert h.backoff_cap >= h.backoff_base
