"""Property-based end-to-end tests: atomicity and isolation hold for
randomly generated transactional programs on every evaluated system.

The generator draws arbitrary small multi-threaded programs over a tiny,
highly-contended address space — the worst case for the conflict
machinery.  The runner itself asserts the interleaving-independent final
memory image (every transaction commits exactly once, no lost or leaked
speculative updates), SWMR, and quiescence; anything wrong raises.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.systems import get_system
from repro.htm.isa import Plain, Txn, compute, fault, load, store
from repro.sim.machine import Machine
from repro.common.params import CacheParams, SystemParams
from repro.workloads.base import expected_final_memory

SYSTEMS = [
    "CGL",
    "Baseline",
    "LosaTM-SAFU",
    "LockillerTM-RAI",
    "LockillerTM-RRI",
    "LockillerTM-RWI",
    "LockillerTM-RWL",
    "LockillerTM-RWIL",
    "LockillerTM",
]

N_LINES = 6  # tiny shared space -> heavy contention


@st.composite
def txn_ops(draw):
    n = draw(st.integers(1, 6))
    ops = [compute(draw(st.integers(1, 8)))]
    for _ in range(n):
        kind = draw(st.integers(0, 2))
        line = draw(st.integers(0, N_LINES - 1))
        if kind == 0:
            ops.append(load(line * 64))
        elif kind == 1:
            ops.append(store(line * 64, draw(st.integers(1, 3))))
        else:
            ops.append(compute(draw(st.integers(1, 5))))
    if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
        ops.insert(1, fault(persistent=draw(st.booleans())))
    return ops


@st.composite
def programs(draw):
    n_threads = draw(st.integers(1, 4))
    progs = []
    for _ in range(n_threads):
        segments = []
        for _ in range(draw(st.integers(1, 4))):
            if draw(st.booleans()):
                segments.append(Txn(draw(txn_ops())))
            else:
                ops = [compute(draw(st.integers(1, 20)))]
                if draw(st.booleans()):
                    ops.append(
                        store(
                            draw(st.integers(0, N_LINES - 1)) * 64,
                            draw(st.integers(1, 2)),
                        )
                    )
                segments.append(Plain(ops))
        progs.append(segments)
    return progs


def tiny_machine_params():
    return SystemParams(
        num_cores=4,
        l1=CacheParams(4 * 64, 2, 2),  # 2 sets x 2 ways: overflow-prone
        llc=CacheParams(1024 * 64, 16, 12),
    )


@pytest.mark.parametrize("system", SYSTEMS)
@given(progs=programs(), seed=st.integers(0, 2**16))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_programs_preserve_atomicity(system, progs, seed):
    machine = Machine(
        tiny_machine_params(), get_system(system), progs, seed=seed
    )
    machine.run()
    expected = expected_final_memory(progs)
    got = {a: v for a, v in machine.memsys.memory.items() if v != 0}
    assert got == expected
    assert machine.memsys.check_quiescent() == []
    assert not machine.fallback_lock.held
    assert machine.hl_arbiter.owner is None
    # Every transaction committed exactly once.
    n_txns = sum(1 for p in progs for s in p if isinstance(s, Txn))
    commits = sum(cs.commits for cs in machine.core_stats)
    assert commits == n_txns


@given(progs=programs(), seed=st.integers(0, 2**10))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_paranoid_swmr_every_access(progs, seed):
    """Run with per-access SWMR checking enabled (LockillerTM stack)."""
    machine = Machine(
        tiny_machine_params(), get_system("LockillerTM"), progs, seed=seed
    )
    machine.memsys.paranoid = True
    machine.run()


@given(progs=programs())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_all_systems_agree_on_final_memory(progs):
    images = []
    for system in ("CGL", "Baseline", "LockillerTM"):
        machine = Machine(
            tiny_machine_params(), get_system(system), progs, seed=3
        )
        machine.run()
        images.append(
            {a: v for a, v in machine.memsys.memory.items() if v != 0}
        )
    assert images[0] == images[1] == images[2]
