"""Unit tests driving MemorySystem directly (through an idle machine)."""

import pytest

from repro.common.errors import ProtocolInvariantError
from repro.common.params import (
    CacheParams,
    SystemParams,
    typical_params,
)
from repro.common.stats import AbortReason
from repro.coherence.memsys import GRANT, OVERFLOW, REJECT
from repro.coherence.states import MESI
from repro.htm.txstate import TxMode
from conftest import idle_machine, line_addr, make_machine


def tiny_params(l1_sets=4, l1_ways=2, llc_lines=4096, num_cores=4):
    return SystemParams(
        num_cores=num_cores,
        l1=CacheParams(l1_sets * l1_ways * 64, l1_ways, 2),
        llc=CacheParams(llc_lines * 64, 16, 12),
    )


class TestPlainCoherence:
    def test_cold_read_grants_exclusive(self):
        m = idle_machine()
        ms = m.memsys
        res = ms.access(0, line_addr(5), False, 0)
        assert res.status == GRANT and not res.hit
        assert ms.l1s[0].probe(5) == MESI.E
        assert ms.directory.owner_of(5) == 0
        assert res.latency > m.params.l1.hit_latency

    def test_read_hit_cheap(self):
        m = idle_machine()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        res = ms.access(0, line_addr(5), False, 100)
        assert res.hit and res.latency == m.params.l1.hit_latency

    def test_second_reader_shares(self):
        m = idle_machine()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        ms.access(1, line_addr(5), False, 50)
        assert ms.l1s[0].probe(5) == MESI.S
        assert ms.l1s[1].probe(5) == MESI.S
        assert ms.directory.copies(5) == {0, 1}
        ms.directory.check_swmr(ms.l1s)

    def test_write_invalidates_sharers(self):
        m = idle_machine()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        ms.access(1, line_addr(5), False, 50)
        ms.access(2, line_addr(5), True, 100)
        assert ms.l1s[0].probe(5) == MESI.I
        assert ms.l1s[1].probe(5) == MESI.I
        assert ms.l1s[2].probe(5) == MESI.M
        assert ms.directory.owner_of(5) == 2
        ms.directory.check_swmr(ms.l1s)

    def test_silent_e_to_m_upgrade(self):
        m = idle_machine()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        res = ms.access(0, line_addr(5), True, 10)
        assert res.hit
        assert ms.l1s[0].probe(5) == MESI.M
        assert ms.directory.owner_of(5) == 0

    def test_s_to_m_upgrade_via_directory(self):
        m = idle_machine()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        ms.access(1, line_addr(5), False, 50)  # both S now
        res = ms.access(0, line_addr(5), True, 100)
        assert res.status == GRANT and not res.hit
        assert ms.l1s[0].probe(5) == MESI.M
        assert ms.l1s[1].probe(5) == MESI.I

    def test_dirty_forward_from_owner(self):
        m = idle_machine()
        ms = m.memsys
        ms.access(0, line_addr(5), True, 0)   # core0 M
        res = ms.access(1, line_addr(5), False, 100)
        assert res.status == GRANT
        assert ms.l1s[0].probe(5) == MESI.S
        assert ms.l1s[1].probe(5) == MESI.S
        assert ms.directory.owner_of(5) == -1
        assert ms.directory.copies(5) == {0, 1}

    def test_llc_miss_costs_memory_latency(self):
        m = idle_machine()
        ms = m.memsys
        cold = ms.access(0, line_addr(7), False, 0)
        ms.l1s[0].invalidate(7)
        ms.directory.remove_copy(7, 0)
        warm = ms.access(0, line_addr(7), False, 10_000)
        assert cold.latency - warm.latency >= m.params.memory.latency

    def test_directory_busy_serializes(self):
        m = idle_machine()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        busy = ms.directory.entry(5).busy_until
        assert busy > 0
        res = ms.access(1, line_addr(5), False, 1)
        # Second request queues behind the first transaction's window.
        assert res.latency > ms.access(2, line_addr(6), False, busy + 500).latency or res.latency > 0


class TestFunctionalPlane:
    def test_plain_store_applies_immediately(self):
        m = idle_machine()
        ms = m.memsys
        ms.functional_store(0, 320, 5)
        assert ms.functional_load(1, 320) == 5

    def test_htm_store_buffered_until_publish(self):
        m = idle_machine()
        ms = m.memsys
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        ms.functional_store(0, 320, 5)
        assert ms.memory.get(320, 0) == 0
        assert ms.functional_load(0, 320) == 5     # own buffer visible
        assert ms.functional_load(1, 320) == 0     # isolated
        ms.publish(tx)
        assert ms.memory[320] == 5

    def test_lock_mode_writes_through(self):
        m = idle_machine(system="LockillerTM")
        ms = m.memsys
        tx = m.cpus[0].tx
        tx.begin(TxMode.TL, 0)
        ms.functional_store(0, 320, 7)
        assert ms.memory[320] == 7

    def test_zero_delta_not_materialized(self):
        m = idle_machine()
        m.memsys.functional_store(0, 320, 0)
        assert 320 not in m.memsys.memory


class TestTransactionalTracking:
    def _tx_access(self, m, core, line, write, now=0):
        return m.memsys.access(core, line_addr(line), write, now)

    def test_sets_and_maps_populated(self):
        m = idle_machine()
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        self._tx_access(m, 0, 5, False)
        self._tx_access(m, 0, 6, True)
        assert 5 in tx.read_set and 6 in tx.write_set
        assert m.memsys.tx_readers[5] == 1 << 0  # core bitmask
        assert m.memsys.tx_writers[6] == 1 << 0

    def test_retire_clears_but_keeps_lines(self):
        m = idle_machine()
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        self._tx_access(m, 0, 6, True)
        m.memsys.retire_tx(0)
        assert not m.memsys.tx_writers
        assert m.memsys.l1s[0].probe(6) == MESI.M  # committed data stays

    def test_discard_flash_clears_all_tx_lines(self):
        m = idle_machine()
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        self._tx_access(m, 0, 5, False)
        self._tx_access(m, 0, 6, True)
        m.memsys.discard_tx(0)
        assert not m.memsys.tx_readers and not m.memsys.tx_writers
        assert m.memsys.l1s[0].probe(5) == MESI.I
        assert m.memsys.l1s[0].probe(6) == MESI.I
        assert tx.last_write_count == 1
        m.memsys.directory.check_swmr(m.memsys.l1s)


class TestConflicts:
    def test_requester_wins_aborts_holder(self):
        m = idle_machine(system="Baseline")
        tx0, tx1 = m.cpus[0].tx, m.cpus[1].tx
        tx0.begin(TxMode.HTM, 0)
        m.memsys.access(0, line_addr(5), True, 0)
        tx1.begin(TxMode.HTM, 0)
        res = m.memsys.access(1, line_addr(5), False, 10)
        assert res.status == GRANT
        assert tx0.aborted and tx0.abort_reason is AbortReason.CONFLICT_HTM
        assert m.memsys.l1s[0].probe(5) == MESI.I  # victim invalidated
        assert m.memsys.l1s[1].probe(5) in (MESI.E, MESI.S)

    def test_recovery_rejects_lower_priority(self):
        m = idle_machine(system="LockillerTM-RWI")
        tx0, tx1 = m.cpus[0].tx, m.cpus[1].tx
        tx0.begin(TxMode.HTM, 0)
        tx0.insts_in_attempt = 100
        m.memsys.access(0, line_addr(5), True, 0)
        tx1.begin(TxMode.HTM, 0)
        tx1.insts_in_attempt = 3
        res = m.memsys.access(1, line_addr(5), False, 10)
        assert res.status == REJECT
        assert res.reject_holder == 0 and not res.reject_by_lock
        assert not tx0.aborted
        # Requester state untouched by the withdrawn request.
        assert m.memsys.l1s[1].probe(5) == MESI.I
        assert 5 not in tx1.read_set

    def test_recovery_grants_higher_priority(self):
        m = idle_machine(system="LockillerTM-RWI")
        tx0, tx1 = m.cpus[0].tx, m.cpus[1].tx
        tx0.begin(TxMode.HTM, 0)
        tx0.insts_in_attempt = 3
        m.memsys.access(0, line_addr(5), True, 0)
        tx1.begin(TxMode.HTM, 0)
        tx1.insts_in_attempt = 100
        res = m.memsys.access(1, line_addr(5), True, 10)
        assert res.status == GRANT
        assert tx0.aborted

    def test_lock_transaction_rejects_htm_requester(self):
        m = idle_machine(system="LockillerTM")
        tl, h = m.cpus[0].tx, m.cpus[1].tx
        tl.begin(TxMode.TL, 0)
        m.memsys.access(0, line_addr(5), True, 0)
        h.begin(TxMode.HTM, 0)
        h.insts_in_attempt = 10**6
        res = m.memsys.access(1, line_addr(5), False, 10)
        assert res.status == REJECT and res.reject_by_lock
        assert res.reject_holder == 0

    def test_lock_transaction_aborts_htm_holder(self):
        m = idle_machine(system="LockillerTM")
        h, tl = m.cpus[0].tx, m.cpus[1].tx
        h.begin(TxMode.HTM, 0)
        m.memsys.access(0, line_addr(5), True, 0)
        tl.begin(TxMode.TL, 0)
        res = m.memsys.access(1, line_addr(5), False, 10)
        assert res.status == GRANT
        assert h.aborted and h.abort_reason is AbortReason.CONFLICT_LOCK

    def test_plain_access_aborts_htm_holder(self):
        m = idle_machine(system="LockillerTM-RWI")
        h = m.cpus[0].tx
        h.begin(TxMode.HTM, 0)
        h.insts_in_attempt = 10**6
        m.memsys.access(0, line_addr(5), True, 0)
        res = m.memsys.access(1, line_addr(5), True, 10)  # core1 not in tx
        assert res.status == GRANT
        assert h.aborted and h.abort_reason is AbortReason.CONFLICT_NON_TRAN

    def test_read_read_no_conflict(self):
        m = idle_machine(system="Baseline")
        tx0, tx1 = m.cpus[0].tx, m.cpus[1].tx
        tx0.begin(TxMode.HTM, 0)
        m.memsys.access(0, line_addr(5), False, 0)
        tx1.begin(TxMode.HTM, 0)
        res = m.memsys.access(1, line_addr(5), False, 10)
        assert res.status == GRANT
        assert not tx0.aborted


class TestOverflowAndSignatures:
    def test_htm_overflow_reported(self):
        m = make_machine([[] for _ in range(4)], params=tiny_params())
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        ms = m.memsys
        # Fill set 0 (lines 0,4 with 4 sets * 2 ways) transactionally.
        ms.access(0, line_addr(0), True, 0)
        ms.access(0, line_addr(4), True, 0)
        res = ms.access(0, line_addr(8), True, 0)
        assert res.status == OVERFLOW
        # No state change for the withdrawn request.
        assert 8 not in tx.write_set

    def test_non_tx_line_evicted_before_overflow(self):
        m = make_machine([[] for _ in range(4)], params=tiny_params())
        ms = m.memsys
        ms.access(0, line_addr(0), False, 0)  # plain line
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        ms.access(0, line_addr(4), True, 0)
        res = ms.access(0, line_addr(8), True, 0)
        assert res.status == GRANT  # evicted the plain line 0
        assert ms.l1s[0].probe(0) == MESI.I

    def test_lock_mode_spills_to_signature(self):
        m = make_machine(
            [[] for _ in range(4)], system="LockillerTM", params=tiny_params()
        )
        ms = m.memsys
        tx = m.cpus[0].tx
        tx.begin(TxMode.TL, 0)
        ms.access(0, line_addr(0), True, 0)
        ms.access(0, line_addr(4), True, 0)
        res = ms.access(0, line_addr(8), True, 0)
        assert res.status == GRANT  # spilled, then filled
        assert ms.sig_owner == 0
        assert ms.of_wr_sig.test(0)  # LRU line 0 was spilled
        assert 0 not in tx.write_set
        assert 8 in tx.write_set

    def test_signature_hit_rejects_external_request(self):
        m = make_machine(
            [[] for _ in range(4)], system="LockillerTM", params=tiny_params()
        )
        ms = m.memsys
        tl = m.cpus[0].tx
        tl.begin(TxMode.TL, 0)
        ms.access(0, line_addr(0), True, 0)
        ms.spill_to_signature(0, 0)
        h = m.cpus[1].tx
        h.begin(TxMode.HTM, 0)
        res = ms.access(1, line_addr(0), False, 10)
        assert res.status == REJECT and res.reject_by_lock

    def test_read_signature_blocks_exclusive_grant_only(self):
        m = make_machine(
            [[] for _ in range(4)], system="LockillerTM", params=tiny_params()
        )
        ms = m.memsys
        # A plain copy exists before the lock transaction spills.
        ms.access(2, line_addr(0), False, 0)
        tl = m.cpus[0].tx
        tl.begin(TxMode.TL, 0)
        ms.access(0, line_addr(0), False, 2)
        ms.spill_to_signature(0, 0)
        h = m.cpus[1].tx
        h.begin(TxMode.HTM, 0)
        # Other copies exist -> a shared read grant is safe (§III-B).
        res = ms.access(1, line_addr(0), False, 10)
        assert res.status == GRANT
        # ... but a write still conflicts with the lock tx's read.
        res_w = ms.access(1, line_addr(0), True, 20)
        assert res_w.status == REJECT and res_w.reject_by_lock

    def test_read_signature_rejects_when_no_other_copy(self):
        m = make_machine(
            [[] for _ in range(4)], system="LockillerTM", params=tiny_params()
        )
        ms = m.memsys
        tl = m.cpus[0].tx
        tl.begin(TxMode.TL, 0)
        ms.access(0, line_addr(0), False, 0)
        ms.spill_to_signature(0, 0)
        h = m.cpus[1].tx
        h.begin(TxMode.HTM, 0)
        # No other copy: granting would hand out exclusive data that the
        # requester could silently store to — the paper rejects this.
        res = ms.access(1, line_addr(0), False, 10)
        assert res.status == REJECT and res.reject_by_lock

    def test_signatures_cleared_on_retire(self):
        m = make_machine(
            [[] for _ in range(4)], system="LockillerTM", params=tiny_params()
        )
        ms = m.memsys
        tl = m.cpus[0].tx
        tl.begin(TxMode.TL, 0)
        ms.access(0, line_addr(0), True, 0)
        ms.spill_to_signature(0, 0)
        ms.retire_tx(0)
        assert ms.sig_owner == -1
        assert ms.of_wr_sig.empty and ms.of_rd_sig.empty

    def test_spill_requires_lock_mode(self):
        m = idle_machine(system="LockillerTM")
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        m.memsys.access(0, line_addr(0), True, 0)
        with pytest.raises(ProtocolInvariantError):
            m.memsys.spill_to_signature(0, 0)

    def test_llc_back_invalidation_aborts_tx_holder(self):
        params = SystemParams(
            num_cores=4,
            l1=CacheParams(8 * 64, 2, 2),
            llc=CacheParams(16 * 64, 1, 12),  # 16 lines, direct-mapped
        )
        m = make_machine([[] for _ in range(4)], params=params)
        ms = m.memsys
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        ms.access(0, line_addr(3), True, 0)
        # Evict LLC set of line 3 by touching line 19 (same LLC set).
        ms.access(1, line_addr(19), False, 100)
        assert tx.aborted and tx.abort_reason is AbortReason.OVERFLOW

    def test_quiescence_detects_stale_tracking(self):
        m = idle_machine()
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        m.memsys.access(0, line_addr(5), True, 0)
        problems = m.memsys.check_quiescent()
        assert any("tx_writers" in p for p in problems)
        m.memsys.retire_tx(0)
        tx.clear()
        assert m.memsys.check_quiescent() == []
