"""Tests for the opt-in NoC link-contention extension."""

from dataclasses import replace

from repro.common.params import NetworkParams, typical_params
from repro.harness.systems import get_system
from repro.interconnect.message import MessageClass
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def contended_net():
    params = NetworkParams(model_contention=True)
    net = NetworkModel(MeshTopology(params), params)
    clock = {"now": 0}
    net.clock = lambda: clock["now"]
    return net, clock


class TestLinkSerialization:
    def test_first_message_uncontended_matches_formula(self):
        net, _ = contended_net()
        # 2 hops * (1+1) + 0 tail = 4 for control on a fresh fabric.
        assert net.control_latency(0, 2) == 4

    def test_same_link_same_cycle_serializes(self):
        net, _ = contended_net()
        first = net.data_latency(0, 1)
        second = net.data_latency(0, 1)  # same cycle, same link
        assert second > first
        assert net.link_stalls > 0

    def test_disjoint_links_do_not_interfere(self):
        net, _ = contended_net()
        a = net.control_latency(0, 1)
        b = net.control_latency(4, 5)  # different row
        assert a == b
        assert net.link_stalls == 0

    def test_busy_window_expires(self):
        net, clock = contended_net()
        net.data_latency(0, 1)
        clock["now"] = 1000  # long after the link drained
        assert net.data_latency(0, 1) == 6  # back to formula price

    def test_opposite_directions_independent(self):
        net, _ = contended_net()
        a = net.control_latency(0, 1)
        b = net.control_latency(1, 0)
        assert a == b == 2

    def test_local_delivery_unaffected(self):
        net, _ = contended_net()
        assert net.control_latency(3, 3) == 1

    def test_disabled_mode_is_stateless(self):
        params = NetworkParams()  # default: no contention
        net = NetworkModel(MeshTopology(params), params)
        assert net.data_latency(0, 1) == net.data_latency(0, 1)
        assert net.link_stalls == 0


class TestEndToEnd:
    def _run(self, contention: bool):
        base = typical_params()
        params = replace(
            base,
            network=replace(base.network, model_contention=contention),
        )
        return run_workload(
            get_workload("vacation+"),
            RunConfig(
                spec=get_system("LockillerTM"),
                threads=8,
                scale=0.1,
                seed=6,
                params=params,
            ),
        )

    def test_contention_slows_but_preserves_function(self):
        off = self._run(False)
        on = self._run(True)
        # Queueing can only add cycles...
        assert on.execution_cycles >= off.execution_cycles
        # ... and functional results are identical (runner verified both).
        assert on.commits == off.commits

    def test_shape_insensitive_to_contention(self):
        """The DESIGN.md justification: who-wins is unchanged."""
        base = typical_params()
        params_on = replace(
            base, network=replace(base.network, model_contention=True)
        )
        speeds = {}
        for tag, params in (("off", base), ("on", params_on)):
            cgl = run_workload(
                get_workload("intruder"),
                RunConfig(spec=get_system("CGL"), threads=8, scale=0.1,
                          seed=6, params=params),
            )
            full = run_workload(
                get_workload("intruder"),
                RunConfig(spec=get_system("LockillerTM"), threads=8,
                          scale=0.1, seed=6, params=params),
            )
            speeds[tag] = cgl.execution_cycles / full.execution_cycles
        assert (speeds["off"] > 1.0) == (speeds["on"] > 1.0)
