"""``check_perf_regression.py history`` must tolerate malformed
snapshots (hand-edited or renamed benchmark case keys): warn and render
``-`` for the affected cell instead of crashing."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "check_perf_regression.py",
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_perf_regression", _SCRIPT
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_snapshot(tmp_path, name, cases):
    path = tmp_path / name
    path.write_text(json.dumps({"label": name, "cases": cases}))
    return str(path)


def good_case(ms):
    return {"after_ms": {"median": ms, "mean": ms, "min": ms}}


class TestHistoryTolerance:
    def test_well_formed_history(self, gate, tmp_path, capsys):
        snaps = [
            write_snapshot(tmp_path, "BENCH_PR1.json",
                           {"sim": good_case(10.0)}),
            write_snapshot(tmp_path, "BENCH_PR2.json",
                           {"sim": good_case(5.0)}),
        ]
        assert gate.history(snaps, markdown=False) == 0
        out = capsys.readouterr().out
        assert "sim" in out
        assert "2.00x" in out  # cumulative speedup 10 -> 5

    @pytest.mark.parametrize(
        "broken",
        [
            {},  # case renamed away: no stats at all
            {"after_ms": {}},  # gate statistic missing
            {"after_ms": {"mean": 4.0}},  # renamed statistic key
            {"after_ms": "4.0"},  # wrong type entirely
            {"after_ms": None, "before_ms": None},
        ],
    )
    def test_malformed_case_warns_and_skips(
        self, gate, tmp_path, capsys, broken
    ):
        snaps = [
            write_snapshot(tmp_path, "BENCH_PR1.json",
                           {"sim": good_case(10.0)}),
            write_snapshot(tmp_path, "BENCH_PR2.json", {"sim": broken}),
            write_snapshot(tmp_path, "BENCH_PR3.json",
                           {"sim": good_case(5.0)}),
        ]
        assert gate.history(snaps, markdown=False) == 0
        captured = capsys.readouterr()
        if broken:  # an absent case is expected, not warning-worthy
            assert "warning" in captured.err
            assert "BENCH_PR2.json" in captured.err
        # The healthy snapshots still produce the trajectory.
        assert "sim" in captured.out
        assert "2.00x" in captured.out

    def test_case_key_renamed_between_snapshots(
        self, gate, tmp_path, capsys
    ):
        snaps = [
            write_snapshot(tmp_path, "BENCH_PR1.json",
                           {"old_name": good_case(8.0)}),
            write_snapshot(tmp_path, "BENCH_PR2.json",
                           {"new_name": good_case(4.0)}),
        ]
        assert gate.history(snaps, markdown=False) == 0
        out = capsys.readouterr().out
        assert "old_name" in out and "new_name" in out

    def test_markdown_mode_survives_malformed(self, gate, tmp_path,
                                              capsys):
        snaps = [
            write_snapshot(tmp_path, "BENCH_PR1.json",
                           {"sim": {"after_ms": {"mean": 1.0}}}),
        ]
        assert gate.history(snaps, markdown=True) == 0
        assert "| case |" in capsys.readouterr().out
