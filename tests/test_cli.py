"""Tests for the command-line harness."""

import pytest

from repro.harness.cli import main


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


class TestStaticCommands:
    def test_table1(self, capsys):
        rc, out = run_cli(capsys, "table1")
        assert rc == 0
        assert "Table I" in out and "32KB" in out

    def test_table2(self, capsys):
        rc, out = run_cli(capsys, "table2")
        assert rc == 0
        assert "LockillerTM-RWIL" in out


class TestRunCommand:
    def test_run_prints_metrics(self, capsys):
        rc, out = run_cli(
            capsys,
            "run",
            "--workload", "kmeans-",
            "--system", "Baseline",
            "--threads", "2",
            "--scale", "0.05",
        )
        assert rc == 0
        assert "execution cycles" in out
        assert "commit rate" in out
        assert "time category" in out

    def test_run_small_cache(self, capsys):
        rc, out = run_cli(
            capsys,
            "run",
            "--workload", "ssca2",
            "--system", "LockillerTM",
            "--threads", "2",
            "--scale", "0.05",
            "--cache", "small",
        )
        assert rc == 0
        assert "small caches" in out

    def test_unknown_workload_raises(self, capsys):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            run_cli(
                capsys,
                "run",
                "--workload", "doom",
                "--system", "Baseline",
            )


class TestFigureCommands:
    def test_fig1_with_tiny_sweep(self, capsys):
        rc, out = run_cli(capsys, "fig1", "--scale", "0.05", "--threads", "2")
        assert rc == 0
        assert "Fig. 1" in out

    def test_fig12_with_tiny_sweep(self, capsys):
        rc, out = run_cli(
            capsys, "fig12", "--scale", "0.05", "--threads", "2"
        )
        assert rc == 0
        assert "headline" in out


class TestChartCommand:
    def test_chart_renders(self, capsys):
        rc, out = run_cli(
            capsys,
            "chart",
            "--workload", "kmeans+",
            "--threads", "2",
            "--scale", "0.05",
            "--systems", "CGL,Baseline",
        )
        assert rc == 0
        assert "breakdown" in out
        assert "speedup vs CGL" in out
        assert "1.00x" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
