"""Differential suite: packed vs reference cache arrays, bit for bit.

Two layers:

* **Op-stream equivalence** — a seeded random stream of every public
  ``CacheArray`` operation (insert with and without pinning, touch,
  probe, hit_state, set_state, invalidate, victim queries, reset)
  drives both backends in lockstep; every return value, every victim,
  the resident contents and the hit/miss/eviction counters must agree
  at every step.  This is the determinism argument for the packed LRU
  made executable: rank order equals reference list order.
* **System-level goldens** — the nine pinned Table-II cells re-run with
  the packed backend forced via ``RunConfig.cache_backend`` must hit
  the exact same cycle counts and behaviour fingerprints as the
  reference default (the pins in tests/test_golden_determinism.py).
"""

import random

import pytest

from repro.common.params import CacheParams
from repro.coherence.cachearray import CacheArray, DictCacheArray, PackedCacheArray
from repro.coherence.states import MESI
from repro.harness.export import fingerprint
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload

from test_golden_determinism import GOLD

STATES = (MESI.S, MESI.E, MESI.M)


def _pair(sets, ways):
    size = sets * ways * 64
    packed = CacheArray(CacheParams(size, ways, 2, backend="packed"))
    ref = CacheArray(CacheParams(size, ways, 2, backend="reference"))
    assert isinstance(packed, PackedCacheArray)
    assert isinstance(ref, DictCacheArray)
    return packed, ref


def _snapshot(arr):
    return (
        len(arr),
        sorted(arr.resident_states()),
        arr.hits,
        arr.misses,
        arr.evictions,
    )


@pytest.mark.parametrize(
    "sets,ways,seed",
    [(2, 2, 0), (2, 2, 1), (4, 4, 2), (8, 2, 3), (1, 8, 4), (4, 1, 5)],
)
def test_random_op_streams_agree(sets, ways, seed):
    packed, ref = _pair(sets, ways)
    rng = random.Random(seed)
    lines = range(sets * ways * 3)  # ~3x capacity: plenty of conflict

    # A stable "pinned" predicate per step keeps both backends seeing
    # the same pin set (memsys pins by transactional ownership, which
    # is a pure function of the line).
    def pinned_mod(k):
        return lambda line: line % 3 == k

    for step in range(600):
        op = rng.randrange(9)
        line = rng.choice(lines)
        if op == 0:
            state = rng.choice(STATES)
            v_p = packed.insert(line, state)
            v_r = ref.insert(line, state)
            assert v_p == v_r
        elif op == 1:
            state = rng.choice(STATES)
            pred = pinned_mod(rng.randrange(3))
            v_p = packed.insert(line, state, pred)
            v_r = ref.insert(line, state, pred)
            assert v_p == v_r
        elif op == 2:
            assert packed.probe(line) == ref.probe(line)
        elif op == 3:
            is_write = rng.random() < 0.5
            assert packed.hit_state(line, is_write) == ref.hit_state(
                line, is_write
            )
        elif op == 4:
            if ref.contains(line):
                packed.touch(line)
                ref.touch(line)
        elif op == 5:
            if ref.contains(line):
                state = rng.choice(STATES + (MESI.I,))
                packed.set_state(line, state)
                ref.set_state(line, state)
        elif op == 6:
            assert packed.invalidate(line) == ref.invalidate(line)
        elif op == 7:
            pred = pinned_mod(rng.randrange(3))
            assert packed.find_unpinned_victim(
                line, pred
            ) == ref.find_unpinned_victim(line, pred)
            if ref.set_occupancy(line):
                assert packed.lru_line(line) == ref.lru_line(line)
        else:
            assert packed.set_occupancy(line) == ref.set_occupancy(line)
            assert packed.contains(line) == ref.contains(line)
        if step % 97 == 0:
            packed.check_invariants()
            ref.check_invariants()
            assert _snapshot(packed) == _snapshot(ref)

    packed.check_invariants()
    ref.check_invariants()
    assert _snapshot(packed) == _snapshot(ref)

    # reset() returns both to a state where replaying a fresh stream
    # still agrees (machine-pool reuse contract).
    packed.reset()
    ref.reset()
    assert _snapshot(packed) == _snapshot(ref) == (0, [], 0, 0, 0)
    for line in lines:
        assert packed.insert(line, MESI.E) == ref.insert(line, MESI.E)
    assert _snapshot(packed) == _snapshot(ref)


def test_eviction_order_exhaustive_small_set():
    """Every insertion order over one 4-way set evicts identically."""
    import itertools

    for perm in itertools.permutations(range(5)):
        packed, ref = _pair(1, 4)
        for line in perm:
            assert packed.insert(line, MESI.S) == ref.insert(line, MESI.S)
        # One more insert forces an eviction decided purely by LRU rank.
        assert packed.insert(7, MESI.M) == ref.insert(7, MESI.M)
        assert sorted(packed.resident_states()) == sorted(
            ref.resident_states()
        )


@pytest.mark.parametrize("system", sorted(GOLD))
def test_packed_backend_hits_golden_pins(system):
    cycles, fp, commits, aborts = GOLD[system]
    stats = run_workload(
        get_workload("intruder"),
        RunConfig(
            spec=get_system(system),
            threads=4,
            scale=0.05,
            seed=3,
            cache_backend="packed",
        ),
    )
    merged = stats.merged()
    assert stats.execution_cycles == cycles
    assert fingerprint(stats) == fp
    assert merged.commits == commits
    assert merged.total_aborts == aborts
