"""Model-based (stateful hypothesis) tests for the cache structures.

A reference model written with plain dicts/lists shadows the production
structure through arbitrary operation sequences; any divergence fails.
This style catches interaction bugs (LRU vs pinning vs invalidation)
that example-based tests tend to miss.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.common.params import CacheParams
from repro.coherence.cachearray import CacheArray
from repro.coherence.directory import Directory
from repro.coherence.states import MESI

LINES = st.integers(0, 15)
STATES = st.sampled_from([MESI.S, MESI.E, MESI.M])
CORES = st.integers(0, 3)


class CacheArrayModel(RuleBasedStateMachine):
    """CacheArray vs a reference LRU model (2 sets x 2 ways)."""

    backend = "packed"

    def __init__(self):
        super().__init__()
        self.arr = CacheArray(CacheParams(4 * 64, 2, 2, backend=self.backend))
        # Reference: per-set list of (line, state), LRU first.
        self.ref = {0: [], 1: []}

    def _set(self, line):
        return line % 2

    @rule(line=LINES, state=STATES)
    def insert(self, line, state):
        victim = self.arr.insert(line, state)
        ways = self.ref[self._set(line)]
        existing = next((e for e in ways if e[0] == line), None)
        if existing:
            ways.remove(existing)
            ways.append((line, state))
            assert victim is None
        else:
            if len(ways) >= 2:
                evicted = ways.pop(0)
                assert victim is not None
                assert victim.line == evicted[0]
                assert victim.state == evicted[1]
            else:
                assert victim is None
            ways.append((line, state))

    @rule(line=LINES)
    def invalidate(self, line):
        prior = self.arr.invalidate(line)
        ways = self.ref[self._set(line)]
        existing = next((e for e in ways if e[0] == line), None)
        if existing:
            ways.remove(existing)
            assert prior == existing[1]
        else:
            assert prior == MESI.I

    @rule(line=LINES)
    def touch_if_present(self, line):
        ways = self.ref[self._set(line)]
        existing = next((e for e in ways if e[0] == line), None)
        if existing:
            self.arr.touch(line)
            ways.remove(existing)
            ways.append(existing)

    @rule(line=LINES, state=STATES)
    def set_state_if_present(self, line, state):
        ways = self.ref[self._set(line)]
        existing = next((e for e in ways if e[0] == line), None)
        if existing:
            self.arr.set_state(line, state)
            idx = ways.index(existing)
            ways[idx] = (line, state)

    @invariant()
    def states_agree(self):
        for idx, ways in self.ref.items():
            for line, state in ways:
                assert self.arr.probe(line) == state
        total = sum(len(w) for w in self.ref.values())
        assert len(self.arr) == total
        self.arr.check_invariants()


class ReferenceCacheArrayModel(CacheArrayModel):
    """The same machine driving the reference dict-of-lists backend."""

    backend = "reference"


TestCacheArrayModel = CacheArrayModel.TestCase
TestCacheArrayModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)

TestReferenceCacheArrayModel = ReferenceCacheArrayModel.TestCase
TestReferenceCacheArrayModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


class DirectoryModel(RuleBasedStateMachine):
    """Directory vs a reference {line: (owner, sharers)} model."""

    def __init__(self):
        super().__init__()
        self.dir = Directory()
        self.ref = {}

    def _entry(self, line):
        return self.ref.setdefault(line, [-1, set()])

    @rule(line=LINES, core=CORES)
    def set_exclusive(self, line, core):
        self.dir.set_exclusive(line, core)
        e = self._entry(line)
        e[0] = core
        e[1] = set()

    @rule(line=LINES, core=CORES)
    def add_sharer_if_legal(self, line, core):
        e = self._entry(line)
        if e[0] >= 0 and e[0] != core:
            return  # illegal; covered by unit tests
        self.dir.add_sharer(line, core)
        if e[0] != core:
            e[1].add(core)

    @rule(line=LINES, core=CORES)
    def remove_copy(self, line, core):
        self.dir.remove_copy(line, core)
        e = self._entry(line)
        if e[0] == core:
            e[0] = -1
        e[1].discard(core)

    @rule(line=LINES)
    def demote_if_owned(self, line):
        e = self._entry(line)
        if e[0] >= 0:
            self.dir.demote_owner_to_sharer(line)
            e[1].add(e[0])
            e[0] = -1

    @invariant()
    def copies_agree(self):
        for line, (owner, sharers) in self.ref.items():
            expected = {owner} if owner >= 0 else set(sharers)
            assert self.dir.copies(line) == expected
            assert self.dir.owner_of(line) == owner


TestDirectoryModel = DirectoryModel.TestCase
TestDirectoryModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
