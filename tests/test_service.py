"""Tests for the sweep service: campaign model, sharded store, and the
end-to-end determinism pins (service == serial ``Sweep.run``, resubmit
== 100% cache dedup, drain/resume)."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.common.errors import ConfigError
from repro.harness.export import (
    compare_runs,
    fingerprint,
    run_stats_from_dict,
    run_stats_to_dict,
)
from repro.service import (
    CampaignSpec,
    ServiceClient,
    ServiceError,
    ShardedStore,
)
from repro.service.server import ServiceConfig, ServiceThread

TINY = {
    "kind": "sweep",
    "workloads": ["kmeans+", "ssca2"],
    "systems": ["CGL", "LockillerTM"],
    "threads": [2],
    "seeds": [1],
    "scale": 0.05,
}


def json_normal(doc):
    """JSON-canonical form (int dict keys become strings, like the wire)."""
    return json.loads(json.dumps(doc, sort_keys=True))


@pytest.fixture
def service(tmp_path):
    with ServiceThread(
        ServiceConfig(state_dir=str(tmp_path / "svc"), jobs=2)
    ) as handle:
        yield handle


def client_of(handle) -> ServiceClient:
    return ServiceClient(handle.host, handle.port)


class TestCampaignSpec:
    def test_roundtrip(self):
        spec = CampaignSpec.from_dict(TINY)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert spec.size() == 4
        assert spec.digest() == CampaignSpec.from_dict(TINY).digest()

    def test_cells_follow_sweep_point_order(self):
        spec = CampaignSpec.from_dict(
            dict(TINY, threads=[2, 4], seeds=[1, 2])
        )
        cells = spec.cells()
        points = list(spec.to_sweep().points())
        assert len(cells) == len(points) == spec.size()
        for cell, point in zip(cells, points):
            assert cell.workload == point.workload
            assert cell.system == point.system
            assert cell.threads == point.threads
            assert cell.seed == point.seed
            assert cell.params_tag == point.params_tag

    def test_cell_keys_are_runcache_keys(self):
        from repro.harness.runcache import cell_key
        from repro.harness.systems import get_system
        from repro.common.params import typical_params

        cell = CampaignSpec.from_dict(TINY).cells()[0]
        assert cell.key == cell_key(
            cell.workload, get_system(cell.system), typical_params(),
            cell.threads, cell.scale, cell.seed,
        )

    @pytest.mark.parametrize(
        "bad",
        [
            dict(TINY, kind="banana"),
            dict(TINY, workloads=[]),
            dict(TINY, workloads=["no-such-workload"]),
            dict(TINY, systems=["NoSuchSystem"]),
            dict(TINY, seeds=["x"]),
            dict(TINY, scale=-1.0),
            dict(TINY, scale="wide"),
            dict(TINY, params_tags=["gigantic"]),
            dict(TINY, surprise=True),
            dict(TINY, kind="multiseed"),  # two workloads/systems
            "not a dict",
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ConfigError):
            CampaignSpec.from_dict(bad)

    def test_multiseed_shape_ok(self):
        spec = CampaignSpec.from_dict(
            {
                "kind": "multiseed",
                "workloads": ["ssca2"],
                "systems": ["LockillerTM"],
                "threads": [2],
                "seeds": [1, 2, 3],
                "scale": 0.05,
            }
        )
        assert spec.size() == 3

    def test_scalar_fields_coerce_to_lists(self):
        spec = CampaignSpec.from_dict(
            {"workloads": "ssca2", "systems": "CGL", "threads": 2,
             "seeds": 7, "scale": 0.05}
        )
        assert spec.workloads == ("ssca2",)
        assert spec.seeds == (7,)


class TestShardedStore:
    def _stats(self):
        from repro.common.stats import CoreStats, RunStats

        return RunStats(execution_cycles=123, cores=[CoreStats()])

    def test_two_level_layout(self, tmp_path):
        store = ShardedStore(str(tmp_path))
        key = "ab12" + "0" * 60
        assert store.path_for(key) == str(
            tmp_path / "ab" / "12" / f"{key}.json"
        )
        assert store.shard_of(key) == "ab12"

    def test_put_get_roundtrip(self, tmp_path):
        store = ShardedStore(str(tmp_path))
        key = "fe" * 32
        assert store.get(key) is None
        store.put(key, self._stats(), meta={"origin": "test"})
        assert store.contains(key)
        got = store.get(key)
        assert got is not None
        assert got.execution_cycles == 123
        assert store.hits == 1 and store.misses == 1

    def test_corrupt_entry_repair_inherited(self, tmp_path):
        store = ShardedStore(str(tmp_path))
        key = "aa" * 32
        path = store.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{ corrupt")
        assert store.get(key) is None
        assert not os.path.exists(path)  # repaired by unlinking
        store.put(key, self._stats())
        assert store.get(key) is not None

    def test_concurrent_same_shard_puts(self, tmp_path):
        store = ShardedStore(str(tmp_path))
        stats = self._stats()
        keys = ["ab12" + f"{i:060x}" for i in range(16)]
        errors = []

        def writer(key):
            try:
                for _ in range(10):
                    store.put(key, stats)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(k,)) for k in keys
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(store.get(k) is not None for k in keys)


class TestServiceHTTP:
    def test_healthz_and_stats(self, service):
        client = client_of(service)
        assert client.healthz()["ok"] is True
        stats = client.stats()
        assert stats["workers"] == 2
        assert stats["draining"] is False

    def test_unknown_routes_404(self, service):
        client = client_of(service)
        with pytest.raises(ServiceError) as err:
            client.status("j-nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_bad_campaign_400(self, service):
        client = client_of(service)
        with pytest.raises(ServiceError) as err:
            client.submit({"workloads": ["no-such"], "systems": ["CGL"]})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/v1/jobs", {"campaign": "nope"})
        assert err.value.status == 400


class TestServiceDeterminism:
    def test_service_matches_serial_sweep_and_resubmit_dedups(
        self, service
    ):
        spec = CampaignSpec.from_dict(TINY)
        serial = spec.to_sweep().run()
        serial_fps = [fingerprint(r.stats) for r in serial.records]
        serial_dicts = [
            json_normal(run_stats_to_dict(r.stats))
            for r in serial.records
        ]

        client = client_of(service)
        job = client.submit(TINY, tenant="alice")
        final = client.wait(job["job_id"], timeout=180)
        assert final["state"] == "done"
        assert final["progress"]["cells_scheduled"] == spec.size()

        results = client.results(job["job_id"])
        assert [c["fingerprint"] for c in results["cells"]] == serial_fps
        assert [c["stats"] for c in results["cells"]] == serial_dicts
        # The wire dicts reconstruct to RunStats with zero differences.
        for cell, record in zip(results["cells"], serial.records):
            assert not compare_runs(
                run_stats_from_dict(cell["stats"]), record.stats
            )

        # End-to-end dedup pin: an immediate resubmission (different
        # tenant, same campaign) schedules zero new cells.
        job2 = client.submit(TINY, tenant="bob")
        final2 = client.wait(job2["job_id"], timeout=60)
        progress = final2["progress"]
        assert final2["state"] == "done"
        assert progress["cells_scheduled"] == 0
        assert progress["cells_from_cache"] == spec.size()
        fps2 = [
            c["fingerprint"]
            for c in client.results(job2["job_id"], lite=True)["cells"]
        ]
        assert fps2 == serial_fps

    def test_multiseed_summary(self, service):
        client = client_of(service)
        campaign = {
            "kind": "multiseed",
            "workloads": ["ssca2"],
            "systems": ["LockillerTM"],
            "threads": [2],
            "seeds": [1, 2, 3],
            "scale": 0.05,
        }
        job = client.submit(campaign)
        final = client.wait(job["job_id"], timeout=180)
        assert final["state"] == "done"
        summary = client.results(job["job_id"], lite=True)["summary"]
        assert summary["n"] == 3
        assert summary["min"] <= summary["mean"] <= summary["max"]

        from repro.harness.multiseed import multi_seed_runs

        runs = multi_seed_runs("ssca2", "LockillerTM", 2, [1, 2, 3],
                               scale=0.05)
        mean = sum(r.execution_cycles for r in runs) / 3
        assert summary["mean"] == pytest.approx(mean)

    def test_event_feed_order_and_stream(self, service):
        client = client_of(service)
        job = client.submit(TINY)
        events = list(client.stream(job["job_id"], follow=True))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "job_done"
        assert kinds.count("cell_done") == 4
        assert [e["seq"] for e in events] == list(
            range(1, len(events) + 1)
        )
        # The JSONL feed on disk carries the same events.
        feed = service.service.jobs[job["job_id"]].events_path
        with open(feed, encoding="utf-8") as fh:
            on_disk = [json.loads(line) for line in fh]
        assert on_disk == events


class TestDrainResume:
    def test_drain_journals_and_resume_completes(self, tmp_path):
        state_dir = str(tmp_path / "svc")
        campaign = dict(TINY, seeds=[1, 2, 3, 4])  # 16 cells
        spec = CampaignSpec.from_dict(campaign)

        handle = ServiceThread(
            ServiceConfig(state_dir=state_dir, jobs=1)
        ).start()
        try:
            client = client_of(handle)
            job_id = client.submit(campaign)["job_id"]
            deadline = time.monotonic() + 120
            while (
                client.status(job_id)["progress"]["cells_done"] < 2
            ):
                assert time.monotonic() < deadline, "no progress"
                time.sleep(0.01)
        finally:
            handle.stop()  # graceful drain mid-campaign

        journal = json.load(
            open(os.path.join(state_dir, "jobs", f"{job_id}.json"))
        )
        assert journal["state"] == "queued"  # resumable, not lost

        handle = ServiceThread(
            ServiceConfig(state_dir=state_dir, jobs=2)
        ).start()
        try:
            client = client_of(handle)
            final = client.wait(job_id, timeout=240)
            assert final["state"] == "done"
            # Work finished before the drain is served from the store.
            assert final["progress"]["cells_from_cache"] >= 2
            assert (
                final["progress"]["cells_scheduled"] < spec.size()
            )
            fps = [
                c["fingerprint"]
                for c in client.results(job_id, lite=True)["cells"]
            ]
            serial = spec.to_sweep().run()
            assert fps == [fingerprint(r.stats) for r in serial.records]
        finally:
            handle.stop()
