"""Tests for ProgramBuilder and the multi-seed statistics helpers."""

import pytest

from repro.common.errors import ConfigError
from repro.harness.multiseed import (
    metric_over_seeds,
    paired_speedup,
    stability_report,
    summarize_values,
)
from repro.harness.systems import get_system
from repro.htm.builder import ProgramBuilder, build_programs
from repro.htm.isa import OP_COMPUTE, OP_FAULT, OP_LOAD, OP_STORE, Plain, Txn
from repro.sim.machine import Machine
from repro.common.params import typical_params
from conftest import line_addr


class TestProgramBuilder:
    def test_plain_then_txn(self):
        b = ProgramBuilder()
        b.compute(10).load(64)
        with b.txn(tag="t1"):
            b.rmw(128, 5)
        b.compute(3)
        prog = b.build()
        assert [type(s) for s in prog] == [Plain, Txn, Plain]
        assert prog[1].tag == "t1"
        assert [op[0] for op in prog[1].ops] == [OP_LOAD, OP_STORE]

    def test_rmw_is_adjacent_pair(self):
        b = ProgramBuilder()
        with b.txn():
            b.rmw(64, 2)
        (txn,) = b.build()
        assert txn.ops == [(OP_LOAD, 64, 0), (OP_STORE, 64, 2)]

    def test_nested_txn_flattens(self):
        b = ProgramBuilder()
        with b.txn(tag="outer"):
            b.load(64)
            assert b.nesting_depth == 1
            with b.txn(tag="inner"):
                assert b.nesting_depth == 2
                b.store(128, 1)
            assert b.nesting_depth == 1
            b.compute(2)
        prog = b.build()
        assert len(prog) == 1
        assert prog[0].tag == "outer"
        assert len(prog[0].ops) == 3

    def test_fault_only_inside_txn(self):
        b = ProgramBuilder()
        with pytest.raises(ConfigError):
            b.fault()
        with b.txn():
            b.fault(persistent=True)
            b.store(64, 1)
        (txn,) = b.build()
        assert txn.ops[0][0] == OP_FAULT

    def test_empty_txn_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(ConfigError):
            with b.txn():
                pass

    def test_build_inside_txn_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(ConfigError):
            with b.txn():
                b.load(64)
                b.build()

    def test_builder_reusable_after_build(self):
        b = ProgramBuilder()
        b.compute(1)
        first = b.build()
        b.compute(2)
        second = b.build()
        assert len(first) == 1 and len(second) == 1
        assert first[0].ops != second[0].ops

    def test_build_programs_runs_end_to_end(self):
        def make(b: ProgramBuilder, t: int) -> None:
            b.compute(5 + t)
            with b.txn(tag=f"inc-{t}"):
                b.rmw(line_addr(0), 1)

        programs = build_programs(3, make)
        m = Machine(typical_params(), get_system("LockillerTM"), programs)
        m.run()
        assert m.memsys.memory[line_addr(0)] == 3


class TestSummaries:
    def test_summarize_known_values(self):
        s = summarize_values([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.stdev == pytest.approx(1.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.ci95_half_width > 0

    def test_single_value(self):
        s = summarize_values([5.0])
        assert s.stdev == 0.0 and s.ci95_half_width == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_values([])

    def test_cov(self):
        assert summarize_values([2.0, 2.0]).cov == 0.0

    def test_render(self):
        text = summarize_values([1.0, 2.0]).render(unit="x")
        assert "±" in text and "n=2" in text


class TestMultiSeed:
    def test_metric_over_seeds(self):
        s = metric_over_seeds(
            "kmeans-", "Baseline", threads=2, seeds=(1, 2, 3), scale=0.05
        )
        assert s.n == 3
        assert s.minimum <= s.mean <= s.maximum

    def test_paired_speedup_positive(self):
        s = paired_speedup(
            "ssca2", "CGL", "Baseline", threads=2, seeds=(1, 2), scale=0.05
        )
        assert s.mean > 1.0  # HTM beats CGL on ssca2 at any seed

    def test_stability_report_flags_bayes(self):
        report = stability_report(
            ["kmeans-", "bayes"],
            "Baseline",
            threads=4,
            seeds=(1, 2, 3),
            scale=0.15,
        )
        # bayes is the volatile one — that is why the paper excluded it.
        assert report["bayes"].cov > report["kmeans-"].cov
