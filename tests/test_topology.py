"""Unit tests for the 2-D mesh topology and X-Y routing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.params import NetworkParams
from repro.interconnect.topology import MeshTopology


@pytest.fixture
def mesh() -> MeshTopology:
    return MeshTopology(NetworkParams())  # 4x8, Table I


class TestGeometry:
    def test_num_tiles(self, mesh):
        assert mesh.num_tiles == 32

    def test_coords_row_major(self, mesh):
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(3) == (3, 0)
        assert mesh.coords(4) == (0, 1)
        assert mesh.coords(31) == (3, 7)

    def test_tile_at_inverts_coords(self, mesh):
        for tile in range(mesh.num_tiles):
            x, y = mesh.coords(tile)
            assert mesh.tile_at(x, y) == tile

    def test_tile_at_out_of_range(self, mesh):
        with pytest.raises(ConfigError):
            mesh.tile_at(4, 0)
        with pytest.raises(ConfigError):
            mesh.tile_at(0, 8)

    def test_coords_out_of_range(self, mesh):
        with pytest.raises(ConfigError):
            mesh.coords(32)

    def test_rejects_degenerate_mesh(self):
        with pytest.raises(ConfigError):
            MeshTopology(NetworkParams(mesh_cols=0, mesh_rows=4))


class TestHops:
    def test_self_distance_zero(self, mesh):
        for tile in range(32):
            assert mesh.hops(tile, tile) == 0

    def test_manhattan_examples(self, mesh):
        assert mesh.hops(0, 3) == 3      # same row
        assert mesh.hops(0, 28) == 7     # same column
        assert mesh.hops(0, 31) == 10    # corner to corner

    def test_symmetry(self, mesh):
        for a in range(0, 32, 5):
            for b in range(0, 32, 3):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    @given(st.integers(0, 31), st.integers(0, 31), st.integers(0, 31))
    def test_triangle_inequality(self, a, b, c):
        mesh = MeshTopology(NetworkParams())
        assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)


class TestRoute:
    def test_route_endpoints(self, mesh):
        r = mesh.route(0, 31)
        assert r[0] == 0 and r[-1] == 31

    def test_route_length_equals_hops(self, mesh):
        for a in range(0, 32, 7):
            for b in range(0, 32, 5):
                assert len(mesh.route(a, b)) == mesh.hops(a, b) + 1

    def test_route_goes_x_first(self, mesh):
        # 0 -> 6: X to column 2, then Y down one row.
        assert mesh.route(0, 6) == [0, 1, 2, 6]

    def test_route_steps_are_neighbors(self, mesh):
        r = mesh.route(31, 0)
        for a, b in zip(r, r[1:]):
            assert b in set(mesh.neighbors(a))


class TestHomeTile:
    def test_interleaving_covers_all_tiles(self, mesh):
        homes = {mesh.home_tile(line) for line in range(64)}
        assert homes == set(range(32))

    def test_home_is_stable(self, mesh):
        assert mesh.home_tile(12345) == mesh.home_tile(12345)

    def test_home_in_range(self, mesh):
        for line in (0, 1, 31, 32, 1 << 40):
            assert 0 <= mesh.home_tile(line) < 32


class TestNeighbors:
    def test_corner_has_two(self, mesh):
        assert len(list(mesh.neighbors(0))) == 2

    def test_edge_has_three(self, mesh):
        assert len(list(mesh.neighbors(1))) == 3

    def test_interior_has_four(self, mesh):
        assert len(list(mesh.neighbors(5))) == 4

    def test_neighbors_at_distance_one(self, mesh):
        for t in range(32):
            for n in mesh.neighbors(t):
                assert mesh.hops(t, n) == 1
