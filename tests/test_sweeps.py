"""Tests for the generic sweep driver."""

import pytest

from repro.harness.sweeps import (
    Sweep,
    SweepPoint,
    small_vs_typical_sweep,
)


@pytest.fixture(scope="module")
def results():
    sweep = Sweep(
        workloads=("kmeans+", "ssca2"),
        systems=("CGL", "Baseline", "LockillerTM"),
        threads=(2,),
        seeds=(1,),
        scale=0.05,
    )
    return sweep.run()


class TestSweepDefinition:
    def test_size(self):
        sweep = Sweep(
            workloads=("a", "b"),
            systems=("x",),
            threads=(2, 4),
            seeds=(1, 2, 3),
        )
        assert sweep.size() == 12
        assert len(list(sweep.points())) == 12

    def test_point_label(self):
        p = SweepPoint("kmeans+", "CGL", 4, 7)
        assert "kmeans+" in p.label() and "t4" in p.label()

    def test_progress_callback(self):
        seen = []
        sweep = Sweep(
            workloads=("ssca2",),
            systems=("CGL",),
            threads=(2,),
            seeds=(1,),
            scale=0.05,
        )
        sweep.run(progress=lambda p, i, n: seen.append((i, n)))
        assert seen == [(1, 1)]


class TestSweepResults:
    def test_all_points_present(self, results):
        assert len(results) == 6

    def test_filter(self, results):
        only = results.filter(system="CGL")
        assert len(only) == 2
        assert all(r.point.system == "CGL" for r in only.records)

    def test_one(self, results):
        r = results.one(system="CGL", workload="ssca2")
        assert r.cycles > 0

    def test_one_raises_on_ambiguity(self, results):
        with pytest.raises(KeyError):
            results.one(system="CGL")

    def test_speedups_vs_cgl(self, results):
        speedups = results.speedups_vs("CGL")
        # 2 workloads x 2 non-CGL systems.
        assert len(speedups) == 4
        assert all(v > 0 for v in speedups.values())
        # ssca2 on any HTM flavour beats CGL even at tiny scale.
        ssca_pts = {
            p: v for p, v in speedups.items() if p.workload == "ssca2"
        }
        assert all(v > 1.0 for v in ssca_pts.values())

    def test_pivot(self, results):
        table = results.pivot(lambda r: r.commit_rate)
        assert set(table) == {"CGL", "Baseline", "LockillerTM"}
        assert all(2 in row for row in table.values())
        assert table["CGL"][2] == pytest.approx(1.0)

    def test_filter_rejects_unknown_criterion(self, results):
        # Regression: a typo'd key used to silently match nothing (or
        # blow up with a bare AttributeError deep in the match loop).
        with pytest.raises(KeyError, match="unknown sweep criterion"):
            results.filter(sytem="CGL")
        with pytest.raises(KeyError, match="workload"):
            # The error names the valid vocabulary.
            results.filter(wl="ssca2")

    def test_one_rejects_unknown_criterion(self, results):
        with pytest.raises(KeyError, match="unknown sweep criterion"):
            results.one(threds=2)

    def test_pivot_rejects_unknown_axis(self, results):
        with pytest.raises(KeyError, match="unknown sweep criterion"):
            results.pivot(lambda r: r.cycles, rows="sys", cols="threads")
        with pytest.raises(KeyError, match="unknown sweep criterion"):
            results.pivot(lambda r: r.cycles, cols="thread_count")


class TestConvenience:
    def test_small_vs_typical_sweep_tags(self):
        sweep = small_vs_typical_sweep(("ssca2",), ("CGL",), scale=0.05)
        tags = {p.params_tag for p in sweep.points()}
        assert tags == {"typical", "small"}
        res = sweep.run()
        assert len(res) == 2
