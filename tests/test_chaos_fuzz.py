"""Chaos-fuzz acceptance campaign: the functional oracle must hold for
every Table-II system under every default fault plan, and injected runs
must stay bit-reproducible and replayable from recorded coordinates."""

import pytest

from repro.common.stats import RunStats
from repro.harness.export import fingerprint
from repro.resilience import default_campaign
from repro.sim.fuzz import (
    DEFAULT_SYSTEMS,
    FuzzFailure,
    replay_case,
    run_chaos_fuzz,
    run_fuzz,
)


class TestChaosCampaign:
    def test_oracle_survives_default_campaign(self):
        # 25 cases x 9 systems x 3 plans = 675 runs; every transaction
        # must commit and the memory image must match the expectation
        # despite jitter, lost messages, stalls and reject storms.
        plans = default_campaign()
        assert len(plans) >= 3
        report = run_chaos_fuzz(cases=25, seed=0, plans=plans)
        assert report.runs == 25 * len(DEFAULT_SYSTEMS) * len(plans)
        assert report.ok, report.render()

    def test_failures_carry_replay_coordinates(self):
        # A nonexistent system crashes inside the try: the failure must
        # record the machine seed and plan needed for replay.
        report = run_fuzz(
            cases=2,
            seed=5,
            systems=("CGL", "NoSuchSystem"),
            plans=(None, default_campaign()[0]),
        )
        assert not report.ok
        bad = [f for f in report.failures if f.system == "NoSuchSystem"]
        assert len(bad) == 4  # 2 cases x 2 plans
        for f in bad:
            assert f.machine_seed == f.seed + f.case
            coords = f.replay_coords()
            assert coords["system"] == "NoSuchSystem"
        plans_seen = {f.plan for f in bad}
        assert plans_seen == {None, default_campaign()[0].name}
        good = [f for f in report.failures if f.system == "CGL"]
        assert not good

    def test_render_names_plan_and_machine_seed(self):
        failure = FuzzFailure(
            case=3,
            system="CGL",
            seed=5,
            detail="boom",
            machine_seed=8,
            plan="jitter",
        )
        from repro.sim.fuzz import FuzzReport

        text = FuzzReport(cases=1, runs=1, failures=[failure]).render()
        assert "machine seed 8" in text and "jitter" in text


class TestReplay:
    def test_replay_case_is_bit_reproducible(self):
        plan = default_campaign()[-1]  # chaos-monkey

        def observe():
            m = replay_case(seed=11, case=4, system="LockillerTM", plan=plan)
            stats = RunStats(
                execution_cycles=m.engine.now, cores=m.core_stats
            )
            return (
                m.engine.events_processed,
                fingerprint(stats),
                m.injector.summary(),
            )

        assert observe() == observe()

    def test_replay_records_campaign_coordinates(self):
        m = replay_case(seed=11, case=4, system="CGL")
        assert m.replay_info["case"] == 4
        assert m.replay_info["campaign_seed"] == 11
        assert m.replay_info["seed"] == 15  # the actual machine seed

    def test_replay_matches_campaign_run(self):
        # The machine replay_case builds must see the same programs the
        # campaign ran: replay commits equal the case's transaction
        # count and the oracle holds.
        from repro.htm.isa import Txn
        from repro.sim.fuzz import case_programs
        from repro.workloads.base import expected_final_memory

        progs = case_programs(11, 4)
        n_txns = sum(1 for p in progs for s in p if isinstance(s, Txn))
        m = replay_case(seed=11, case=4, system="LockillerTM")
        assert sum(cs.commits for cs in m.core_stats) == n_txns
        got = {a: v for a, v in m.memsys.memory.items() if v != 0}
        assert got == expected_final_memory(progs)
