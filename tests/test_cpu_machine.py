"""Behavioral tests of the CPU state machine via targeted micro-programs.

Each test builds a tiny machine with hand-written programs and asserts
on the exact lifecycle behaviour the paper specifies: commits, abort
reasons, fallback entry, mutex broadcast kills, HTMLock coexistence,
switchingMode, and the three requester policies.
"""

import pytest

from repro.common.params import CacheParams, SystemParams
from repro.common.stats import AbortReason, TimeCat
from repro.htm.isa import Plain, Txn, compute, fault, load, store
from conftest import line_addr, make_machine, simple_txn


def run_machine(programs, system="Baseline", params=None, seed=0):
    m = make_machine(programs, system=system, params=params, seed=seed)
    cycles = m.run()
    return m, cycles


def overflow_params():
    """1-set, 2-way L1: any 3-line transactional footprint overflows."""
    return SystemParams(
        num_cores=4,
        l1=CacheParams(2 * 64, 2, 2),
        llc=CacheParams(4096 * 64, 16, 12),
    )


class TestBasicExecution:
    def test_empty_program_finishes(self):
        m, cycles = run_machine([[]])
        assert m.all_done and cycles == 0

    def test_plain_compute_billed_non_tran(self):
        m, cycles = run_machine([[Plain([compute(100)])]])
        assert cycles == 100
        assert m.core_stats[0].time[TimeCat.NON_TRAN] == 100

    def test_simple_txn_commits_htm(self):
        m, _ = run_machine([[simple_txn([1, 2], [3])]])
        cs = m.core_stats[0]
        assert cs.commits_htm == 1
        assert cs.tx_attempts == 1
        assert cs.total_aborts == 0
        assert m.memsys.memory[line_addr(3)] == 1

    def test_functional_sum_two_threads(self):
        prog = lambda: [Txn([store(line_addr(9), 2)]) for _ in range(5)]
        m, _ = run_machine([prog(), prog()])
        assert m.memsys.memory[line_addr(9)] == 20

    def test_barrier_bills_early_finisher(self):
        m, cycles = run_machine(
            [[Plain([compute(10)])], [Plain([compute(500)])]]
        )
        assert cycles == 500
        assert m.core_stats[0].time[TimeCat.NON_TRAN] == 500

    def test_billing_tiles_execution(self):
        progs = [
            [Plain([compute(50)]), simple_txn([1], [2]), Plain([compute(30)])],
            [simple_txn([2], [1]), Plain([compute(200)])],
        ]
        m, cycles = run_machine(progs, system="LockillerTM")
        for cs in m.core_stats:
            assert sum(cs.time.values()) == cycles


class TestCGL:
    def test_serializes_critical_sections(self):
        progs = [[simple_txn([1], [1])], [simple_txn([1], [1])]]
        m, _ = run_machine(progs, system="CGL")
        total = m.core_stats[0].commits_lock + m.core_stats[1].commits_lock
        assert total == 2
        # One of the two must have waited.
        waits = [cs.time[TimeCat.WAITLOCK] for cs in m.core_stats]
        assert max(waits) > 0
        assert m.memsys.memory[line_addr(1)] == 2

    def test_no_aborts_ever(self):
        progs = [[simple_txn([i], [i]) for i in range(3)] for _ in range(3)]
        m, _ = run_machine(progs, system="CGL")
        assert all(cs.total_aborts == 0 for cs in m.core_stats)

    def test_fault_survives_under_lock(self):
        m, _ = run_machine(
            [[Txn([fault(), store(line_addr(1), 1)])]], system="CGL"
        )
        assert m.core_stats[0].commits_lock == 1
        assert m.memsys.memory[line_addr(1)] == 1


class TestAbortsAndFallback:
    def test_persistent_fault_exhausts_retries_then_fallback(self):
        m, _ = run_machine(
            [[Txn([fault(persistent=True), store(line_addr(1), 1)])]]
        )
        cs = m.core_stats[0]
        assert cs.aborts[AbortReason.FAULT] == m.params.htm.max_retries
        assert cs.fallback_entries == 1
        assert cs.commits_lock == 1
        assert m.memsys.memory[line_addr(1)] == 1

    def test_one_shot_fault_retries_speculatively(self):
        m, _ = run_machine([[Txn([fault(), store(line_addr(1), 1)])]])
        cs = m.core_stats[0]
        assert cs.aborts[AbortReason.FAULT] == 1
        assert cs.commits_htm == 1
        assert cs.fallback_entries == 0

    def test_overflow_goes_to_fallback_quickly(self):
        m, _ = run_machine(
            [[simple_txn([1, 2, 3], [])]], params=overflow_params()
        )
        cs = m.core_stats[0]
        assert cs.aborts[AbortReason.OVERFLOW] == (
            1 + m.params.htm.capacity_retries
        )
        assert cs.fallback_entries == 1
        assert cs.commits_lock == 1

    def test_rollback_time_billed(self):
        m, _ = run_machine(
            [[Txn([fault(persistent=True), store(line_addr(1), 1)])]]
        )
        assert m.core_stats[0].time[TimeCat.ROLLBACK] > 0
        assert m.core_stats[0].time[TimeCat.ABORTED] > 0

    def test_mutex_broadcast_kill_in_baseline(self):
        # Core 0 is forced onto the fallback path; its lock acquisition
        # must abort core 1's running transaction with reason mutex.
        prog0 = [Txn([fault(persistent=True), store(line_addr(1), 1)])]
        prog1 = [
            Txn(
                [compute(4000)]
                + [load(line_addr(10 + i)) for i in range(8)]
                + [compute(4000), store(line_addr(30), 1)]
            )
        ]
        m, _ = run_machine([prog0, prog1], system="Baseline")
        assert m.core_stats[1].aborts[AbortReason.MUTEX] >= 1
        assert m.memsys.memory[line_addr(30)] == 1  # still commits in the end

    def test_no_mutex_kill_under_htmlock(self):
        prog0 = [Txn([fault(persistent=True), store(line_addr(1), 1)])]
        prog1 = [
            Txn(
                [compute(4000)]
                + [load(line_addr(10 + i)) for i in range(8)]
                + [compute(4000), store(line_addr(30), 1)]
            )
        ]
        m, _ = run_machine([prog0, prog1], system="LockillerTM-RWIL")
        assert m.core_stats[1].aborts[AbortReason.MUTEX] == 0
        assert m.core_stats[1].commits_htm == 1


class TestConflictPolicies:
    def _contended(self, n_txs=6):
        """All threads repeatedly RMW the same hot line."""
        def prog(t):
            out = [Plain([compute(5 + 3 * t)])]
            for _ in range(n_txs):
                out.append(
                    Txn(
                        [
                            compute(8),
                            load(line_addr(0)),
                            store(line_addr(0), 1),
                            compute(8),
                        ]
                    )
                )
            return out
        return [prog(t) for t in range(4)]

    @pytest.mark.parametrize(
        "system",
        [
            "Baseline",
            "LosaTM-SAFU",
            "LockillerTM-RAI",
            "LockillerTM-RRI",
            "LockillerTM-RWI",
            "LockillerTM-RWL",
            "LockillerTM-RWIL",
            "LockillerTM",
        ],
    )
    def test_hot_line_is_atomic_under_every_policy(self, system):
        m, _ = run_machine(self._contended(), system=system)
        assert m.memsys.memory[line_addr(0)] == 4 * 6
        assert m.memsys.check_quiescent() == []

    def test_recovery_rejects_instead_of_aborting(self):
        base, _ = run_machine(self._contended(), system="Baseline")
        rwi, _ = run_machine(self._contended(), system="LockillerTM-RWI")
        base_aborts = sum(cs.total_aborts for cs in base.core_stats)
        rwi_aborts = sum(cs.total_aborts for cs in rwi.core_stats)
        rwi_rejects = sum(cs.rejects_received for cs in rwi.core_stats)
        assert rwi_rejects > 0
        assert rwi_aborts <= base_aborts

    def test_self_abort_policy_aborts_requester(self):
        m, _ = run_machine(self._contended(), system="LockillerTM-RAI")
        merged = sum(
            cs.aborts[AbortReason.CONFLICT_HTM] for cs in m.core_stats
        )
        # Rejections turn into self-aborts under RAI.
        assert merged > 0

    def test_wait_wakeup_sends_wakeups(self):
        m, _ = run_machine(self._contended(), system="LockillerTM-RWI")
        assert sum(cs.wakeups_sent for cs in m.core_stats) > 0


class TestHTMLockMechanism:
    def test_tl_transaction_commits_as_lock(self):
        prog0 = [Txn([fault(persistent=True), store(line_addr(1), 1)])]
        m, _ = run_machine([prog0], system="LockillerTM-RWIL")
        cs = m.core_stats[0]
        assert cs.commits_lock == 1
        assert cs.time[TimeCat.LOCK] > 0
        assert m.hl_arbiter.owner is None  # released at hlend

    def test_htm_coexists_with_tl_when_disjoint(self):
        prog0 = [Txn([fault(persistent=True), store(line_addr(1), 1)])]
        prog1 = [
            Plain([compute(2)]),
            Txn([load(line_addr(50)), store(line_addr(51), 1)]),
        ] * 4
        m, _ = run_machine([prog0, prog1], system="LockillerTM-RWIL")
        assert m.core_stats[1].commits_htm >= 1
        assert m.core_stats[1].aborts[AbortReason.MUTEX] == 0

    def test_conflicting_htm_waits_for_tl(self):
        # Core 0 lands in TL mode and writes line 1; core 1's HTM txs on
        # line 1 must be rejected/parked, not kill the lock transaction.
        prog0 = [
            Txn(
                [fault(persistent=True), compute(50)]
                + [store(line_addr(1), 1), compute(2000)]
            )
        ]
        prog1 = [
            Plain([compute(300)]),
            Txn([load(line_addr(1)), store(line_addr(1), 1)]),
        ]
        m, _ = run_machine([prog0, prog1], system="LockillerTM-RWIL")
        assert m.memsys.memory[line_addr(1)] == 2
        assert m.core_stats[0].commits_lock == 1


class TestSwitchingMode:
    def test_overflow_switches_to_stl(self):
        m, _ = run_machine(
            [[simple_txn([1, 2, 3], [4])]],
            system="LockillerTM",
            params=overflow_params(),
        )
        cs = m.core_stats[0]
        assert cs.switch_attempts == 1
        assert cs.switch_successes == 1
        assert cs.commits_switched == 1
        assert cs.aborts[AbortReason.OVERFLOW] == 0
        assert cs.time[TimeCat.SWITCH_LOCK] > 0
        assert m.memsys.memory[line_addr(4)] == 1
        assert m.hl_arbiter.owner is None

    def test_switch_denied_when_tl_active_aborts(self):
        # Core 0 occupies HTMLock mode via a long TL transaction; core 1
        # overflows and its STL application must be denied.
        prog0 = [
            Txn([fault(persistent=True), compute(30000), store(line_addr(40), 1)])
        ]
        prog1 = [
            Plain([compute(1500)]),
            simple_txn([1, 2, 3], [5]),
        ]
        m, _ = run_machine(
            [prog0, prog1], system="LockillerTM", params=overflow_params()
        )
        cs1 = m.core_stats[1]
        assert cs1.switch_attempts >= 1
        assert cs1.switch_successes == 0
        assert cs1.aborts[AbortReason.OVERFLOW] >= 1
        # Everything still commits eventually.
        assert m.memsys.memory[line_addr(5)] == 1

    def test_switching_disabled_in_rwil(self):
        m, _ = run_machine(
            [[simple_txn([1, 2, 3], [4])]],
            system="LockillerTM-RWIL",
            params=overflow_params(),
        )
        cs = m.core_stats[0]
        assert cs.switch_attempts == 0
        assert cs.commits_switched == 0
        assert cs.fallback_entries == 1

    def test_one_switch_attempt_per_transaction(self):
        # After a successful switch the transaction spills instead of
        # re-applying; after a failed one it aborts. Either way the
        # arbiter sees at most one application per attempt.
        m, _ = run_machine(
            [[simple_txn([1, 2, 3, 4, 5], [6])]],
            system="LockillerTM",
            params=overflow_params(),
        )
        assert m.core_stats[0].switch_attempts == 1
        assert m.core_stats[0].commits_switched == 1

    def test_fault_does_not_trigger_switching(self):
        """§III-C: switchingMode is not applied to exceptions."""
        m, _ = run_machine(
            [[Txn([fault(persistent=True), store(line_addr(1), 1)])]],
            system="LockillerTM",
        )
        cs = m.core_stats[0]
        assert cs.switch_attempts == 0
        assert cs.commits_lock == 1  # classic TL fallback


class TestDeterminism:
    def _progs(self):
        return [
            [
                Plain([compute(10)]),
                Txn([load(line_addr(0)), store(line_addr(0), 1), compute(5)]),
            ]
            for _ in range(4)
        ]

    @pytest.mark.parametrize("system", ["Baseline", "LockillerTM"])
    def test_same_seed_same_result(self, system):
        m1, c1 = run_machine(self._progs(), system=system, seed=5)
        m2, c2 = run_machine(self._progs(), system=system, seed=5)
        assert c1 == c2
        for a, b in zip(m1.core_stats, m2.core_stats):
            assert a.time == b.time
            assert a.aborts == b.aborts
