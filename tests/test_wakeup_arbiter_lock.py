"""Unit tests for the wakeup table, HL arbiter, and FIFO lock manager."""

import pytest

from repro.common.errors import SimulationError
from repro.common.params import NetworkParams
from repro.core.hlarbiter import HLArbiter
from repro.core.wakeup import WakeupTable
from repro.htm.fallback import LockManager
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology
from repro.sim.engine import SimEngine


class TestWakeupTable:
    def test_register_and_drain(self):
        wt = WakeupTable()
        calls = []
        wt.register(1, 2, 10, calls.append)
        wt.register(1, 3, 20, calls.append)
        waiters = wt.drain(1)
        assert [w.core for w in waiters] == [2, 3]
        assert wt.drain(1) == []
        assert wt.registered == 2 and wt.drained == 2

    def test_self_wait_rejected(self):
        with pytest.raises(ValueError):
            WakeupTable().register(1, 1, 0, lambda t: None)

    def test_discard_waiter_everywhere(self):
        wt = WakeupTable()
        wt.register(1, 2, 0, lambda t: None)
        wt.register(3, 2, 0, lambda t: None)
        wt.register(3, 4, 0, lambda t: None)
        wt.discard_waiter(2)
        assert wt.pending_for(1) == 0
        assert [w.core for w in wt.drain(3)] == [4]

    def test_total_pending(self):
        wt = WakeupTable()
        wt.register(1, 2, 0, lambda t: None)
        wt.register(5, 6, 0, lambda t: None)
        assert wt.total_pending == 2

    def test_attempt_seq_recorded(self):
        wt = WakeupTable()
        wt.register(1, 2, 42, lambda t: None)
        assert wt.drain(1)[0].attempt_seq == 42


def _fabric():
    engine = SimEngine()
    params = NetworkParams()
    net = NetworkModel(MeshTopology(params), params)
    return engine, net


class TestHLArbiter:
    def _arbiter(self):
        engine, net = _fabric()
        return engine, HLArbiter(engine, net, lambda c: c, arbiter_tile=0)

    def test_stl_granted_when_free(self):
        engine, arb = self._arbiter()
        results = []
        arb.request_stl(2, lambda t, ok: results.append(ok))
        engine.run()
        assert results == [True]
        assert arb.owner == 2 and arb.owner_is_stl
        assert arb.stl_grants == 1

    def test_stl_denied_when_busy(self):
        engine, arb = self._arbiter()
        results = []
        arb.request_stl(2, lambda t, ok: results.append(("a", ok)))
        arb.request_stl(3, lambda t, ok: results.append(("b", ok)))
        engine.run()
        assert ("a", True) in results and ("b", False) in results
        assert arb.stl_denials == 1

    def test_only_one_htmlock_owner(self):
        """§III-C rule 2: at most one transaction in HTMLock mode."""
        engine, arb = self._arbiter()
        grants = []
        for core in range(5):
            arb.request_stl(core, lambda t, ok, c=core: grants.append((c, ok)))
        engine.run()
        assert sum(ok for _, ok in grants) == 1

    def test_tl_queues_behind_stl(self):
        engine, arb = self._arbiter()
        order = []
        arb.request_stl(2, lambda t, ok: order.append(("stl", ok)))
        arb.request_tl(5, lambda t: order.append(("tl", True)))
        engine.run()
        assert order == [("stl", True)]  # TL still waiting
        arb.release(2)
        engine.run()
        assert ("tl", True) in order
        assert arb.owner == 5 and not arb.owner_is_stl

    def test_tl_granted_when_free(self):
        engine, arb = self._arbiter()
        seen = []
        arb.request_tl(1, seen.append)
        engine.run()
        assert len(seen) == 1 and arb.owner == 1

    def test_release_by_non_owner_raises(self):
        engine, arb = self._arbiter()
        arb.request_tl(1, lambda t: None)
        engine.run()
        with pytest.raises(SimulationError):
            arb.release(2)

    def test_latency_depends_on_distance(self):
        engine, arb = self._arbiter()
        times = {}
        arb.request_stl(0, lambda t, ok: times.setdefault(0, t))
        engine.run()
        engine2, arb2 = self._arbiter()
        arb2.request_stl(31, lambda t, ok: times.setdefault(31, t))
        engine2.run()
        assert times[31] > times[0]


class TestLockManager:
    def _lock(self):
        engine, net = _fabric()
        lock = LockManager("L", 1 << 40, 0, engine, net, lambda c: c)
        return engine, lock

    def test_uncontended_acquire(self):
        engine, lock = self._lock()
        grants = []
        lock.acquire(3, 0, grants.append)
        assert lock.held and lock.holder == 3
        engine.run()
        assert len(grants) == 1 and grants[0] > 0

    def test_fifo_handoff_order(self):
        engine, lock = self._lock()
        order = []
        for core in (2, 7, 4):
            lock.acquire(core, 0, lambda t, c=core: order.append(c))
        engine.run()
        assert order == [2]
        lock.release(2, engine.now)
        engine.run()
        lock.release(7, engine.now)
        engine.run()
        assert order == [2, 7, 4]
        assert lock.contended_acquisitions == 2

    def test_release_by_non_holder_raises(self):
        engine, lock = self._lock()
        lock.acquire(1, 0, lambda t: None)
        with pytest.raises(SimulationError):
            lock.release(2, 0)

    def test_reacquire_while_held_raises(self):
        engine, lock = self._lock()
        lock.acquire(1, 0, lambda t: None)
        with pytest.raises(SimulationError):
            lock.acquire(1, 0, lambda t: None)

    def test_double_queue_raises(self):
        engine, lock = self._lock()
        lock.acquire(1, 0, lambda t: None)
        lock.acquire(2, 0, lambda t: None)
        with pytest.raises(SimulationError):
            lock.acquire(2, 0, lambda t: None)

    def test_wait_free_immediate_when_free(self):
        engine, lock = self._lock()
        seen = []
        lock.wait_free(5, seen.append)
        engine.run()
        assert len(seen) == 1

    def test_wait_free_notified_on_release(self):
        engine, lock = self._lock()
        lock.acquire(1, 0, lambda t: None)
        engine.run()
        seen = []
        lock.wait_free(5, seen.append)
        lock.wait_free(6, seen.append)
        engine.run()
        assert seen == []
        lock.release(1, engine.now)
        engine.run()
        assert len(seen) == 2

    def test_wait_free_not_notified_on_handoff(self):
        """A FIFO hand-off keeps the lock held; subscribers stay parked."""
        engine, lock = self._lock()
        lock.acquire(1, 0, lambda t: None)
        lock.acquire(2, 0, lambda t: None)
        seen = []
        lock.wait_free(5, seen.append)
        lock.release(1, 0)
        engine.run()
        assert lock.holder == 2
        assert seen == []

    def test_cancel_wait(self):
        engine, lock = self._lock()
        lock.acquire(1, 0, lambda t: None)
        seen = []
        lock.wait_free(5, seen.append)
        lock.cancel_wait(5)
        lock.release(1, 0)
        engine.run()
        assert seen == []

    def test_queue_depth(self):
        engine, lock = self._lock()
        lock.acquire(1, 0, lambda t: None)
        lock.acquire(2, 0, lambda t: None)
        lock.acquire(3, 0, lambda t: None)
        assert lock.queue_depth == 2
