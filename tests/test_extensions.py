"""Tests for the extension systems (switch-on-fault, static priority)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.stats import AbortReason
from repro.core.extensions import (
    STATIC_PRIORITY_SPEC,
    SWITCH_ON_FAULT_SPEC,
    extension_systems,
)
from repro.core.policies import PriorityKind, SystemSpec
from repro.core.priority import StaticPriority, make_priority_provider
from repro.htm.isa import Plain, Txn, compute, fault, load, store
from repro.htm.txstate import TxMode, TxState
from repro.sim.machine import Machine
from repro.common.params import typical_params
from conftest import line_addr


def run_spec(programs, spec, seed=0):
    m = Machine(typical_params(), spec, programs, seed=seed)
    m.run()
    return m


class TestSpecValidation:
    def test_switch_on_faults_requires_switching(self):
        with pytest.raises(ConfigError):
            SystemSpec(
                name="bad",
                recovery=True,
                htmlock=True,
                switching_on_faults=True,
            )

    def test_extension_registry(self):
        exts = extension_systems()
        assert "LockillerTM-XF" in exts
        assert "LockillerTM-RWS" in exts

    def test_not_in_table2(self):
        from repro.harness.systems import SYSTEMS

        assert "LockillerTM-XF" not in SYSTEMS
        assert "LockillerTM-RWS" not in SYSTEMS

    def test_describe_mentions_extension(self):
        assert "switchOnFault(ext)" in SWITCH_ON_FAULT_SPEC.describe()


class TestSwitchOnFault:
    def test_fault_switches_instead_of_aborting(self):
        prog = [[Txn([compute(5), fault(persistent=True),
                      store(line_addr(1), 1)])]]
        m = run_spec(prog, SWITCH_ON_FAULT_SPEC)
        cs = m.core_stats[0]
        assert cs.switch_attempts == 1
        assert cs.switch_successes == 1
        assert cs.commits_switched == 1
        assert cs.aborts[AbortReason.FAULT] == 0
        assert m.memsys.memory[line_addr(1)] == 1
        assert m.hl_arbiter.owner is None

    def test_denied_switch_falls_back_like_paper(self):
        # Core 0 occupies HTMLock mode; core 1's fault-switch is denied
        # and it aborts with reason fault, exactly like base LockillerTM.
        prog0 = [Txn([fault(persistent=True), compute(30000),
                      store(line_addr(9), 1)])]
        prog1 = [
            Plain([compute(1000)]),
            Txn([fault(persistent=True), store(line_addr(2), 1)]),
        ]
        m = run_spec([prog0, prog1], SWITCH_ON_FAULT_SPEC)
        cs1 = m.core_stats[1]
        assert cs1.switch_attempts >= 1
        assert cs1.aborts[AbortReason.FAULT] >= 1
        assert m.memsys.memory[line_addr(2)] == 1  # still commits

    def test_one_shot_fault_not_marked_taken_on_switch(self):
        # A granted switch handles the trap non-speculatively; functional
        # outcome is unchanged either way.
        prog = [[Txn([fault(), store(line_addr(3), 1)])]]
        m = run_spec(prog, SWITCH_ON_FAULT_SPEC)
        assert m.memsys.memory[line_addr(3)] == 1

    def test_helps_on_yada(self):
        from repro.harness.systems import get_system
        from repro.sim.runner import RunConfig, run_workload
        from repro.workloads.registry import get_workload

        base = run_workload(
            get_workload("yada"),
            RunConfig(spec=get_system("LockillerTM"), threads=4, scale=0.3,
                      seed=3),
        )
        ext = run_workload(
            get_workload("yada"),
            RunConfig(spec=SWITCH_ON_FAULT_SPEC, threads=4, scale=0.3, seed=3),
        )
        # Rescuing faulting transactions must not hurt, and should
        # convert fault aborts into switched commits.
        assert ext.merged().commits_switched > base.merged().commits_switched
        assert (
            ext.abort_breakdown()[AbortReason.FAULT]
            < base.abort_breakdown()[AbortReason.FAULT]
        )


class TestStaticPriority:
    def test_provider_fixed_and_descending(self):
        p = make_priority_provider(PriorityKind.STATIC)
        assert isinstance(p, StaticPriority)
        tx0, tx5 = TxState(0), TxState(5)
        tx0.begin(TxMode.HTM, 0)
        tx5.begin(TxMode.HTM, 0)
        tx5.insts_in_attempt = 10**6  # irrelevant for static
        assert p.priority_of(tx0, 0) > p.priority_of(tx5, 0)
        assert p.priority_of(tx5, 0) == p.priority_of(tx5, 10**9)

    def test_no_livelock_and_correct(self):
        progs = [
            [
                Plain([compute(3 + t)]),
                *[
                    Txn([load(line_addr(0)), store(line_addr(0), 1)])
                    for _ in range(4)
                ],
            ]
            for t in range(4)
        ]
        m = run_spec(progs, STATIC_PRIORITY_SPEC)
        assert m.memsys.memory[line_addr(0)] == 16

    def test_static_is_unfair(self):
        # Low-id (high static priority) cores should see fewer aborts
        # than high-id cores on a symmetric contended workload.
        progs = [
            [
                Plain([compute(3 + t)]),
                *[
                    Txn(
                        [
                            compute(10),
                            load(line_addr(0)),
                            store(line_addr(0), 1),
                            compute(10),
                        ]
                    )
                    for _ in range(12)
                ],
            ]
            for t in range(6)
        ]
        m = run_spec(progs, STATIC_PRIORITY_SPEC, seed=4)
        aborts = [cs.total_aborts for cs in m.core_stats]
        assert aborts[0] <= aborts[-1]
