"""Golden determinism pins + parallel/serial bit-identity.

Two guarantees are load-bearing for the whole harness:

1. A run is a pure function of ``(workload, system, threads, scale,
   seed, params)`` — so the exact cycle counts and behaviour
   fingerprints below must reproduce forever.  Any intentional timing
   change to the simulator must update these pins (and bump
   ``CACHE_SCHEMA_VERSION`` in :mod:`repro.harness.runcache`).
2. Executing a sweep through worker processes (``jobs > 1``) and
   through the run cache must be *bit-identical* to the plain serial
   loop — parallelism and caching are pure plumbing.

The pinned cell (intruder, 4 threads, scale 0.05, seed 3) is chosen
because it distinguishes all nine Table-II systems: enough contention
that every recovery policy takes a different path.
"""

import pytest

from repro.harness.export import fingerprint
from repro.harness.sweeps import Sweep
from repro.harness.systems import TABLE_ORDER, get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload

#: system -> (execution_cycles, fingerprint, commits, total_aborts)
#: for intruder / 4 threads / scale 0.05 / seed 3.
GOLD = {
    "CGL": (27031, "2d70294118c81403", 40, 0),
    "Baseline": (14349, "d759f437ab096f37", 40, 45),
    "LosaTM-SAFU": (9735, "18fecf3ee72f6b8b", 40, 5),
    "LockillerTM-RAI": (10180, "644ba7a56a14df50", 40, 20),
    "LockillerTM-RRI": (9835, "6addeff532bfa9c9", 40, 2),
    "LockillerTM-RWI": (9755, "1877f557f4e76393", 40, 5),
    "LockillerTM-RWL": (9722, "f30a29c49ce5a63b", 40, 6),
    "LockillerTM-RWIL": (9755, "1877f557f4e76393", 40, 5),
    "LockillerTM": (9755, "1877f557f4e76393", 40, 5),
}


def _run(system: str):
    return run_workload(
        get_workload("intruder"),
        RunConfig(spec=get_system(system), threads=4, scale=0.05, seed=3),
    )


class TestGoldenPins:
    def test_gold_covers_table2(self):
        assert set(GOLD) == set(TABLE_ORDER)

    @pytest.mark.parametrize("system", sorted(GOLD))
    def test_pinned_cell(self, system):
        cycles, fp, commits, aborts = GOLD[system]
        stats = _run(system)
        merged = stats.merged()
        assert stats.execution_cycles == cycles
        assert fingerprint(stats) == fp
        assert merged.commits == commits
        assert merged.total_aborts == aborts

    def test_back_to_back_runs_identical(self):
        a, b = _run("LockillerTM"), _run("LockillerTM")
        assert fingerprint(a) == fingerprint(b)


@pytest.fixture(scope="module")
def grid():
    """A 16-cell grid with real contention variety."""
    return Sweep(
        workloads=("kmeans+", "ssca2"),
        systems=("CGL", "Baseline", "LockillerTM-RWI", "LockillerTM"),
        threads=(2, 4),
        seeds=(1,),
        scale=0.05,
    )


def _prints(results):
    return [
        (r.point.label(), r.cycles, fingerprint(r.stats))
        for r in results.records
    ]


class TestParallelBitIdentity:
    def test_parallel_matches_serial(self, grid):
        assert grid.size() == 16
        serial = grid.run(jobs=1)
        parallel = grid.run(jobs=4)
        assert _prints(parallel) == _prints(serial)

    def test_cached_matches_serial_and_warm_cache_skips(self, grid, tmp_path):
        from repro.harness.runcache import RunCache

        serial = grid.run(jobs=1)
        cache = RunCache(str(tmp_path / "rc"))
        cold = grid.run(jobs=4, cache=cache)
        assert cache.stores == grid.size()
        assert _prints(cold) == _prints(serial)

        warm_cache = RunCache(str(tmp_path / "rc"))
        warm = grid.run(jobs=4, cache=warm_cache)
        assert warm_cache.hits == grid.size()
        assert warm_cache.misses == 0
        assert warm_cache.stores == 0
        assert _prints(warm) == _prints(serial)
