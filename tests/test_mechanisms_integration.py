"""Integration tests asserting the paper's mechanism-level claims on
real (scaled-down) workload runs.

These are the behavioural statements of §III/§IV, checked end-to-end:
recovery raises commit rates under contention, HTMLock eliminates mutex
aborts and shrinks waitlock time, switchingMode converts overflow aborts
into switched commits, and the headline orderings hold.
"""

import pytest

from repro.common.params import small_cache_params
from repro.common.stats import AbortReason, TimeCat
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def run(workload, system, threads=4, scale=0.15, seed=21, params=None):
    cfg = RunConfig(
        spec=get_system(system), threads=threads, scale=scale, seed=seed
    )
    if params is not None:
        cfg.params = params
    return run_workload(get_workload(workload), cfg)


class TestRecoveryMechanism:
    """§III-A / Fig. 8: recovery + insts-priority raises commit rates and
    suppresses friendly fire on contended workloads."""

    @pytest.mark.parametrize("workload", ["intruder", "kmeans+"])
    def test_commit_rate_improves(self, workload):
        base = run(workload, "Baseline", threads=8)
        rwi = run(workload, "LockillerTM-RWI", threads=8)
        assert rwi.commit_rate > base.commit_rate

    def test_rejects_replace_aborts(self, ):
        base = run("intruder", "Baseline", threads=8)
        rwi = run("intruder", "LockillerTM-RWI", threads=8)
        assert rwi.merged().rejects_received > 0
        assert rwi.total_aborts < base.total_aborts

    def test_recovery_speeds_up_contended_runs(self):
        base = run("intruder", "Baseline", threads=8)
        rwi = run("intruder", "LockillerTM-RWI", threads=8)
        assert rwi.execution_cycles < base.execution_cycles

    def test_insts_priority_beats_none_under_contention(self):
        rwil = run("intruder", "LockillerTM-RWIL", threads=8)
        rwl = run("intruder", "LockillerTM-RWL", threads=8)
        # Fig. 7/12: the insts-based variant is the stronger system.
        assert rwil.execution_cycles <= rwl.execution_cycles * 1.3


class TestHTMLockMechanism:
    """§III-B / Figs. 9-10: lock transactions coexist with HTM ones."""

    @pytest.mark.parametrize("workload", ["labyrinth", "yada"])
    def test_mutex_aborts_eliminated(self, workload):
        base = run(workload, "Baseline")
        rwil = run(workload, "LockillerTM-RWIL")
        assert base.abort_breakdown()[AbortReason.MUTEX] > 0
        assert rwil.abort_breakdown()[AbortReason.MUTEX] == 0

    def test_waitlock_time_shrinks(self):
        rwi = run("labyrinth", "LockillerTM-RWI", threads=8)
        rwil = run("labyrinth", "LockillerTM-RWIL", threads=8)
        assert (
            rwil.time_breakdown()[TimeCat.WAITLOCK]
            < rwi.time_breakdown()[TimeCat.WAITLOCK]
        )

    def test_lock_conflicts_attributed(self):
        rwil = run("labyrinth", "LockillerTM-RWIL", threads=8)
        bd = rwil.abort_breakdown()
        # Conflicts with lock transactions appear under the new reason.
        assert bd[AbortReason.CONFLICT_LOCK] >= 0  # present in taxonomy
        assert AbortReason.MUTEX in bd

    def test_overflow_heavy_workload_speeds_up(self):
        rwi = run("labyrinth", "LockillerTM-RWI", threads=8)
        rwil = run("labyrinth", "LockillerTM-RWIL", threads=8)
        assert rwil.execution_cycles < rwi.execution_cycles


class TestSwitchingMode:
    """§III-C / Figs. 10-11: overflow aborts become switched commits."""

    def test_switched_commits_appear(self):
        full = run("labyrinth", "LockillerTM", threads=2)
        assert full.merged().commits_switched > 0
        assert full.time_breakdown()[TimeCat.SWITCH_LOCK] > 0

    def test_overflow_aborts_reduced(self):
        rwil = run("labyrinth", "LockillerTM-RWIL", threads=2)
        full = run("labyrinth", "LockillerTM", threads=2)
        assert (
            full.abort_breakdown()[AbortReason.OVERFLOW]
            < rwil.abort_breakdown()[AbortReason.OVERFLOW]
        )

    def test_commit_rate_improves_on_overflowing_workload(self):
        rwil = run("labyrinth", "LockillerTM-RWIL", threads=2)
        full = run("labyrinth", "LockillerTM", threads=2)
        assert full.commit_rate >= rwil.commit_rate

    def test_no_switching_without_overflow(self):
        full = run("kmeans-", "LockillerTM", threads=4)
        assert full.merged().switch_attempts == 0


class TestPaperHeadlines:
    """Fig. 7 / Fig. 12 orderings at reduced scale."""

    @pytest.mark.parametrize(
        "workload",
        ["genome", "intruder", "kmeans+", "kmeans-", "ssca2", "vacation+", "vacation-"],
    )
    def test_lockiller_beats_cgl(self, workload):
        cgl = run(workload, "CGL", threads=8)
        full = run(workload, "LockillerTM", threads=8)
        assert full.execution_cycles < cgl.execution_cycles

    def test_yada_is_the_exception(self):
        cgl = run("yada", "CGL", threads=2, scale=0.5)
        full = run("yada", "LockillerTM", threads=2, scale=0.5)
        assert full.execution_cycles > cgl.execution_cycles * 0.95

    def test_lockiller_beats_baseline_on_average(self):
        import math

        logs = []
        for wl in ("intruder", "vacation+", "labyrinth", "kmeans+"):
            base = run(wl, "Baseline", threads=8)
            full = run(wl, "LockillerTM", threads=8)
            logs.append(math.log(base.execution_cycles / full.execution_cycles))
        assert math.exp(sum(logs) / len(logs)) > 1.2

    def test_small_cache_amplifies_gains(self):
        base = run(
            "vacation+", "Baseline", threads=8, params=small_cache_params()
        )
        full = run(
            "vacation+", "LockillerTM", threads=8, params=small_cache_params()
        )
        assert full.execution_cycles < base.execution_cycles

    def test_losatm_between_baseline_and_lockiller(self):
        base = run("intruder", "Baseline", threads=8)
        losa = run("intruder", "LosaTM-SAFU", threads=8)
        full = run("intruder", "LockillerTM", threads=8)
        assert losa.execution_cycles < base.execution_cycles
        assert full.execution_cycles <= losa.execution_cycles * 1.15
