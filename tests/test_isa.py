"""Unit tests for the micro-op ISA and program representation."""

import pytest

from repro.htm.isa import (
    OP_COMPUTE,
    OP_FAULT,
    OP_LOAD,
    OP_STORE,
    Plain,
    Txn,
    compute,
    fault,
    load,
    program_stats,
    store,
)


class TestOpConstructors:
    def test_compute(self):
        assert compute(5) == (OP_COMPUTE, 5, 0)

    def test_compute_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            compute(0)

    def test_load(self):
        assert load(128) == (OP_LOAD, 128, 0)
        with pytest.raises(ValueError):
            load(-1)

    def test_store(self):
        assert store(128, 7) == (OP_STORE, 128, 7)
        assert store(128) == (OP_STORE, 128, 0)
        with pytest.raises(ValueError):
            store(-4, 1)

    def test_fault(self):
        assert fault() == (OP_FAULT, 0, 0)
        assert fault(persistent=True) == (OP_FAULT, 1, 0)


class TestSegments:
    def test_segment_validates_ops(self):
        with pytest.raises(ValueError):
            Plain([(99, 0, 0)])
        with pytest.raises(ValueError):
            Plain([(OP_LOAD, 1)])  # malformed tuple

    def test_txn_line_sets(self):
        t = Txn([compute(2), load(0), load(64), store(64, 1), store(256, 1)])
        assert t.read_lines() == {0, 1, 4}
        assert t.write_lines() == {1, 4}

    def test_num_ops(self):
        assert Plain([compute(1), load(0)]).num_ops == 2

    def test_txn_tag(self):
        assert Txn([load(0)], tag="x").tag == "x"


class TestProgramStats:
    def test_counts(self):
        prog = [
            Plain([compute(10), load(0)]),
            Txn([load(0), store(64, 1), fault()]),
            Txn([store(128, 2)]),
        ]
        s = program_stats(prog)
        assert s["segments"] == 3
        assert s["txns"] == 2
        assert s["loads"] == 2
        assert s["stores"] == 2
        assert s["faults"] == 1
        assert s["mean_tx_ops"] == pytest.approx(2.0)

    def test_empty_program(self):
        s = program_stats([])
        assert s["txns"] == 0 and s["mean_tx_ops"] == 0.0
