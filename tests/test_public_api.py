"""Public API surface checks: imports, __all__, and docstring hygiene."""

import importlib
import pkgutil

import pytest

import repro


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quick_tour_smoke(self):
        """The snippet from the package docstring actually works."""
        from repro import RunConfig, get_system, get_workload, run_workload

        stats = run_workload(
            get_workload("intruder"),
            RunConfig(spec=get_system("LockillerTM"), threads=4, scale=0.05),
        )
        assert stats.commit_rate > 0


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(iter_modules())


class TestModuleHygiene:
    @pytest.mark.parametrize("modname", ALL_MODULES)
    def test_module_imports_cleanly(self, modname):
        mod = importlib.import_module(modname)
        assert mod is not None

    @pytest.mark.parametrize("modname", ALL_MODULES)
    def test_module_has_docstring(self, modname):
        mod = importlib.import_module(modname)
        assert mod.__doc__ and mod.__doc__.strip(), modname

    def test_expected_subpackages_present(self):
        pkgs = {m.split(".")[1] for m in ALL_MODULES if m.count(".") >= 1}
        assert {
            "common",
            "interconnect",
            "coherence",
            "htm",
            "core",
            "sim",
            "workloads",
            "baselines",
            "harness",
        } <= pkgs

    def test_public_classes_documented(self):
        """Every public class in the core mechanism package has a doc."""
        import inspect

        for modname in (m for m in ALL_MODULES if ".core." in m):
            mod = importlib.import_module(modname)
            for name, obj in vars(mod).items():
                if (
                    inspect.isclass(obj)
                    and obj.__module__ == modname
                    and not name.startswith("_")
                ):
                    assert obj.__doc__, f"{modname}.{name} missing docstring"
