"""Tests for the fuzzer and a fuzz-based stress pass over all systems."""

import numpy as np
import pytest

from repro.common.rng import substream
from repro.htm.isa import Txn
from repro.sim.fuzz import (
    DEFAULT_SYSTEMS,
    FuzzReport,
    fuzz_params,
    random_programs,
    run_fuzz,
)


class TestGenerator:
    def test_deterministic(self):
        a = random_programs(substream(1, "x"))
        b = random_programs(substream(1, "x"))
        assert [[s.ops for s in p] for p in a] == [
            [s.ops for s in p] for p in b
        ]

    def test_respects_bounds(self):
        for seed in range(10):
            progs = random_programs(
                substream(seed, "b"), max_threads=3, max_segments=2, max_ops=4
            )
            assert 1 <= len(progs) <= 3
            for prog in progs:
                assert 1 <= len(prog) <= 2
                for seg in prog:
                    assert len(seg.ops) <= 6  # compute + ops (+ fault)

    def test_plain_segments_never_fault(self):
        for seed in range(20):
            progs = random_programs(substream(seed, "c"), fault_prob=1.0)
            for prog in progs:
                for seg in prog:
                    if not isinstance(seg, Txn):
                        assert all(op[0] != 3 for op in seg.ops)

    def test_fuzz_params_tiny(self):
        p = fuzz_params()
        assert p.l1.num_lines == 4  # overflow-prone on purpose


class TestFuzzRuns:
    def test_clean_report_all_systems(self):
        report = run_fuzz(cases=12, seed=7)
        assert report.ok, report.render()
        assert report.runs == 12 * len(DEFAULT_SYSTEMS)

    def test_paranoid_mode(self):
        report = run_fuzz(
            cases=4, seed=3, systems=("LockillerTM",), paranoid=True
        )
        assert report.ok, report.render()

    def test_report_render(self):
        r = FuzzReport(cases=1, runs=1)
        assert "0 failure" in r.render()

    @pytest.mark.parametrize("seed", [11, 99, 12345])
    def test_seed_sweep_on_full_stack(self, seed):
        report = run_fuzz(cases=6, seed=seed, systems=("LockillerTM",))
        assert report.ok, report.render()
