"""Unit tests for the directory (owner/sharers, SWMR checking)."""

import pytest

from repro.common.errors import ProtocolInvariantError
from repro.common.params import CacheParams
from repro.coherence.cachearray import CacheArray
from repro.coherence.directory import Directory
from repro.coherence.states import MESI


@pytest.fixture
def directory() -> Directory:
    return Directory()


class TestTransitions:
    def test_fresh_entry_idle(self, directory):
        e = directory.entry(1)
        assert e.is_idle
        assert e.owner == -1 and not e.sharers

    def test_set_exclusive(self, directory):
        directory.add_sharer(1, 0)
        directory.set_exclusive(1, 2)
        e = directory.entry(1)
        assert e.owner == 2 and not e.sharers
        assert directory.copies(1) == {2}

    def test_add_sharer(self, directory):
        directory.add_sharer(1, 0)
        directory.add_sharer(1, 3)
        assert directory.copies(1) == {0, 3}

    def test_add_sharer_to_owned_line_raises(self, directory):
        directory.set_exclusive(1, 2)
        with pytest.raises(ProtocolInvariantError):
            directory.add_sharer(1, 0)

    def test_add_sharer_owner_is_noop(self, directory):
        directory.set_exclusive(1, 2)
        directory.add_sharer(1, 2)  # keeps exclusive state
        assert directory.owner_of(1) == 2

    def test_demote_owner(self, directory):
        directory.set_exclusive(1, 2)
        directory.demote_owner_to_sharer(1)
        e = directory.entry(1)
        assert e.owner == -1 and e.sharers == {2}

    def test_demote_without_owner_raises(self, directory):
        directory.add_sharer(1, 0)
        with pytest.raises(ProtocolInvariantError):
            directory.demote_owner_to_sharer(1)

    def test_remove_copy(self, directory):
        directory.add_sharer(1, 0)
        directory.add_sharer(1, 3)
        directory.remove_copy(1, 0)
        assert directory.copies(1) == {3}
        directory.remove_copy(1, 3)
        assert directory.entry(1).is_idle

    def test_remove_copy_owner(self, directory):
        directory.set_exclusive(1, 2)
        directory.remove_copy(1, 2)
        assert directory.owner_of(1) == -1

    def test_remove_copy_untracked_line_is_noop(self, directory):
        directory.remove_copy(99, 0)

    def test_other_copies(self, directory):
        directory.add_sharer(1, 0)
        directory.add_sharer(1, 3)
        assert directory.other_copies(1, 0) == {3}
        assert directory.other_copies(1, 5) == {0, 3}


class TestSwmrCheck:
    def _l1s(self, n=2, sets=4, ways=2):
        return [CacheArray(CacheParams(sets * ways * 64, ways, 2)) for _ in range(n)]

    def test_consistent_state_passes(self, directory):
        l1s = self._l1s()
        l1s[0].insert(1, MESI.M)
        directory.set_exclusive(1, 0)
        l1s[1].insert(2, MESI.S)
        directory.add_sharer(2, 1)
        directory.check_swmr(l1s)

    def test_two_owners_detected(self, directory):
        l1s = self._l1s()
        l1s[0].insert(1, MESI.M)
        l1s[1].insert(1, MESI.M)
        directory.set_exclusive(1, 0)
        with pytest.raises(ProtocolInvariantError):
            directory.check_swmr(l1s)

    def test_untracked_l1_line_detected(self, directory):
        l1s = self._l1s()
        l1s[0].insert(1, MESI.S)
        with pytest.raises(ProtocolInvariantError):
            directory.check_swmr(l1s)

    def test_owner_mismatch_detected(self, directory):
        l1s = self._l1s()
        l1s[0].insert(1, MESI.E)
        directory.entry(1)  # tracked, but no owner recorded
        with pytest.raises(ProtocolInvariantError):
            directory.check_swmr(l1s)

    def test_unknown_sharer_detected(self, directory):
        l1s = self._l1s()
        l1s[1].insert(2, MESI.S)
        directory.entry(2)
        with pytest.raises(ProtocolInvariantError):
            directory.check_swmr(l1s)

    def test_owner_plus_sharer_entry_detected(self, directory):
        e = directory.entry(1)
        e.owner = 0
        e.sharers = {1}
        with pytest.raises(ProtocolInvariantError):
            directory.check_swmr(self._l1s())

    def test_busy_until_default_zero(self, directory):
        assert directory.entry(5).busy_until == 0
