"""Unit and property tests for the LLC overflow signatures (§III-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.core.signatures import BloomSignature


class TestBasics:
    def test_empty_initially(self):
        sig = BloomSignature(256, 2)
        assert sig.empty
        assert not sig.test(1)

    def test_insert_then_test(self):
        sig = BloomSignature(256, 2)
        sig.insert(7)
        assert sig.test(7)
        assert not sig.empty
        assert sig.inserted == 1

    def test_clear(self):
        sig = BloomSignature(256, 2)
        sig.insert(7)
        sig.clear()
        assert sig.empty
        assert not sig.test(7)
        assert sig.inserted == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            BloomSignature(100, 2)

    def test_rejects_zero_hashes(self):
        with pytest.raises(ConfigError):
            BloomSignature(256, 0)

    def test_seed_changes_mapping(self):
        a = BloomSignature(64, 1, seed=1)
        b = BloomSignature(64, 1, seed=2)
        a.insert(5)
        b.insert(5)
        assert a._field != b._field or True  # mappings may rarely coincide
        # but at least the constructors accept distinct seeds
        assert a.hashes == b.hashes

    def test_popcount_grows(self):
        sig = BloomSignature(2048, 4)
        before = sig.popcount
        sig.insert(10)
        assert sig.popcount > before

    def test_false_positive_rate_monotone(self):
        sig = BloomSignature(256, 4)
        assert sig.false_positive_rate() == 0.0
        for i in range(50):
            sig.insert(i)
        assert 0 < sig.false_positive_rate() <= 1.0


class TestNoFalseNegatives:
    """A Bloom signature must never miss a real member — missing one
    would let an HTM transaction steal the irrevocable lock
    transaction's data (§III-B)."""

    @given(st.sets(st.integers(0, 2**40), max_size=200))
    @settings(max_examples=80)
    def test_every_inserted_line_tests_positive(self, lines):
        sig = BloomSignature(1024, 4, seed=3)
        for ln in lines:
            sig.insert(ln)
        for ln in lines:
            assert sig.test(ln)

    @given(st.sets(st.integers(0, 2**30), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_clear_then_reinsert(self, lines):
        sig = BloomSignature(512, 2)
        for ln in lines:
            sig.insert(ln)
        sig.clear()
        sig.insert(99)
        assert sig.test(99)


class TestFalsePositiveBehaviour:
    def test_fp_rate_reasonable_at_paper_size(self):
        # Table-defaults: 2048 bits, 4 hashes; a 200-line overflow set
        # (a big labyrinth spill) should stay well under 10% FP.
        sig = BloomSignature(2048, 4)
        members = set(range(0, 200 * 64, 64))
        for ln in members:
            sig.insert(ln)
        probes = [ln for ln in range(1_000_000, 1_002_000) if ln not in members]
        fp = sum(sig.test(ln) for ln in probes) / len(probes)
        assert fp < 0.10

    def test_saturated_signature_rejects_everything(self):
        sig = BloomSignature(64, 1)
        for ln in range(500):
            sig.insert(ln)
        # Fully saturated -> conservative: everything tests positive.
        assert all(sig.test(ln) for ln in range(1000, 1010))
