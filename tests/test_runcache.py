"""Tests for the persistent run cache and the parallel cell runner."""

import dataclasses
import json
import os

import pytest

from repro.common.params import small_cache_params, typical_params
from repro.harness.export import fingerprint
from repro.harness.parallel import CellTask, resolve_jobs, run_cells
from repro.harness.runcache import (
    RunCache,
    cell_key,
    coerce_cache,
    default_cache_dir,
)
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def _cell(**overrides):
    base = dict(
        workload="ssca2",
        spec=get_system("LockillerTM"),
        params=typical_params(),
        threads=2,
        scale=0.05,
        seed=1,
    )
    base.update(overrides)
    return base


def _stats(cell):
    return run_workload(
        get_workload(cell["workload"]),
        RunConfig(
            spec=cell["spec"],
            threads=cell["threads"],
            scale=cell["scale"],
            seed=cell["seed"],
            params=cell["params"],
        ),
    )


class TestCellKey:
    def test_key_is_stable(self):
        assert cell_key(**_cell()) == cell_key(**_cell())

    @pytest.mark.parametrize(
        "change",
        [
            {"workload": "kmeans+"},
            {"threads": 4},
            {"scale": 0.1},
            {"seed": 2},
            {"spec": get_system("Baseline")},
            {"params": small_cache_params()},
        ],
    )
    def test_any_coordinate_changes_key(self, change):
        assert cell_key(**_cell()) != cell_key(**_cell(**change))

    def test_single_param_field_changes_key(self):
        p = typical_params()
        tweaked = dataclasses.replace(
            p, l1=dataclasses.replace(p.l1, hit_latency=p.l1.hit_latency + 1)
        )
        assert cell_key(**_cell()) != cell_key(**_cell(params=tweaked))

    def test_schema_version_in_key(self, monkeypatch):
        import repro.harness.runcache as rc

        before = cell_key(**_cell())
        monkeypatch.setattr(rc, "CACHE_SCHEMA_VERSION", 9999)
        assert cell_key(**_cell()) != before

    def test_numeric_type_does_not_change_key(self):
        # scale=1 (int) and scale=1.0 (float) describe the same cell and
        # must land on the same cache entry; likewise bool-typed threads
        # or numpy-style integral seeds collapsing to int.
        assert cell_key(**_cell(scale=1)) == cell_key(**_cell(scale=1.0))
        assert cell_key(**_cell(seed=1.0)) == cell_key(**_cell(seed=1))
        assert cell_key(**_cell(threads=2.0)) == cell_key(**_cell(threads=2))
        # Distinct values still hash apart.
        assert cell_key(**_cell(scale=1)) != cell_key(**_cell(scale=2))


class TestRunCache:
    def test_roundtrip(self, tmp_path):
        cell = _cell()
        stats = _stats(cell)
        cache = RunCache(str(tmp_path))
        assert cache.get_cell(**cell) is None
        cache.put_cell(**cell, stats=stats)
        loaded = cache.get_cell(**cell)
        assert loaded is not None
        assert fingerprint(loaded) == fingerprint(stats)
        assert loaded.execution_cycles == stats.execution_cycles
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cell = _cell()
        cache = RunCache(str(tmp_path))
        cache.put_cell(**cell, stats=_stats(cell))
        path = cache.path_for(cell_key(**cell))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{ not json")
        assert cache.get_cell(**cell) is None

    def test_corrupt_entry_unlinked_and_repaired(self, tmp_path):
        """Corrupt entries are evicted so the next run re-stores cleanly."""
        cell = _cell()
        stats = _stats(cell)
        cache = RunCache(str(tmp_path))
        cache.put_cell(**cell, stats=stats)
        path = cache.path_for(cell_key(**cell))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{ not json")

        # Corrupt read: a miss, and the poisoned file is gone.
        assert cache.get_cell(**cell) is None
        assert not os.path.exists(path)
        assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)

        # Repair: the re-store lands and the next get is a clean hit.
        cache.put_cell(**cell, stats=stats)
        loaded = cache.get_cell(**cell)
        assert loaded is not None
        assert fingerprint(loaded) == fingerprint(stats)
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 2)

    def test_concurrent_same_key_puts(self, tmp_path):
        """Threaded same-key puts must not interleave temp-file writes."""
        import threading

        cell = _cell()
        stats = _stats(cell)
        cache = RunCache(str(tmp_path))
        errors = []

        def writer():
            try:
                for _ in range(5):
                    cache.put_cell(**cell, stats=stats)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        loaded = cache.get_cell(**cell)
        assert loaded is not None
        assert fingerprint(loaded) == fingerprint(stats)
        # No stray temp files survive the races.
        shard = os.path.dirname(cache.path_for(cell_key(**cell)))
        assert [f for f in os.listdir(shard) if ".tmp." in f] == []

    def test_stale_schema_entry_is_a_miss(self, tmp_path):
        cell = _cell()
        cache = RunCache(str(tmp_path))
        cache.put_cell(**cell, stats=_stats(cell))
        path = cache.path_for(cell_key(**cell))
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        data["schema"] = -1
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        assert cache.get_cell(**cell) is None

    def test_sharded_layout(self, tmp_path):
        key = cell_key(**_cell())
        cache = RunCache(str(tmp_path))
        assert cache.path_for(key) == os.path.join(
            str(tmp_path), key[:2], f"{key}.json"
        )

    def test_default_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_CACHE_DIR", "/tmp/somewhere")
        assert default_cache_dir() == "/tmp/somewhere"


class TestCoerceCache:
    def test_none_and_false(self):
        assert coerce_cache(None) is None
        assert coerce_cache(False) is None

    def test_passthrough(self, tmp_path):
        cache = RunCache(str(tmp_path))
        assert coerce_cache(cache) is cache

    def test_path(self, tmp_path):
        cache = coerce_cache(str(tmp_path))
        assert isinstance(cache, RunCache)
        assert cache.root == str(tmp_path)

    def test_true_uses_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_CACHE_DIR", str(tmp_path))
        assert coerce_cache(True).root == str(tmp_path)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            coerce_cache(42)


class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) >= 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_malformed_env_names_variable_and_convention(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "all")
        with pytest.raises(ValueError) as err:
            resolve_jobs(None)
        msg = str(err.value)
        assert "REPRO_JOBS" in msg and "'all'" in msg
        assert "0 = one worker per CPU" in msg


class TestRunCells:
    def _tasks(self):
        return [
            CellTask(i, wl, get_system("CGL"), 2, 0.05, 1, typical_params())
            for i, wl in enumerate(("ssca2", "kmeans+"))
        ]

    def test_empty(self):
        assert run_cells([]) == []

    def test_serial_and_parallel_agree(self):
        serial = run_cells(self._tasks(), jobs=1)
        parallel = run_cells(self._tasks(), jobs=2)
        assert [fingerprint(s) for s in serial] == [
            fingerprint(s) for s in parallel
        ]

    def test_sparse_indices_leave_none_slots(self):
        task = CellTask(
            2, "ssca2", get_system("CGL"), 2, 0.05, 1, typical_params()
        )
        out = run_cells([task], jobs=1)
        assert len(out) == 3
        assert out[0] is None and out[1] is None
        assert out[2] is not None

    def test_on_done_fires_per_task(self):
        seen = []
        run_cells(self._tasks(), jobs=1, on_done=lambda t, s: seen.append(t))
        assert {t.index for t in seen} == {0, 1}


class TestMultiseedIntegration:
    def test_multi_seed_parallel_and_cached(self, tmp_path):
        from repro.harness.multiseed import multi_seed_runs, paired_speedup

        seeds = (1, 2, 3)
        serial = multi_seed_runs("ssca2", "LockillerTM", 2, seeds, scale=0.05)
        cache = RunCache(str(tmp_path))
        parallel = multi_seed_runs(
            "ssca2", "LockillerTM", 2, seeds, scale=0.05, jobs=2, cache=cache
        )
        assert [fingerprint(s) for s in serial] == [
            fingerprint(s) for s in parallel
        ]
        assert cache.stores == len(seeds)

        warm = multi_seed_runs(
            "ssca2", "LockillerTM", 2, seeds, scale=0.05, cache=cache
        )
        assert cache.hits >= len(seeds)
        assert [fingerprint(s) for s in warm] == [
            fingerprint(s) for s in serial
        ]

        sp = paired_speedup(
            "ssca2", "CGL", "LockillerTM", 2, seeds, scale=0.05, cache=cache
        )
        assert sp.n == len(seeds)
        assert sp.mean > 0


class TestResilientIntegration:
    def test_resilient_sweep_uses_cache(self, tmp_path):
        from repro.harness.sweeps import Sweep

        sweep = Sweep(
            workloads=("ssca2",),
            systems=("CGL", "LockillerTM"),
            threads=(2,),
            seeds=(1,),
            scale=0.05,
        )
        cache = RunCache(str(tmp_path))
        cold = sweep.run_resilient(cache=cache)
        assert cold.ok and cold.executed == 2
        assert cache.stores == 2

        warm = sweep.run_resilient(cache=cache)
        assert warm.ok and warm.executed == 0 and warm.resumed == 2
        assert [fingerprint(r.stats) for r in warm.results.records] == [
            fingerprint(r.stats) for r in cold.results.records
        ]

    def test_fault_plan_bypasses_cache(self, tmp_path):
        from repro.harness.sweeps import Sweep
        from repro.resilience.faults import get_plan, plan_names

        sweep = Sweep(
            workloads=("ssca2",),
            systems=("CGL",),
            threads=(2,),
            seeds=(1,),
            scale=0.05,
        )
        cache = RunCache(str(tmp_path))
        plan = get_plan(plan_names()[0])
        report = sweep.run_resilient(cache=cache, fault_plan=plan)
        assert report.executed == 1
        assert cache.stores == 0 and cache.hits == 0
