"""Edge-case tests for the CPU state machine: parked timeouts, stale
wake-ups, retry-later storms, plain-access rejections, deadlock guard."""

from dataclasses import replace

import pytest

from repro.common.errors import DeadlockError
from repro.common.params import SystemParams, typical_params
from repro.common.stats import AbortReason, TimeCat
from repro.harness.systems import get_system
from repro.htm.isa import Plain, Txn, compute, fault, load, store
from repro.sim.machine import Machine
from conftest import line_addr, make_machine


def params_with(**htm_overrides) -> SystemParams:
    base = typical_params()
    return replace(base, htm=replace(base.htm, **htm_overrides))


class TestWakeupTimeout:
    def test_timeout_guard_fires_for_long_tl_holder(self):
        # Core 0 sits in TL mode on line 1 for far longer than the
        # wake-up timeout; core 1 parks, times out, retries, parks again.
        params = params_with(wakeup_timeout=500)
        prog0 = [Txn([fault(persistent=True), store(line_addr(1), 1),
                      compute(30000)])]
        prog1 = [
            Plain([compute(2500)]),
            Txn([load(line_addr(1)), store(line_addr(1), 1)]),
        ]
        m = make_machine(
            [prog0, prog1], system="LockillerTM-RWIL", params=params
        )
        m.run()
        assert m.core_stats[1].wakeup_timeouts > 0
        assert m.memsys.memory[line_addr(1)] == 2

    def test_no_timeouts_with_generous_guard(self):
        params = params_with(wakeup_timeout=10_000_000)
        prog0 = [Txn([fault(persistent=True), store(line_addr(1), 1),
                      compute(5000)])]
        prog1 = [
            Plain([compute(2500)]),
            Txn([load(line_addr(1)), store(line_addr(1), 1)]),
        ]
        m = make_machine(
            [prog0, prog1], system="LockillerTM-RWIL", params=params
        )
        m.run()
        assert m.core_stats[1].wakeup_timeouts == 0


class TestRetryLater:
    def test_rri_retries_same_op_until_granted(self):
        # Two cores fight over one line under RETRY_LATER; both commit,
        # memory is exact, and at least one retry round occurred.
        def prog(t):
            return [
                Plain([compute(3 + t)]),
                *[
                    Txn([compute(5), load(line_addr(0)),
                         store(line_addr(0), 1), compute(20)])
                    for _ in range(8)
                ],
            ]

        m = make_machine(
            [prog(0), prog(1), prog(2)], system="LockillerTM-RRI"
        )
        m.run()
        assert m.memsys.memory[line_addr(0)] == 24
        assert sum(cs.rejects_received for cs in m.core_stats) > 0
        # RETRY_LATER never parks, so no wake-ups are ever sent.
        assert sum(cs.wakeups_sent for cs in m.core_stats) == 0


class TestPlainRejection:
    def test_plain_access_retries_against_lock_tx(self):
        # Core 0 holds line 1 in TL mode; core 1's *plain* store must
        # bounce (REJECT) and retry until the lock transaction ends.
        prog0 = [Txn([fault(persistent=True), store(line_addr(1), 1),
                      compute(4000)])]
        prog1 = [Plain([compute(2200), store(line_addr(1), 5)])]
        m = make_machine([prog0, prog1], system="LockillerTM-RWIL")
        m.run()
        assert m.memsys.memory[line_addr(1)] == 6
        assert m.core_stats[1].rejects_received >= 1


class TestBackoffAndPenalty:
    def test_abort_penalty_scales_with_write_set(self):
        # Two baseline machines: victim with a big write set pays a
        # bigger rollback bill than one with a single write.
        def build(writes):
            prog0 = [
                Txn(
                    [compute(50)]
                    + [store(line_addr(10 + i), 1) for i in range(writes)]
                    + [compute(3000)]
                )
            ]
            prog1 = [
                Plain([compute(500)]),
                Txn([store(line_addr(10), 1)]),  # stomps core 0's line
            ]
            m = make_machine([prog0, prog1], system="Baseline")
            m.run()
            return m.core_stats[0].time[TimeCat.ROLLBACK]

        assert build(8) > build(1)

    def test_explicit_reason_never_used(self):
        m = make_machine(
            [[Txn([load(line_addr(1)), store(line_addr(2), 1)])]],
        )
        m.run()
        assert m.core_stats[0].aborts[AbortReason.EXPLICIT] == 0


class TestRunGuards:
    def test_max_cycles_triggers_deadlock_error(self):
        m = make_machine([[Plain([compute(10_000)])]])
        with pytest.raises(DeadlockError):
            m.run(max_cycles=100)

    def test_machine_rejects_too_many_threads(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            Machine(
                typical_params(),
                get_system("Baseline"),
                [[] for _ in range(33)],
            )

    def test_abort_all_htm_skips_lock_modes(self):
        # A TL transaction must never be killed by the broadcast.
        m = make_machine([[], []], system="LockillerTM-RWIL")
        from repro.htm.txstate import TxMode

        m.cpus[0].tx.begin(TxMode.TL, 0)
        m.abort_all_htm(AbortReason.MUTEX, exclude=1)
        assert not m.cpus[0].tx.aborted

    def test_external_abort_is_idempotent(self):
        from repro.htm.txstate import TxMode

        m = make_machine([[], []])
        m.cpus[0].tx.begin(TxMode.HTM, 0)
        m.memsys.access(0, line_addr(1), True, 0)
        m.abort_externally(0, AbortReason.CONFLICT_HTM, 0)
        m.abort_externally(0, AbortReason.OVERFLOW, 0)  # ignored
        assert m.cpus[0].tx.abort_reason is AbortReason.CONFLICT_HTM

    def test_abort_on_lock_mode_raises(self):
        from repro.common.errors import SimulationError
        from repro.htm.txstate import TxMode

        m = make_machine([[], []], system="LockillerTM-RWIL")
        m.cpus[0].tx.begin(TxMode.STL, 0)
        with pytest.raises(SimulationError):
            m.abort_externally(0, AbortReason.CONFLICT_HTM, 0)
