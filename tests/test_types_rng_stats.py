"""Unit tests for common.types, common.rng and common.stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import SplitMix64, derive_seed, substream
from repro.common.stats import (
    AbortReason,
    CoreStats,
    RunStats,
    TimeCat,
    geometric_mean,
    speedup,
    weighted_average,
)
from repro.common.types import LINE_SIZE, line_base, line_of, same_line


class TestTypes:
    def test_line_of_base_roundtrip(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1
        assert line_base(3) == 192

    @given(st.integers(min_value=0, max_value=2**48))
    def test_line_of_consistent(self, addr):
        ln = line_of(addr)
        assert line_base(ln) <= addr < line_base(ln) + LINE_SIZE

    @given(st.integers(min_value=0, max_value=2**32), st.integers(0, 63))
    def test_same_line_within_line(self, base, off):
        a = base * LINE_SIZE
        assert same_line(a, a + off)

    def test_different_lines(self):
        assert not same_line(0, 64)


class TestRng:
    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_sensitive_to_tags(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_substream_reproducible(self):
        a = substream(7, "x").integers(0, 1000, size=10)
        b = substream(7, "x").integers(0, 1000, size=10)
        assert (a == b).all()

    def test_splitmix_deterministic(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next_u64() for _ in range(5)] == [
            b.next_u64() for _ in range(5)
        ]

    def test_splitmix_below_range(self):
        r = SplitMix64(1)
        for _ in range(200):
            assert 0 <= r.below(7) < 7

    def test_splitmix_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SplitMix64(1).below(0)

    def test_chance_extremes(self):
        r = SplitMix64(3)
        assert not r.chance(0.0)
        assert r.chance(1.0)

    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_chance_roughly_calibrated(self, p):
        r = SplitMix64(99)
        hits = sum(r.chance(p) for _ in range(2000))
        assert abs(hits / 2000 - p) < 0.08


class TestCoreStats:
    def test_commit_rate_no_attempts(self):
        assert CoreStats().commit_rate == 1.0

    def test_commit_rate(self):
        cs = CoreStats()
        cs.tx_attempts = 10
        cs.commits_htm = 6
        cs.commits_lock = 2
        assert cs.commit_rate == pytest.approx(0.8)

    def test_add_time_rejects_negative(self):
        with pytest.raises(ValueError):
            CoreStats().add_time(TimeCat.HTM, -1)

    def test_totals(self):
        cs = CoreStats()
        cs.aborts[AbortReason.CONFLICT_HTM] = 3
        cs.aborts[AbortReason.OVERFLOW] = 2
        assert cs.total_aborts == 5


class TestRunStats:
    def _stats(self):
        a, b = CoreStats(), CoreStats()
        a.add_time(TimeCat.HTM, 100)
        b.add_time(TimeCat.LOCK, 300)
        a.commits_htm = 4
        a.tx_attempts = 5
        b.commits_lock = 1
        b.tx_attempts = 1
        a.aborts[AbortReason.CONFLICT_HTM] = 1
        return RunStats(execution_cycles=400, cores=[a, b])

    def test_time_breakdown_sums_cores(self):
        bd = self._stats().time_breakdown()
        assert bd[TimeCat.HTM] == 100
        assert bd[TimeCat.LOCK] == 300

    def test_time_fractions_sum_to_one(self):
        fr = self._stats().time_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_abort_fractions(self):
        fr = self._stats().abort_fractions()
        assert fr[AbortReason.CONFLICT_HTM] == pytest.approx(1.0)

    def test_commit_rate_aggregates(self):
        st_ = self._stats()
        assert st_.commits == 5
        assert st_.tx_attempts == 6
        assert st_.commit_rate == pytest.approx(5 / 6)

    def test_merged_matches_breakdown(self):
        st_ = self._stats()
        merged = st_.merged()
        assert merged.time[TimeCat.LOCK] == 300
        assert merged.commits == 5
        assert merged.total_aborts == 1

    def test_empty_fractions(self):
        st_ = RunStats(execution_cycles=0, cores=[CoreStats()])
        assert all(v == 0.0 for v in st_.time_fractions().values())
        assert all(v == 0.0 for v in st_.abort_fractions().values())


class TestAggregators:
    def test_geometric_mean_known(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_single(self):
        assert geometric_mean([3.5]) == pytest.approx(3.5)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=8))
    def test_geometric_mean_bounds(self, vals):
        g = geometric_mean(vals)
        assert min(vals) - 1e-9 <= g <= max(vals) + 1e-9

    def test_speedup(self):
        assert speedup(200, 100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_weighted_average_weights_matter(self):
        # 0.9 with weight 10 vs 0.5 with weight 90: far from the
        # unweighted mean of 0.7.
        assert weighted_average([(0.9, 10), (0.5, 90)]) == pytest.approx(0.54)

    def test_weighted_average_equal_weights_is_mean(self):
        assert weighted_average([(1.0, 1), (2.0, 1), (3.0, 1)]) == pytest.approx(2.0)

    def test_weighted_average_zero_weight_entry_ignored(self):
        assert weighted_average([(100.0, 0), (2.0, 5)]) == pytest.approx(2.0)

    def test_weighted_average_rejects_empty(self):
        with pytest.raises(ValueError):
            weighted_average([])

    def test_weighted_average_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            weighted_average([(1.0, -1.0)])

    def test_weighted_average_rejects_zero_total_weight(self):
        with pytest.raises(ValueError):
            weighted_average([(1.0, 0.0), (2.0, 0.0)])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=0.1, max_value=10),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_weighted_average_bounds(self, pairs):
        w = weighted_average(pairs)
        vals = [v for v, _ in pairs]
        assert min(vals) - 1e-9 <= w <= max(vals) + 1e-9
