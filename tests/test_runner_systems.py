"""Tests for the run orchestration and the Table-II system registry."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.common.params import typical_params
from repro.core.policies import PriorityKind, RequesterPolicy
from repro.harness.systems import (
    SYSTEMS,
    TABLE_ORDER,
    get_system,
    system_names,
)
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


class TestSystemsRegistry:
    def test_table2_complete(self):
        assert system_names() == TABLE_ORDER
        assert len(TABLE_ORDER) == 9

    def test_cgl_is_locking(self):
        assert get_system("CGL").is_cgl

    def test_baseline_is_requester_wins(self):
        s = get_system("Baseline")
        assert s.use_htm and not s.recovery

    def test_losatm_uses_progression_and_wakeup(self):
        s = get_system("LosaTM-SAFU")
        assert s.recovery
        assert s.priority_kind is PriorityKind.PROGRESSION
        assert s.requester_policy is RequesterPolicy.WAIT_WAKEUP
        assert not s.htmlock

    def test_rai_rri_rwi_policies(self):
        assert get_system("LockillerTM-RAI").requester_policy is RequesterPolicy.SELF_ABORT
        assert get_system("LockillerTM-RRI").requester_policy is RequesterPolicy.RETRY_LATER
        assert get_system("LockillerTM-RWI").requester_policy is RequesterPolicy.WAIT_WAKEUP
        for name in ("LockillerTM-RAI", "LockillerTM-RRI", "LockillerTM-RWI"):
            s = get_system(name)
            assert s.priority_kind is PriorityKind.INSTS
            assert not s.htmlock

    def test_rwl_drops_insts_priority(self):
        s = get_system("LockillerTM-RWL")
        assert s.htmlock and s.priority_kind is PriorityKind.NONE

    def test_rwil_and_full(self):
        rwil = get_system("LockillerTM-RWIL")
        assert rwil.htmlock and not rwil.switching
        full = get_system("LockillerTM")
        assert full.htmlock and full.switching

    def test_unknown_system(self):
        with pytest.raises(ConfigError):
            get_system("TSX")

    def test_all_specs_named_consistently(self):
        for name, spec in SYSTEMS.items():
            assert spec.name == name


class TestRunner:
    def test_end_to_end_small_run(self):
        stats = run_workload(
            get_workload("kmeans-"),
            RunConfig(spec=get_system("Baseline"), threads=2, scale=0.05, seed=1),
        )
        assert stats.execution_cycles > 0
        assert stats.commits > 0
        assert stats.sanity_failures == []

    def test_prebuilt_workload_accepted(self):
        build = get_workload("ssca2").build(threads=2, scale=0.05, seed=1)
        stats = run_workload(
            build, RunConfig(spec=get_system("CGL"), threads=2, scale=0.05)
        )
        assert stats.commits == sum(
            1 for p in build.programs for s in p if hasattr(s, "tag")
        )

    def test_prebuilt_thread_mismatch(self):
        build = get_workload("ssca2").build(threads=2, scale=0.05, seed=1)
        with pytest.raises(SimulationError):
            run_workload(
                build, RunConfig(spec=get_system("CGL"), threads=4)
            )

    def test_check_can_be_disabled(self):
        stats = run_workload(
            get_workload("ssca2"),
            RunConfig(
                spec=get_system("Baseline"),
                threads=2,
                scale=0.05,
                seed=1,
                check=False,
            ),
        )
        assert stats.sanity_failures == []

    def test_deterministic_across_runs(self):
        cfg = RunConfig(
            spec=get_system("LockillerTM"), threads=4, scale=0.08, seed=12
        )
        a = run_workload(get_workload("intruder"), cfg)
        b = run_workload(get_workload("intruder"), cfg)
        assert a.execution_cycles == b.execution_cycles
        assert a.time_breakdown() == b.time_breakdown()
        assert a.abort_breakdown() == b.abort_breakdown()

    def test_seed_changes_outcome(self):
        mk = lambda seed: run_workload(
            get_workload("intruder"),
            RunConfig(
                spec=get_system("Baseline"), threads=4, scale=0.08, seed=seed
            ),
        )
        assert mk(1).execution_cycles != mk(2).execution_cycles

    def test_default_params_are_table1(self):
        cfg = RunConfig(spec=get_system("CGL"))
        assert cfg.params == typical_params()
