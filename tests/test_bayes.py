"""Tests for the bayes workload (implemented though paper-excluded)."""

import numpy as np
import pytest

from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.analyze import profile_programs
from repro.workloads.registry import get_workload


class TestBayesShape:
    def test_footprints_highly_variable(self):
        build = get_workload("bayes").build(threads=4, scale=1.0, seed=2)
        prof = profile_programs(build.programs)
        footprints = [t.footprint for t in prof.txns]
        assert min(footprints) < 20
        assert max(footprints) > 150
        # Heavy tail: the spread is the workload's defining trait.
        assert np.std(footprints) > np.mean(footprints) * 0.6

    def test_deterministic(self):
        wl = get_workload("bayes")
        a = wl.build(threads=2, scale=0.3, seed=5)
        b = wl.build(threads=2, scale=0.3, seed=5)
        assert a.expected == b.expected

    def test_runs_on_all_key_systems(self):
        for system in ("CGL", "Baseline", "LockillerTM"):
            stats = run_workload(
                get_workload("bayes"),
                RunConfig(
                    spec=get_system(system), threads=4, scale=0.2, seed=3
                ),
            )
            assert stats.sanity_failures == []
            assert stats.commits > 0

    def test_execution_time_is_volatile_across_seeds(self):
        """The paper's stated reason for excluding bayes."""
        cycles = []
        for seed in range(4):
            stats = run_workload(
                get_workload("bayes"),
                RunConfig(
                    spec=get_system("Baseline"), threads=4, scale=0.2,
                    seed=seed,
                ),
            )
            cycles.append(stats.execution_cycles)
        spread = max(cycles) / min(cycles)
        assert spread > 1.1  # noticeably seed-sensitive

    def test_mixed_commit_paths(self):
        """Small txs commit speculatively; huge ones overflow/fall back."""
        stats = run_workload(
            get_workload("bayes"),
            RunConfig(
                spec=get_system("LockillerTM"), threads=4, scale=0.4, seed=3
            ),
        )
        merged = stats.merged()
        assert merged.commits_htm > 0
        assert merged.commits_lock + merged.commits_switched > 0
