"""Multi-process concurrent-writer stress tests for the run cache.

The sweep service leans on ``RunCache``/``ShardedStore`` as the shared
result store for many worker processes, so these tests pin the two
properties that make that safe with no cross-process locking:

* **put atomicity** — a reader never observes a partially written
  entry, whether N processes hammer the *same* key or distinct keys
  (temp file + ``os.replace`` within one filesystem).
* **corrupt-entry repair** — a torn/garbage entry reads as a miss and
  is unlinked, and that stays true while other processes concurrently
  rewrite the same key.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.common.stats import CoreStats, RunStats
from repro.harness.runcache import RunCache
from repro.service.store import ShardedStore

WRITERS = 6
ROUNDS = 40

# fork: children inherit the imported test module, no spawn re-import.
mp = multiprocessing.get_context("fork")


def make_stats(marker: int) -> RunStats:
    return RunStats(execution_cycles=marker, cores=[CoreStats()])


def make_cache(kind: str, root: str):
    return (RunCache if kind == "runcache" else ShardedStore)(root)


def key_of(i: int) -> str:
    return f"{i:064x}"


def same_key_writer(kind, root, marker, failures):
    cache = make_cache(kind, root)
    try:
        for _ in range(ROUNDS):
            cache.put(key_of(0), make_stats(marker))
    except Exception:  # noqa: BLE001
        with failures.get_lock():
            failures.value += 1


def distinct_key_writer(kind, root, marker, failures):
    cache = make_cache(kind, root)
    try:
        for round_no in range(ROUNDS):
            cache.put(key_of(marker * ROUNDS + round_no),
                      make_stats(marker))
    except Exception:  # noqa: BLE001
        with failures.get_lock():
            failures.value += 1


def torn_reader(kind, root, done, torn_reads):
    """Spin on get(); count reads that were neither a miss nor valid."""
    cache = make_cache(kind, root)
    while not done.is_set():
        try:
            stats = cache.get(key_of(0))
        except Exception:  # noqa: BLE001
            with torn_reads.get_lock():
                torn_reads.value += 1
            continue
        if stats is not None and stats.execution_cycles >= WRITERS:
            with torn_reads.get_lock():
                torn_reads.value += 1


def corrupting_writer(kind, root, failures):
    """Interleave garbage writes with real puts on one key."""
    cache = make_cache(kind, root)
    path = cache.path_for(key_of(0))
    try:
        for round_no in range(ROUNDS):
            if round_no % 2:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write("{ torn entry" * 10)
            else:
                cache.put(key_of(0), make_stats(1))
    except Exception:  # noqa: BLE001
        with failures.get_lock():
            failures.value += 1


def run_all(procs):
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert not p.is_alive(), "stress worker hung"
        assert p.exitcode == 0


@pytest.mark.parametrize("kind", ["runcache", "sharded"])
class TestConcurrentWriters:
    def test_same_key_puts_stay_atomic(self, tmp_path, kind):
        root = str(tmp_path)
        failures = mp.Value("i", 0)
        torn_reads = mp.Value("i", 0)
        done = mp.Event()
        writers = [
            mp.Process(target=same_key_writer,
                       args=(kind, root, marker, failures))
            for marker in range(WRITERS)
        ]
        reader = mp.Process(target=torn_reader,
                            args=(kind, root, done, torn_reads))
        reader.start()
        try:
            run_all(writers)
        finally:
            done.set()
            reader.join(timeout=120)
        assert reader.exitcode == 0
        assert failures.value == 0
        assert torn_reads.value == 0
        # Last writer wins with a complete entry from *some* writer.
        final = make_cache(kind, root).get(key_of(0))
        assert final is not None
        assert 0 <= final.execution_cycles < WRITERS

    def test_distinct_key_puts_all_land(self, tmp_path, kind):
        root = str(tmp_path)
        failures = mp.Value("i", 0)
        run_all([
            mp.Process(target=distinct_key_writer,
                       args=(kind, root, marker, failures))
            for marker in range(WRITERS)
        ])
        assert failures.value == 0
        cache = make_cache(kind, root)
        for marker in range(WRITERS):
            for round_no in range(ROUNDS):
                key = key_of(marker * ROUNDS + round_no)
                stats = cache.get(key)
                assert stats is not None, key
                assert stats.execution_cycles == marker
        # No temp files leak once every writer has exited.
        leftovers = [
            name
            for _, _, files in os.walk(root)
            for name in files
            if not name.endswith(".json")
        ]
        assert leftovers == []

    def test_concurrent_corruption_is_repaired(self, tmp_path, kind):
        root = str(tmp_path)
        failures = mp.Value("i", 0)
        run_all([
            mp.Process(target=corrupting_writer,
                       args=(kind, root, failures))
            for _ in range(WRITERS)
        ])
        assert failures.value == 0
        cache = make_cache(kind, root)
        stats = cache.get(key_of(0))
        if stats is None:
            # Final write was garbage: the miss must have repaired it.
            assert not os.path.exists(cache.path_for(key_of(0)))
            cache.put(key_of(0), make_stats(1))
            stats = cache.get(key_of(0))
        assert stats is not None
        assert stats.execution_cycles == 1
