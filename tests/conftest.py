"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.params import (
    CacheParams,
    SystemParams,
    small_cache_params,
    typical_params,
)
from repro.core.policies import PriorityKind, RequesterPolicy, SystemSpec
from repro.harness.systems import get_system
from repro.htm.isa import Plain, Txn, compute, load, store
from repro.sim.machine import Machine


@pytest.fixture
def params() -> SystemParams:
    return typical_params()


@pytest.fixture
def small_params() -> SystemParams:
    return small_cache_params()


@pytest.fixture
def tiny_l1() -> CacheParams:
    """A 4-set, 2-way toy L1 for deterministic replacement tests."""
    return CacheParams(size_bytes=8 * 64, assoc=2, hit_latency=2)


def make_machine(
    programs,
    system: str = "Baseline",
    params: SystemParams = None,
    seed: int = 0,
) -> Machine:
    return Machine(
        params or typical_params(), get_system(system), programs, seed=seed
    )


def idle_machine(n_cores: int = 4, system: str = "Baseline", **kw) -> Machine:
    """A machine whose cores have empty programs (for direct memsys use)."""
    return make_machine([[] for _ in range(n_cores)], system=system, **kw)


def line_addr(line: int) -> int:
    return line << 6


def spec_with(**kw) -> SystemSpec:
    base = dict(
        name="test",
        use_htm=True,
        recovery=True,
        requester_policy=RequesterPolicy.WAIT_WAKEUP,
        priority_kind=PriorityKind.INSTS,
    )
    base.update(kw)
    return SystemSpec(**base)


def simple_txn(lines_read, lines_written, tag="t") -> Txn:
    ops = [compute(3)]
    ops += [load(line_addr(ln)) for ln in lines_read]
    ops += [store(line_addr(ln), 1) for ln in lines_written]
    return Txn(ops, tag=tag)


def plain_compute(cycles: int = 10) -> Plain:
    return Plain([compute(cycles)])
