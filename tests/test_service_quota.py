"""Quota/backpressure edges and the service concurrency pins.

Covers the ISSUE 9 satellite list: zero-quota tenant, queue-full
rejection, cancel mid-run, resubmit-after-cancel dedup — plus the
acceptance pins: >= 8 simultaneous campaigns from >= 3 tenants complete
under quota limits with correct 429 responses, and SIGTERM mid-campaign
leaves a journal the service resumes on restart.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness.export import fingerprint
from repro.service import (
    CampaignSpec,
    QuotaExceeded,
    ServiceClient,
    ServiceError,
    TenantQuota,
)
from repro.service.quotas import FairQueue, parse_quota
from repro.service.server import (
    ReproService,
    ServiceConfig,
    ServiceThread,
)
from repro.common.errors import ConfigError

TINY = {
    "kind": "sweep",
    "workloads": ["kmeans+", "ssca2"],
    "systems": ["CGL", "LockillerTM"],
    "threads": [2],
    "seeds": [1],
    "scale": 0.05,
}


class TestQuotaModel:
    def test_quota_validation(self):
        with pytest.raises(ConfigError):
            TenantQuota(max_queued_cells=-1)
        with pytest.raises(ConfigError):
            TenantQuota(max_concurrent_cells=0)
        assert TenantQuota(max_queued_cells=0).max_queued_cells == 0

    def test_parse_quota(self):
        quota = parse_quota("100:4")
        assert quota.max_queued_cells == 100
        assert quota.max_concurrent_cells == 4
        assert parse_quota("50").max_concurrent_cells == 8
        with pytest.raises(ConfigError):
            parse_quota("many:few")

    def test_zero_quota_tenant_always_rejected(self):
        queue = FairQueue(TenantQuota(max_queued_cells=0))
        with pytest.raises(QuotaExceeded):
            queue.admit("anyone", 1)
        assert queue.tenant("anyone").rejected_submits == 1

    def test_queue_full_rejection_and_release(self):
        queue = FairQueue(TenantQuota(max_queued_cells=10))
        queue.admit("t", 8)
        with pytest.raises(QuotaExceeded) as err:
            queue.admit("t", 4)
        assert err.value.queued == 8
        assert err.value.requested == 4
        queue.admit("t", 2)  # exactly at the limit is allowed
        queue.release_queued("t", 10)
        queue.admit("t", 10)

    def test_round_robin_is_fair(self):
        queue = FairQueue(TenantQuota())
        for tenant, job in (("a", "j1"), ("b", "j2"), ("c", "j3")):
            for i in range(3):
                queue.push(tenant, job, i)
        order = [queue.take()[0] for _ in range(9)]
        assert order == ["a", "b", "c"] * 3

    def test_concurrency_limit_skips_not_blocks(self):
        queue = FairQueue(
            TenantQuota(max_concurrent_cells=1),
            {"big": TenantQuota(max_concurrent_cells=8)},
        )
        for i in range(2):
            queue.push("small", "js", i)
            queue.push("big", "jb", i)
        first = queue.take()
        assert first[0] == "small"
        queue.mark_running("small")  # small is now at its limit
        takes = [queue.take() for _ in range(2)]
        assert [t[0] for t in takes] == ["big", "big"]
        assert queue.take() is None  # small blocked, big drained
        queue.mark_finished("small")
        assert queue.take()[0] == "small"

    def test_drop_job_removes_only_that_job(self):
        queue = FairQueue(TenantQuota())
        for i in range(3):
            queue.push("t", "keep", i)
            queue.push("t", "drop", i)
        assert queue.drop_job("t", "drop") == 3
        remaining = [queue.take()[1] for _ in range(3)]
        assert remaining == ["keep"] * 3
        assert queue.take() is None


def run_scenario(tmp_path, scenario, **config_kwargs):
    """Run an async scenario against a live in-loop service.

    Inside ``scenario`` no other coroutine runs between awaits, so
    back-to-back submits see deterministic queue accounting.
    """

    async def main():
        service = ReproService(
            ServiceConfig(state_dir=str(tmp_path / "svc"),
                          **config_kwargs)
        )
        await service.start()
        try:
            await scenario(service)
        finally:
            service.request_stop()
            await service.serve_until_stopped()

    asyncio.run(main())


class TestAdmissionEdges:
    def test_queue_full_rejection_is_deterministic(self, tmp_path):
        campaign8 = CampaignSpec.from_dict(dict(TINY, seeds=[1, 2]))
        campaign4 = CampaignSpec.from_dict(TINY)

        async def scenario(service):
            service.submit("t", campaign8)  # 8 cells queued
            with pytest.raises(QuotaExceeded):
                service.submit("t", campaign4)  # 8 + 4 > 10
            assert service.queue.tenant("t").rejected_submits == 1

        run_scenario(
            tmp_path, scenario, jobs=1,
            quotas={"t": TenantQuota(max_queued_cells=10)},
        )

    def test_cancel_while_queued_returns_budget(self, tmp_path):
        campaign = CampaignSpec.from_dict(dict(TINY, seeds=[1, 2]))

        async def scenario(service):
            job = service.submit("t", campaign)  # 8 of 8 queued
            with pytest.raises(QuotaExceeded):
                service.submit("t", campaign)
            service.cancel(job.job_id)  # every queued cell dropped
            assert service.queue.tenant("t").queued == 0
            service.submit("t", campaign)  # budget is back

        run_scenario(
            tmp_path, scenario, jobs=1,
            quotas={"t": TenantQuota(max_queued_cells=8)},
        )

    def test_zero_quota_tenant_gets_429_over_http(self, tmp_path):
        config = ServiceConfig(
            state_dir=str(tmp_path / "svc"), jobs=1,
            quotas={"walled-off": TenantQuota(max_queued_cells=0)},
        )
        with ServiceThread(config) as handle:
            client = ServiceClient(handle.host, handle.port)
            with pytest.raises(ServiceError) as err:
                client.submit(TINY, tenant="walled-off")
            assert err.value.status == 429
            assert err.value.is_backpressure
            assert err.value.payload["max_queued_cells"] == 0
            assert err.value.payload["tenant"] == "walled-off"
            # Other tenants are untouched by the walled-off tenant.
            job = client.submit(TINY, tenant="open")
            assert client.wait(job["job_id"], 120)["state"] == "done"


class TestCancel:
    def test_cancel_mid_run_and_resubmit_dedups(self, tmp_path):
        campaign = dict(TINY, seeds=[1, 2, 3])  # 12 cells
        total = CampaignSpec.from_dict(campaign).size()
        config = ServiceConfig(state_dir=str(tmp_path / "svc"), jobs=1)
        with ServiceThread(config) as handle:
            client = ServiceClient(handle.host, handle.port)
            job_id = client.submit(campaign)["job_id"]
            deadline = time.monotonic() + 120
            while (
                client.status(job_id)["progress"]["cells_done"] < 1
            ):
                assert time.monotonic() < deadline
                time.sleep(0.01)
            cancelled = client.cancel(job_id)
            assert cancelled["state"] == "cancelled"
            assert client.status(job_id)["state"] == "cancelled"
            # Cancelling is idempotent.
            assert client.cancel(job_id)["state"] == "cancelled"

            # Resubmit: completed cells come from the cache, any cell
            # still in flight at cancel time is joined, and no key is
            # ever executed twice service-wide.
            job2 = client.submit(campaign)
            final = client.wait(job2["job_id"], timeout=180)
            progress = final["progress"]
            assert final["state"] == "done"
            assert progress["cells_done"] == total
            assert (
                progress["cells_from_cache"]
                + progress["cells_deduped"] >= 1
            )
            assert progress["cells_scheduled"] < total
            assert client.stats()["cells_executed"] <= total

    def test_cancelled_job_keeps_no_results(self, tmp_path):
        config = ServiceConfig(state_dir=str(tmp_path / "svc"), jobs=1)
        with ServiceThread(config) as handle:
            client = ServiceClient(handle.host, handle.port)
            job_id = client.submit(TINY)["job_id"]
            client.cancel(job_id)
            results = client.results(job_id, lite=True)
            assert results["state"] == "cancelled"
            # Journal records the terminal state (no resume on restart).
            journal = json.load(open(os.path.join(
                str(tmp_path / "svc"), "jobs", f"{job_id}.json"
            )))
            assert journal["state"] == "cancelled"


class TestConcurrentCampaigns:
    def test_eight_campaigns_three_tenants_under_quota(self, tmp_path):
        """The ISSUE 9 concurrency pin."""
        tenants = {
            "alpha": TenantQuota(max_queued_cells=100,
                                 max_concurrent_cells=2),
            "beta": TenantQuota(max_queued_cells=100,
                                max_concurrent_cells=1),
            "gamma": TenantQuota(max_queued_cells=100,
                                 max_concurrent_cells=2),
            "zero": TenantQuota(max_queued_cells=0),
        }
        config = ServiceConfig(
            state_dir=str(tmp_path / "svc"), jobs=4, quotas=tenants
        )
        campaigns = [
            dict(TINY, seeds=[seed]) for seed in (1, 2, 3)
        ]
        with ServiceThread(config) as handle:
            client = ServiceClient(handle.host, handle.port)
            submitted = []
            # 9 campaigns across 3 tenants, overlapping seeds so the
            # in-flight/cache dedup paths get real concurrent traffic.
            for tenant in ("alpha", "beta", "gamma"):
                for campaign in campaigns:
                    job = client.submit(campaign, tenant=tenant)
                    submitted.append((tenant, job["job_id"]))
            assert len(submitted) == 9
            # Backpressure is per-tenant: the zero tenant is rejected
            # while the others' campaigns are in flight.
            with pytest.raises(ServiceError) as err:
                client.submit(campaigns[0], tenant="zero")
            assert err.value.status == 429

            expected = {}
            for tenant, job_id in submitted:
                final = client.wait(job_id, timeout=300)
                assert final["state"] == "done", (tenant, final)
                fps = tuple(
                    c["fingerprint"]
                    for c in client.results(job_id, lite=True)["cells"]
                )
                key = json.dumps(
                    client.status(job_id)["campaign"], sort_keys=True
                )
                # Same campaign => same fingerprints, every tenant.
                assert expected.setdefault(key, fps) == fps

            stats = client.stats()
            for name in ("alpha", "beta", "gamma"):
                acct = stats["tenants"][name]
                assert acct["peak_running_cells"] <= tenants[
                    name
                ].max_concurrent_cells, name
            # 3 distinct campaigns x 4 cells: dedup means at most 12
            # executions despite 9 submitted campaigns (36 cells).
            assert stats["cells_executed"] <= 12


@pytest.mark.slow
class TestSigtermResume:
    def _env(self):
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _spawn(self, state_dir):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", state_dir, "--jobs", "1", "--port", "0"],
            env=self._env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )

    def test_sigterm_mid_campaign_then_resume(self, tmp_path):
        from repro.service.client import discover

        state_dir = str(tmp_path / "svc")
        campaign = dict(TINY, seeds=[1, 2, 3, 4])  # 16 cells
        spec = CampaignSpec.from_dict(campaign)

        proc = self._spawn(state_dir)
        try:
            client = discover(state_dir, wait_s=30)
            job_id = client.submit(campaign)["job_id"]
            deadline = time.monotonic() + 120
            while (
                client.status(job_id)["progress"]["cells_done"] < 2
            ):
                assert time.monotonic() < deadline, "no progress"
                time.sleep(0.01)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        journal = json.load(open(
            os.path.join(state_dir, "jobs", f"{job_id}.json")
        ))
        assert journal["state"] == "queued"  # resumable checkpoint

        proc = self._spawn(state_dir)
        try:
            client = discover(state_dir, wait_s=30)
            final = client.wait(job_id, timeout=240)
            assert final["state"] == "done"
            assert final["progress"]["cells_from_cache"] >= 2
            fps = [
                c["fingerprint"]
                for c in client.results(job_id, lite=True)["cells"]
            ]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        serial = spec.to_sweep().run()
        assert fps == [fingerprint(r.stats) for r in serial.records]
