"""Unit tests for TxState lifecycle and the priority providers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.policies import PriorityKind
from repro.core.priority import (
    InstsBasedPriority,
    NoPriority,
    ProgressionPriority,
    make_priority_provider,
)
from repro.htm.txstate import LOCK_PRIORITY, TxMode, TxState


class TestTxModes:
    def test_speculative_flags(self):
        assert TxMode.HTM.is_speculative
        assert not TxMode.TL.is_speculative

    def test_lock_mode_flags(self):
        assert TxMode.TL.is_lock_mode
        assert TxMode.STL.is_lock_mode
        assert not TxMode.HTM.is_lock_mode
        assert not TxMode.FALLBACK.is_lock_mode

    def test_in_transaction(self):
        assert TxMode.HTM.in_transaction
        assert TxMode.FALLBACK.in_transaction
        assert not TxMode.NONE.in_transaction


class TestTxStateLifecycle:
    def test_begin_resets_state(self):
        tx = TxState(0)
        tx.begin(TxMode.HTM, now=100)
        tx.track_read(1)
        tx.track_write(2)
        tx.buffer_store(128, 5)
        tx.insts_in_attempt = 9
        seq = tx.attempt_seq
        tx.clear()
        tx.begin(TxMode.HTM, now=200)
        assert tx.attempt_seq == seq + 1
        assert not tx.read_set and not tx.write_set and not tx.write_buffer
        assert tx.insts_in_attempt == 0
        assert tx.attempt_start == 200

    def test_nested_begin_raises(self):
        tx = TxState(0)
        tx.begin(TxMode.HTM, 0)
        with pytest.raises(RuntimeError):
            tx.begin(TxMode.HTM, 1)

    def test_buffer_store_accumulates(self):
        tx = TxState(0)
        tx.begin(TxMode.HTM, 0)
        tx.buffer_store(64, 2)
        tx.buffer_store(64, 3)
        assert tx.write_buffer[64] == 5

    def test_switch_to_stl(self):
        tx = TxState(0)
        tx.begin(TxMode.HTM, 0)
        tx.track_write(5)
        tx.switch_to_stl()
        assert tx.mode is TxMode.STL
        assert tx.switched
        assert 5 in tx.write_set  # state carried over

    def test_switch_from_non_htm_raises(self):
        tx = TxState(0)
        tx.begin(TxMode.TL, 0)
        with pytest.raises(RuntimeError):
            tx.switch_to_stl()

    def test_mark_aborted_keeps_first_reason(self):
        tx = TxState(0)
        tx.begin(TxMode.HTM, 0)
        tx.mark_aborted("first")
        tx.mark_aborted("second")
        assert tx.abort_reason == "first"

    def test_footprint(self):
        tx = TxState(0)
        tx.begin(TxMode.HTM, 0)
        tx.track_read(1)
        tx.track_write(1)
        tx.track_write(2)
        assert tx.footprint_lines == 2


class TestPriorityProviders:
    def _tx(self, mode=TxMode.HTM, insts=0, start=0):
        tx = TxState(3)
        tx.begin(mode, start)
        tx.insts_in_attempt = insts
        return tx

    def test_factory(self):
        assert isinstance(make_priority_provider(PriorityKind.INSTS), InstsBasedPriority)
        assert isinstance(
            make_priority_provider(PriorityKind.PROGRESSION), ProgressionPriority
        )
        assert isinstance(make_priority_provider(PriorityKind.NONE), NoPriority)

    def test_insts_priority_counts_work(self):
        p = InstsBasedPriority()
        assert p.priority_of(self._tx(insts=17), now=100) == 17

    def test_progression_counts_time(self):
        p = ProgressionPriority()
        assert p.priority_of(self._tx(start=40), now=100) == 60

    def test_no_priority_flat(self):
        p = NoPriority()
        assert p.priority_of(self._tx(insts=50), now=10) == 0

    def test_lock_mode_outranks_everything(self):
        for provider in (NoPriority(), InstsBasedPriority(), ProgressionPriority()):
            tl = self._tx(mode=TxMode.TL)
            assert provider.priority_of(tl, now=10**9) == LOCK_PRIORITY
            assert provider.priority_of(tl, 0) > provider.priority_of(
                self._tx(insts=10**9), 0
            )

    def test_beats_higher_priority(self):
        assert InstsBasedPriority.beats(5, 3, 4, 0)
        assert not InstsBasedPriority.beats(4, 0, 5, 3)

    def test_beats_tie_smaller_id(self):
        assert InstsBasedPriority.beats(5, 1, 5, 2)
        assert not InstsBasedPriority.beats(5, 2, 5, 1)

    @given(
        st.integers(0, 100), st.integers(0, 31),
        st.integers(0, 100), st.integers(0, 31),
    )
    def test_beats_is_total_and_antisymmetric(self, pa, ca, pb, cb):
        a_beats_b = InstsBasedPriority.beats(pa, ca, pb, cb)
        b_beats_a = InstsBasedPriority.beats(pb, cb, pa, ca)
        if (pa, ca) == (pb, cb):
            # Identical (priority, id) pairs mean the same core.
            assert not a_beats_b and not b_beats_a
        else:
            assert a_beats_b != b_beats_a
