"""Tests for the workload analyzer (profiles, overflow prediction)."""

import pytest

from repro.common.params import CacheParams, typical_params
from repro.htm.isa import Plain, Txn, compute, fault, load, store
from repro.workloads.analyze import (
    contention_estimate,
    overflow_probability,
    profile_programs,
    profile_txn,
    summarize,
)
from repro.workloads.base import private_line_addr, shared_line_addr
from repro.workloads.registry import get_workload


class TestTxnProfile:
    def test_counts_lines(self):
        t = Txn(
            [
                compute(3),
                load(shared_line_addr(1)),
                load(shared_line_addr(2)),
                store(shared_line_addr(2), 1),
                load(private_line_addr(0, 0)),
            ]
        )
        p = profile_txn(t)
        assert p.read_lines == 3  # distinct lines; store's line already read
        assert p.write_lines == 1
        assert p.footprint == 3
        assert p.shared_lines == 2
        assert not p.has_fault

    def test_detects_fault(self):
        t = Txn([fault(), store(shared_line_addr(1), 1)])
        assert profile_txn(t).has_fault


class TestWorkloadProfile:
    def test_aggregates(self):
        progs = [
            [
                Plain([compute(5)]),
                Txn([load(shared_line_addr(i)) for i in range(4)]),
                Txn([store(shared_line_addr(9), 1)]),
            ]
        ]
        prof = profile_programs(progs)
        assert prof.count == 2
        assert prof.mean("footprint") == pytest.approx(2.5)
        assert prof.max("footprint") == 4
        assert prof.fault_fraction == 0.0

    def test_histogram_buckets(self):
        progs = [[Txn([load(shared_line_addr(i)) for i in range(20)])]]
        hist = profile_programs(progs).footprint_histogram(bucket=16)
        assert hist == {16: 1}

    def test_empty(self):
        prof = profile_programs([[]])
        assert prof.count == 0
        assert prof.mean("ops") == 0.0
        assert prof.fault_fraction == 0.0


class TestOverflowPrediction:
    def test_small_footprint_never_overflows(self):
        l1 = typical_params().l1
        assert overflow_probability(4, l1) == 0.0

    def test_monotone_in_footprint(self):
        l1 = typical_params().l1
        ps = [overflow_probability(n, l1) for n in (50, 150, 300, 500)]
        assert ps == sorted(ps)
        assert ps[-1] > 0.9

    def test_tiny_cache_overflows_easily(self):
        tiny = CacheParams(4 * 64, 2, 2)  # 2 sets x 2 ways
        assert overflow_probability(10, tiny) > 0.5

    def test_labyrinth_predicted_to_overflow(self):
        """The calibration DESIGN.md relies on, checked analytically."""
        build = get_workload("labyrinth").build(threads=1, scale=0.2, seed=1)
        prof = profile_programs(build.programs)
        l1 = typical_params().l1
        p = overflow_probability(int(prof.mean("footprint")), l1)
        assert p > 0.9

    def test_ssca2_predicted_safe(self):
        build = get_workload("ssca2").build(threads=1, scale=0.2, seed=1)
        prof = profile_programs(build.programs)
        l1 = typical_params().l1
        assert overflow_probability(int(prof.mean("footprint")), l1) < 0.01


class TestContentionEstimate:
    def test_intruder_hottest_is_queue_head(self):
        build = get_workload("intruder").build(threads=4, scale=0.3, seed=1)
        hottest = contention_estimate(build.programs, top=1)
        assert hottest[0][0] == shared_line_addr(0) >> 6

    def test_private_writes_excluded(self):
        progs = [[Txn([store(private_line_addr(0, 1), 1)])]]
        assert contention_estimate(progs) == []


class TestSummarize:
    def test_summary_keys(self):
        build = get_workload("yada").build(threads=2, scale=0.2, seed=1)
        s = summarize(build.programs, typical_params().l1)
        assert s["txns"] > 0
        assert s["fault_fraction"] > 0.5
        assert 0.0 <= s["overflow_probability"] <= 1.0
        assert isinstance(s["hottest_lines"], list)
