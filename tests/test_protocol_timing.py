"""Timing-level protocol tests: latency composition and serialization.

These pin the quantitative behaviour of the access path — the NACK
path's extra hops, directory busy-window queueing, LLC-vs-memory fills —
so timing regressions are caught, not just functional ones.
"""

import pytest

from repro.common.stats import AbortReason
from repro.coherence.memsys import GRANT
from repro.coherence.states import MESI
from repro.htm.txstate import TxMode
from conftest import idle_machine, line_addr


class TestLatencyComposition:
    def test_miss_beats_hit_by_network_plus_llc(self):
        m = idle_machine()
        ms = m.memsys
        miss = ms.access(0, line_addr(100), False, 0)
        hit = ms.access(0, line_addr(100), False, 10_000)
        p = m.params
        assert hit.latency == p.l1.hit_latency
        # Miss must include at least LLC + memory + some network.
        assert miss.latency >= p.llc.hit_latency + p.memory.latency

    def test_nack_path_costs_more_than_plain_fill(self):
        """Fig. 3: the aborting owner adds a forward+NACK round trip."""
        m = idle_machine(system="Baseline")
        ms = m.memsys
        # Warm the line into the LLC so both cases are LLC hits.
        ms.access(3, line_addr(5), False, 0)
        ms.l1s[3].invalidate(5)
        ms.directory.remove_copy(5, 3)
        quiet = ms.access(1, line_addr(5), False, 5_000)  # plain LLC fill
        ms.l1s[1].invalidate(5)
        ms.directory.remove_copy(5, 1)
        # Now an HTM writer owns it; a conflicting read travels the
        # NACK path (owner invalidated itself).
        tx0 = m.cpus[0].tx
        tx0.begin(TxMode.HTM, 0)
        ms.access(0, line_addr(5), True, 10_000)
        nacked = ms.access(2, line_addr(5), False, 20_000)
        assert nacked.status == GRANT
        assert tx0.aborted
        assert nacked.latency > quiet.latency

    def test_dirty_forward_prices_owner_hops(self):
        m = idle_machine()
        ms = m.memsys
        ms.access(0, line_addr(5), True, 0)       # owner M at tile 0
        fwd = ms.access(3, line_addr(5), False, 5_000)
        ms.l1s[3].invalidate(5)
        ms.directory.remove_copy(5, 3)
        # After the writeback the line is shared; the next fill comes
        # straight from the LLC (no forward) — it must be cheaper from
        # the same distance.
        direct = ms.access(3, line_addr(5), False, 50_000)
        assert fwd.latency > direct.latency

    def test_busy_window_queues_second_requester(self):
        m = idle_machine()
        ms = m.memsys
        first = ms.access(0, line_addr(5), False, 0)
        busy = ms.directory.entry(5).busy_until
        assert busy > 0
        second = ms.access(1, line_addr(5), False, 1)
        # The second request must wait for the window: its total latency
        # covers at least until the busy horizon.
        assert 1 + second.latency >= busy

    def test_unrelated_lines_do_not_queue(self):
        m = idle_machine()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        a = ms.access(1, line_addr(6 + 32), False, 1)   # different line+bank
        b = ms.access(2, line_addr(6 + 32), False, 100_000)
        assert a.latency <= b.latency + m.params.memory.latency


class TestVictimInvalidationSemantics:
    def test_aborted_writer_lines_unreadable_speculation(self):
        """After a requester-wins abort, the victim's written lines are
        gone from its L1 and its buffered values never became visible."""
        m = idle_machine(system="Baseline")
        ms = m.memsys
        tx0 = m.cpus[0].tx
        tx0.begin(TxMode.HTM, 0)
        ms.access(0, line_addr(5), True, 0)
        ms.functional_store(0, line_addr(5), 99)
        ms.access(1, line_addr(5), False, 100)  # aborts core 0
        assert ms.functional_load(1, line_addr(5)) == 0
        assert ms.l1s[0].probe(5) == MESI.I

    def test_read_set_flash_clear_removes_warmup(self):
        m = idle_machine(system="Baseline")
        ms = m.memsys
        tx0 = m.cpus[0].tx
        tx0.begin(TxMode.HTM, 0)
        ms.access(0, line_addr(5), False, 0)
        m.abort_externally(0, AbortReason.CONFLICT_HTM, 10)
        tx0.clear()
        # Next access is a full miss again (no L1 warm-up from the
        # aborted attempt).
        res = ms.access(0, line_addr(5), False, 1_000)
        assert not res.hit
