"""Coalesced vs per-op stepping must be *bit-identical*.

Compute-burst coalescing (repro.htm.isa.coalesce_ops + the burst paths
in repro.sim.cpu) is a pure scheduling optimization: it folds chains of
per-op continuations into single engine events while preserving every
architecturally visible boundary — instruction retirement (the
insts-based priority input), abort/replay points, and same-cycle event
ordering via virtual allocation times.  These tests run the same cells
with ``coalesce`` on and off and require *identical* cycle counts and
per-core statistics, including the abort/replay billing that exercises
the mid-burst external-abort checkpoint machinery.
"""

import pytest

from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def _stats_fingerprint(stats):
    """Everything architecturally visible, per core, as one structure."""
    cores = []
    for cs in stats.cores:
        cores.append(
            (
                {c.name: v for c, v in cs.time.items()},
                {r.name: v for r, v in cs.aborts.items()},
                cs.commits_htm,
                cs.commits_lock,
                cs.commits_switched,
                cs.tx_attempts,
                cs.fallback_entries,
                cs.switch_attempts,
                cs.switch_successes,
                cs.rejects_received,
                cs.rejects_issued,
                cs.wakeups_sent,
                cs.wakeup_timeouts,
                cs.loads,
                cs.stores,
                cs.l1_hits,
                cs.l1_misses,
                cs.l2_hits,
                (
                    dict(cs.commit_latency_hist.buckets),
                    cs.commit_latency_hist.count,
                    cs.commit_latency_hist.total,
                ),
            )
        )
    return stats.execution_cycles, cores


def _run(workload, system, threads, scale, seed, coalesce):
    return run_workload(
        get_workload(workload),
        RunConfig(
            spec=get_system(system),
            threads=threads,
            scale=scale,
            seed=seed,
            coalesce=coalesce,
        ),
    )


# High-contention cells abort and replay constantly, which is exactly
# where mid-burst external aborts and replay billing can diverge.
CELLS = [
    ("intruder", "LockillerTM", 4, 0.05, 3),
    ("intruder", "Baseline", 4, 0.05, 3),
    ("vacation+", "LockillerTM-RWIL", 4, 0.05, 1),
    ("kmeans+", "CGL", 2, 0.05, 2),
    ("yada", "LosaTM-SAFU", 4, 0.05, 5),
]


@pytest.mark.parametrize(
    "workload,system,threads,scale,seed",
    CELLS,
    ids=[f"{w}-{s}" for w, s, *_ in CELLS],
)
def test_coalesced_matches_per_op(workload, system, threads, scale, seed):
    a = _run(workload, system, threads, scale, seed, coalesce=True)
    b = _run(workload, system, threads, scale, seed, coalesce=False)
    assert _stats_fingerprint(a) == _stats_fingerprint(b)


def test_equivalence_cells_actually_abort():
    """Guard the guard: the contended cells must really abort/replay.

    If a parameter change ever made these cells conflict-free, the
    equivalence suite would silently stop covering the mid-burst abort
    checkpoint path; fail loudly instead.
    """
    stats = _run("intruder", "LockillerTM", 4, 0.05, 3, coalesce=True)
    total_aborts = sum(
        v for cs in stats.cores for v in cs.aborts.values()
    )
    assert total_aborts > 0


def test_profile_run_smoke():
    """The profiling harness runs a cell and attributes its events."""
    from repro.harness.profiling import profile_run

    report = profile_run(
        "kmeans+", system="CGL", threads=2, scale=0.05, seed=2, top_n=5
    )
    assert report.execution_cycles > 0
    assert report.events_processed > 0
    assert "sim" in report.subsystems
    counters = report.subsystems["sim"]
    assert counters["events_processed"] == report.events_processed
    assert (
        counters["ring_events"] + counters["heap_events"]
        >= report.events_processed
    )
    rendered = report.render()
    assert "hottest functions" in rendered
    assert "ncalls" in rendered
