"""Tests for the MESI-Three-Level-HTM mode (private middle cache)."""

import pytest

from repro.common.params import (
    CacheParams,
    SystemParams,
    three_level_params,
    typical_params,
)
from repro.common.stats import AbortReason
from repro.coherence.states import MESI
from repro.harness.systems import get_system
from repro.htm.txstate import TxMode
from repro.sim.machine import Machine
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload
from conftest import line_addr


def tiny_three_level(num_cores=4):
    return SystemParams(
        num_cores=num_cores,
        l1=CacheParams(2 * 64, 2, 2),          # 1 set x 2 ways
        l2private=CacheParams(8 * 64, 2, 8),   # 4 sets x 2 ways
        llc=CacheParams(4096 * 64, 16, 12),
    )


def idle3(num_cores=4, system="Baseline", params=None):
    m = Machine(
        params or tiny_three_level(num_cores),
        get_system(system),
        [[] for _ in range(num_cores)],
    )
    return m


class TestParams:
    def test_three_level_params(self):
        p = three_level_params()
        assert p.l2private is not None
        assert p.l2private.size_bytes == 128 * 1024
        assert typical_params().l2private is None

    def test_middle_cache_must_cover_l1(self):
        with pytest.raises(ValueError):
            SystemParams(
                l1=CacheParams(32 * 1024, 4, 2),
                l2private=CacheParams(16 * 1024, 4, 8),
            )


class TestHierarchy:
    def test_fill_populates_both_levels(self):
        m = idle3()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        assert ms.l1s[0].probe(5) == MESI.E
        assert ms.l2s[0].probe(5) == MESI.E

    def test_l2_hit_after_l1_eviction(self):
        m = idle3()
        ms = m.memsys
        # L1 has 1 set x 2 ways: three lines overflow it, but all land
        # in the 4-set middle cache (lines 5, 6, 7 map to distinct sets).
        for ln in (5, 6, 7):
            ms.access(0, line_addr(ln), False, 0)
        st_l1 = [ms.l1s[0].probe(ln) for ln in (5, 6, 7)]
        assert st_l1.count(MESI.I) == 1  # one evicted from L1
        evicted = (5, 6, 7)[st_l1.index(MESI.I)]
        res = ms.access(0, line_addr(evicted), False, 10)
        assert res.hit
        assert res.latency == 2 + 8  # L1 + middle-cache latency
        assert m.core_stats[0].l2_hits == 1

    def test_e_to_m_upgrade_syncs_levels(self):
        m = idle3()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        ms.access(0, line_addr(5), True, 5)  # silent upgrade
        assert ms.l1s[0].probe(5) == MESI.M
        assert ms.l2s[0].probe(5) == MESI.M

    def test_remote_load_flushes_owner_l1(self):
        """The 'odd design' §IV-A criticizes: remote GETS invalidates
        the owner's L1 copy, flushing it to the middle cache."""
        m = idle3()
        ms = m.memsys
        ms.access(0, line_addr(5), True, 0)   # core0 owns M
        ms.access(1, line_addr(5), False, 50)
        assert ms.l1s[0].probe(5) == MESI.I   # flushed out of L1
        assert ms.l2s[0].probe(5) == MESI.S   # kept shared in L2
        assert ms.directory.copies(5) == {0, 1}

    def test_write_invalidates_both_levels(self):
        m = idle3()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        ms.access(1, line_addr(5), True, 50)
        assert ms.l1s[0].probe(5) == MESI.I
        assert ms.l2s[0].probe(5) == MESI.I
        assert ms.directory.owner_of(5) == 1

    def test_quiescence_checks_inclusion(self):
        m = idle3()
        ms = m.memsys
        ms.access(0, line_addr(5), False, 0)
        assert ms.check_quiescent() == []
        ms.l2s[0].invalidate(5)  # break inclusion by hand
        assert any("inclusion" in p for p in ms.check_quiescent())


class TestTransactionalCapacity:
    def test_tx_capacity_is_middle_cache(self):
        """Transactional data is maintained in the middle cache: a
        footprint beyond the L1 but within the L2 must NOT overflow."""
        m = idle3()
        ms = m.memsys
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        for ln in range(6):  # 6 lines >> 2-line L1, fits 8-line L2
            res = ms.access(0, line_addr(ln), True, 0)
            assert res.status == 0  # GRANT
        assert len(tx.write_set) == 6

    def test_overflow_when_middle_cache_full(self):
        m = idle3()
        ms = m.memsys
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        # Middle cache set 0 holds lines 0,4,8,...: 2 ways -> 3rd line
        # in the same L2 set overflows.
        ms.access(0, line_addr(0), True, 0)
        ms.access(0, line_addr(4), True, 0)
        res = ms.access(0, line_addr(8), True, 0)
        assert res.status == 2  # OVERFLOW

    def test_abort_flash_clears_both_levels(self):
        m = idle3()
        ms = m.memsys
        tx = m.cpus[0].tx
        tx.begin(TxMode.HTM, 0)
        ms.access(0, line_addr(5), True, 0)
        ms.discard_tx(0)
        assert ms.l1s[0].probe(5) == MESI.I
        assert ms.l2s[0].probe(5) == MESI.I


class TestEndToEnd:
    @pytest.mark.parametrize("system", ["CGL", "Baseline", "LockillerTM"])
    def test_workloads_run_correctly(self, system):
        stats = run_workload(
            get_workload("vacation+"),
            RunConfig(
                spec=get_system(system),
                threads=4,
                scale=0.1,
                seed=9,
                params=three_level_params(),
            ),
        )
        assert stats.sanity_failures == []

    def test_middle_cache_absorbs_labyrinth_overflows(self):
        two = run_workload(
            get_workload("labyrinth"),
            RunConfig(spec=get_system("Baseline"), threads=4, scale=0.2,
                      seed=5),
        )
        three = run_workload(
            get_workload("labyrinth"),
            RunConfig(spec=get_system("Baseline"), threads=4, scale=0.2,
                      seed=5, params=three_level_params()),
        )
        assert (
            three.abort_breakdown()[AbortReason.OVERFLOW]
            < two.abort_breakdown()[AbortReason.OVERFLOW]
        )
        assert three.merged().l2_hits > 0

    def test_paranoid_swmr_three_level(self):
        machine = Machine(
            tiny_three_level(),
            get_system("LockillerTM"),
            [
                [  # light contended programs
                    __import__("repro.htm.isa", fromlist=["x"]).Txn(
                        [
                            __import__("repro.htm.isa", fromlist=["x"]).load(
                                line_addr(0)
                            ),
                            __import__("repro.htm.isa", fromlist=["x"]).store(
                                line_addr(0), 1
                            ),
                        ]
                    )
                ]
                for _ in range(3)
            ],
        )
        machine.memsys.paranoid = True
        machine.run()
        assert machine.memsys.memory[line_addr(0)] == 3
