"""Unit tests for the NoC latency model and message vocabulary."""

import pytest

from repro.common.params import NetworkParams
from repro.interconnect.message import Message, MessageClass, MsgType
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology


@pytest.fixture
def net() -> NetworkModel:
    params = NetworkParams()
    return NetworkModel(MeshTopology(params), params)


class TestMessageClasses:
    def test_data_messages(self):
        assert MsgType.DATA_EXCLUSIVE.msg_class is MessageClass.DATA
        assert MsgType.DATA_SHARED.msg_class is MessageClass.DATA
        assert MsgType.PUTM.msg_class is MessageClass.DATA

    def test_control_messages(self):
        for mt in (
            MsgType.GETS,
            MsgType.GETM,
            MsgType.NACK,
            MsgType.REJECT,
            MsgType.WAKEUP,
            MsgType.INV,
            MsgType.UNBLOCK,
        ):
            assert mt.msg_class is MessageClass.CONTROL

    def test_message_carries_priority(self):
        m = Message(MsgType.GETM, 0, 5, line=7, priority=42, requester=1)
        assert m.priority == 42
        assert m.msg_class is MessageClass.CONTROL


class TestLatency:
    def test_control_one_hop(self, net):
        # 1 hop * (link 1 + router 1) + 0 tail flits = 2
        assert net.control_latency(0, 1) == 2

    def test_data_one_hop(self, net):
        # 1 hop * 2 + 4 tail flits = 6
        assert net.data_latency(0, 1) == 6

    def test_control_corner_to_corner(self, net):
        assert net.control_latency(0, 31) == 20

    def test_local_delivery_nonzero(self, net):
        assert net.control_latency(3, 3) == 1
        assert net.data_latency(3, 3) == 5

    def test_data_slower_than_control(self, net):
        for a, b in ((0, 1), (0, 31), (5, 20)):
            assert net.data_latency(a, b) > net.control_latency(a, b)

    def test_round_trip_is_sum(self, net):
        assert net.round_trip(0, 3) == net.control_latency(0, 3) + net.data_latency(3, 0)

    def test_latency_for_by_type(self, net):
        assert net.latency_for(0, 1, MsgType.GETS) == 2
        assert net.latency_for(0, 1, MsgType.DATA_SHARED) == 6

    def test_counters_accumulate(self, net):
        before = net.messages_sent
        net.control_latency(0, 2)
        net.data_latency(2, 0)
        assert net.messages_sent == before + 2
        assert net.flits_sent >= 6
        assert net.hops_traversed >= 4

    def test_monotone_in_distance(self, net):
        lats = [net.control_latency(0, t) for t in (1, 2, 3)]
        assert lats == sorted(lats)
