"""Tests for the STAMP-like workload generators."""

import pytest

from repro.htm.isa import OP_FAULT, OP_LOAD, OP_STORE, Plain, Txn, program_stats
from repro.workloads.base import (
    PRIVATE_BASE,
    SHARED_BASE,
    expected_final_memory,
    private_line_addr,
    shared_line_addr,
)
from repro.workloads.registry import (
    HIGH_CONTENTION,
    PAPER_ORDER,
    WORKLOADS,
    get_workload,
    workload_names,
)


class TestRegistry:
    def test_paper_selection_present(self):
        assert set(PAPER_ORDER) <= set(WORKLOADS)
        # bayes is implemented but excluded from the paper sweep (§IV-A).
        assert "bayes" in WORKLOADS
        assert "bayes" not in PAPER_ORDER

    def test_both_contention_variants(self):
        assert {"kmeans+", "kmeans-", "vacation+", "vacation-"} <= set(WORKLOADS)

    def test_get_workload_unknown(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            get_workload("quake")

    def test_high_contention_subset(self):
        assert set(HIGH_CONTENTION) <= set(WORKLOADS)

    def test_names_ordered(self):
        assert workload_names() == PAPER_ORDER


class TestAddressing:
    def test_shared_lines_disjoint_from_private(self):
        assert shared_line_addr(10**5) < PRIVATE_BASE
        assert private_line_addr(0, 0) >= PRIVATE_BASE

    def test_private_regions_disjoint_across_threads(self):
        hi0 = private_line_addr(0, 10**4)
        lo1 = private_line_addr(1, 0)
        assert hi0 < lo1

    def test_line_granularity(self):
        assert shared_line_addr(1) - shared_line_addr(0) == 64


class TestExpectedMemory:
    def test_sums_additive_stores(self):
        progs = [
            [Txn([(OP_STORE, 100, 2), (OP_STORE, 200, 3)])],
            [Plain([(OP_STORE, 100, 5)])],
        ]
        exp = expected_final_memory(progs)
        assert exp == {100: 7, 200: 3}

    def test_zero_deltas_dropped(self):
        progs = [[Txn([(OP_STORE, 100, 1), (OP_STORE, 100, -1)])]]
        assert expected_final_memory(progs) == {}


@pytest.mark.parametrize("name", PAPER_ORDER)
class TestEachWorkload:
    def test_build_shape(self, name):
        wl = get_workload(name)
        build = wl.build(threads=3, scale=0.1, seed=1)
        assert len(build.programs) == 3
        assert build.name == name
        for prog in build.programs:
            s = program_stats(prog)
            assert s["txns"] >= 1
            assert s["stores"] >= 1

    def test_deterministic(self, name):
        wl = get_workload(name)
        a = wl.build(threads=2, scale=0.1, seed=9)
        b = wl.build(threads=2, scale=0.1, seed=9)
        for pa, pb in zip(a.programs, b.programs):
            assert [s.ops for s in pa] == [s.ops for s in pb]
        assert a.expected == b.expected

    def test_seed_changes_programs(self, name):
        wl = get_workload(name)
        a = wl.build(threads=2, scale=0.1, seed=1)
        b = wl.build(threads=2, scale=0.1, seed=2)
        assert any(
            [s.ops for s in pa] != [s.ops for s in pb]
            for pa, pb in zip(a.programs, b.programs)
        )

    def test_scale_controls_size(self, name):
        wl = get_workload(name)
        small = wl.build(threads=1, scale=0.1, seed=1)
        big = wl.build(threads=1, scale=0.5, seed=1)
        n_small = program_stats(small.programs[0])["txns"]
        n_big = program_stats(big.programs[0])["txns"]
        assert n_big > n_small

    def test_expected_memory_consistent(self, name):
        wl = get_workload(name)
        build = wl.build(threads=2, scale=0.1, seed=3)
        assert build.expected == expected_final_memory(build.programs)

    def test_rejects_bad_args(self, name):
        wl = get_workload(name)
        with pytest.raises(ValueError):
            wl.build(threads=0)
        with pytest.raises(ValueError):
            wl.build(threads=1, scale=0)

    def test_verify_detects_mismatch(self, name):
        wl = get_workload(name)
        build = wl.build(threads=1, scale=0.1, seed=1)
        wrong = dict(build.expected)
        some_addr = next(iter(wrong))
        wrong[some_addr] += 1
        assert build.verify(wrong)
        assert build.verify(dict(build.expected)) == []


class TestWorkloadProfiles:
    """Structural properties the paper's per-workload behaviour relies on."""

    def _mean_tx_ops(self, name):
        build = get_workload(name).build(threads=2, scale=0.3, seed=4)
        return program_stats(build.programs[0])["mean_tx_ops"]

    def test_labyrinth_txs_are_huge(self):
        assert self._mean_tx_ops("labyrinth") > 200

    def test_ssca2_txs_are_tiny(self):
        assert self._mean_tx_ops("ssca2") < 15

    def test_labyrinth_overflows_typical_l1(self):
        build = get_workload("labyrinth").build(threads=1, scale=0.2, seed=4)
        txns = [s for s in build.programs[0] if isinstance(s, Txn)]
        # Footprint far beyond 128 sets * 4 ways worst-case per-set load.
        footprints = [len(t.read_lines() | t.write_lines()) for t in txns]
        assert min(footprints) > 250

    def test_yada_has_many_faults(self):
        build = get_workload("yada").build(threads=4, scale=1.0, seed=4)
        txns = [s for p in build.programs for s in p if isinstance(s, Txn)]
        faulting = sum(
            any(op[0] == OP_FAULT for op in t.ops) for t in txns
        )
        assert faulting / len(txns) > 0.8

    def test_other_workloads_fault_free(self):
        for name in ("genome", "intruder", "kmeans+", "ssca2", "vacation-"):
            build = get_workload(name).build(threads=2, scale=0.2, seed=4)
            ops = [op for p in build.programs for s in p for op in s.ops]
            assert not any(op[0] == OP_FAULT for op in ops), name

    def test_intruder_has_hot_queue_line(self):
        build = get_workload("intruder").build(threads=4, scale=0.3, seed=4)
        head = shared_line_addr(0)
        writers = 0
        for prog in build.programs:
            for seg in prog:
                if isinstance(seg, Txn) and any(
                    op[0] == OP_STORE and op[1] == head for op in seg.ops
                ):
                    writers += 1
        # Every iteration pops the queue: one pop txn per iteration.
        assert writers >= 4 * 20

    def test_kmeans_contention_ordering(self):
        """kmeans+ concentrates updates on fewer centers than kmeans-."""
        from repro.workloads.kmeans import KMeansHighWorkload, KMeansLowWorkload

        assert KMeansHighWorkload.clusters < KMeansLowWorkload.clusters

    def test_vacation_contention_ordering(self):
        from repro.workloads.vacation import (
            VacationHighWorkload,
            VacationLowWorkload,
        )

        assert VacationHighWorkload.table_lines < VacationLowWorkload.table_lines
        assert VacationHighWorkload.n_writes > VacationLowWorkload.n_writes

    def test_metadata_summaries(self):
        for name, wl in WORKLOADS.items():
            assert wl.metadata()["name"] == name
            assert wl.summary
