"""Tests for result export/round-trip and the ASCII chart helpers."""

import json

import pytest

from repro.common.stats import AbortReason, CoreStats, RunStats, TimeCat
from repro.harness.charts import (
    breakdown_chart,
    hbar_chart,
    series_sparkline,
    stacked_bar,
)
from repro.harness.export import (
    SCHEMA_VERSION,
    compare_runs,
    dumps,
    fingerprint,
    loads,
    run_stats_from_dict,
    run_stats_to_dict,
)
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def sample_stats() -> RunStats:
    return run_workload(
        get_workload("kmeans+"),
        RunConfig(spec=get_system("LockillerTM"), threads=2, scale=0.05, seed=3),
    )


class TestExport:
    def test_round_trip_preserves_everything(self):
        stats = sample_stats()
        again = loads(dumps(stats, meta={"workload": "kmeans+"}))
        assert again.execution_cycles == stats.execution_cycles
        assert again.time_breakdown() == stats.time_breakdown()
        assert again.abort_breakdown() == stats.abort_breakdown()
        assert again.commits == stats.commits
        assert len(again.cores) == len(stats.cores)
        for a, b in zip(again.cores, stats.cores):
            assert a.l1_hits == b.l1_hits
            assert a.rejects_received == b.rejects_received

    def test_dict_is_json_safe(self):
        data = run_stats_to_dict(sample_stats())
        json.dumps(data)  # must not raise
        assert data["schema"] == SCHEMA_VERSION

    def test_meta_carried(self):
        data = run_stats_to_dict(sample_stats(), meta={"seed": 3})
        assert data["meta"] == {"seed": 3}

    def test_schema_mismatch_rejected(self):
        data = run_stats_to_dict(sample_stats())
        data["schema"] = 99
        with pytest.raises(ValueError):
            run_stats_from_dict(data)

    def test_fingerprint_stable_and_sensitive(self):
        a = sample_stats()
        b = sample_stats()
        assert fingerprint(a) == fingerprint(b)  # deterministic runs
        # A contended configuration where systems genuinely diverge.
        base = run_workload(
            get_workload("intruder"),
            RunConfig(
                spec=get_system("Baseline"), threads=4, scale=0.1, seed=3
            ),
        )
        full = run_workload(
            get_workload("intruder"),
            RunConfig(
                spec=get_system("LockillerTM"), threads=4, scale=0.1, seed=3
            ),
        )
        assert fingerprint(base) != fingerprint(full)

    def test_compare_runs_empty_for_identical(self):
        a, b = sample_stats(), sample_stats()
        assert compare_runs(a, b) == []

    def test_compare_runs_reports_differences(self):
        a = sample_stats()
        b = loads(dumps(a))
        b.cores[0].time[TimeCat.HTM] += 5
        object.__setattr__(b, "execution_cycles", b.execution_cycles + 1)
        diffs = compare_runs(a, b)
        assert any("execution_cycles" in d for d in diffs)
        assert any("time[htm]" in d for d in diffs)

    def test_compare_detects_abort_changes(self):
        a = sample_stats()
        b = loads(dumps(a))
        b.cores[0].aborts[AbortReason.OVERFLOW] += 2
        assert any("aborts[of]" in d for d in compare_runs(a, b))

    def test_empty_core_round_trip(self):
        stats = RunStats(execution_cycles=0, cores=[CoreStats()])
        assert loads(dumps(stats)).execution_cycles == 0


class TestCharts:
    def test_stacked_bar_width(self):
        bar = stacked_bar({"htm": 0.5, "lock": 0.5}, width=10)
        assert len(bar) == 10
        assert bar.count("#") == 5 and bar.count("L") == 5

    def test_stacked_bar_rejects_bad_width(self):
        with pytest.raises(ValueError):
            stacked_bar({"htm": 1.0}, width=0)

    def test_breakdown_chart_has_legend_and_rows(self):
        out = breakdown_chart(
            {"sysA": {"htm": 1.0}, "sysB": {"waitlock": 1.0}}, width=8
        )
        assert "sysA" in out and "sysB" in out
        assert "#=htm" in out

    def test_hbar_chart_scales_to_max(self):
        out = hbar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("=") == 5
        assert lines[1].count("=") == 10
        assert "2.00x" in lines[1]

    def test_hbar_baseline_tick(self):
        out = hbar_chart({"a": 0.5, "b": 2.0}, width=20, baseline=1.0)
        assert "|" in out or "+" in out

    def test_hbar_rejects_empty(self):
        with pytest.raises(ValueError):
            hbar_chart({})

    def test_hbar_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            hbar_chart({"a": 0.0})

    def test_sparkline_monotone(self):
        line = series_sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line == "".join(sorted(line))

    def test_sparkline_flat(self):
        assert series_sparkline([2, 2, 2]) == "███"

    def test_sparkline_rejects_empty(self):
        with pytest.raises(ValueError):
            series_sparkline([])
