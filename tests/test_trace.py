"""Tests for the execution tracer and contention profiler."""

import pytest

from repro.common.params import CacheParams, SystemParams
from repro.harness.systems import get_system
from repro.htm.isa import Plain, Txn, compute, fault, load, store
from repro.sim.machine import Machine
from repro.sim.trace import TraceEvent, Tracer
from conftest import line_addr, make_machine, simple_txn


def traced_run(programs, system="Baseline", params=None, **tracer_kw):
    m = make_machine(programs, system=system, params=params)
    tracer = Tracer(**tracer_kw)
    tracer.attach(m)
    m.run()
    return m, tracer


class TestRecorder:
    def test_records_tx_lifecycle(self):
        _, tracer = traced_run([[simple_txn([1], [2])]])
        counts = tracer.counts()
        assert counts[TraceEvent.TX_BEGIN] == 1
        assert counts[TraceEvent.TX_COMMIT] == 1
        assert TraceEvent.TX_ABORT not in counts

    def test_records_aborts(self):
        prog = [[Txn([fault(persistent=True), store(line_addr(1), 1)])]]
        _, tracer = traced_run(prog)
        counts = tracer.counts()
        assert counts[TraceEvent.TX_ABORT] >= 1
        assert counts[TraceEvent.FALLBACK] == 1

    def test_records_rejects_and_wakeups(self):
        def prog(t):
            return [
                Plain([compute(3 + t)]),
                *[
                    Txn([load(line_addr(0)), store(line_addr(0), 1), compute(10)])
                    for _ in range(6)
                ],
            ]

        _, tracer = traced_run(
            [prog(t) for t in range(4)], system="LockillerTM-RWI"
        )
        counts = tracer.counts()
        assert counts.get(TraceEvent.REJECT, 0) > 0
        assert counts.get(TraceEvent.WAKEUP, 0) > 0

    def test_records_switching(self):
        params = SystemParams(
            num_cores=4,
            l1=CacheParams(2 * 64, 2, 2),
            llc=CacheParams(4096 * 64, 16, 12),
        )
        _, tracer = traced_run(
            [[simple_txn([1, 2, 3], [4])]],
            system="LockillerTM",
            params=params,
        )
        counts = tracer.counts()
        assert counts.get(TraceEvent.OVERFLOW, 0) >= 1
        assert counts.get(TraceEvent.SWITCH_OK, 0) == 1

    def test_capacity_bound(self):
        _, tracer = traced_run(
            [[simple_txn([i], [i]) for i in range(10)]], capacity=3
        )
        assert len(tracer) == 3
        assert tracer.dropped > 0
        assert "dropped" in tracer.render_tail()

    def test_event_filter(self):
        _, tracer = traced_run(
            [[simple_txn([1], [2])]],
            events={TraceEvent.TX_COMMIT},
        )
        assert set(tracer.counts()) == {TraceEvent.TX_COMMIT}

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_double_attach_rejected(self):
        m = make_machine([[]])
        tracer = Tracer()
        tracer.attach(m)
        with pytest.raises(RuntimeError):
            tracer.attach(m)


class TestQueries:
    def _tracer(self):
        progs = [
            [Plain([compute(2 + t)]), simple_txn([0], [0])] for t in range(3)
        ]
        return traced_run(progs, system="LockillerTM-RWI")[1]

    def test_events_for_core(self):
        tracer = self._tracer()
        for r in tracer.events_for_core(1):
            assert r.core == 1

    def test_between_window(self):
        tracer = self._tracer()
        all_times = [r.time for r in tracer.records]
        mid = sorted(all_times)[len(all_times) // 2]
        window = tracer.between(0, mid)
        assert all(r.time <= mid for r in window)
        assert window  # nonempty

    def test_render_contains_core_and_event(self):
        tracer = self._tracer()
        text = tracer.render_tail(5)
        assert "core" in text and "tx_commit" in text

    def test_contention_profile(self):
        def prog(t):
            return [
                Plain([compute(3 + t)]),
                *[
                    Txn([load(line_addr(7)), store(line_addr(7), 1)])
                    for _ in range(5)
                ],
            ]

        _, tracer = traced_run(
            [prog(t) for t in range(4)], system="LockillerTM-RWI"
        )
        profile = tracer.contention_profile()
        assert profile.total > 0
        hottest_line, hits = profile.hottest(1)[0]
        assert hottest_line == 7
        assert hits == profile.total  # only one contended line

    def test_tracing_does_not_change_results(self):
        progs = lambda: [
            [Plain([compute(2 + t)]), simple_txn([0], [0])] for t in range(4)
        ]
        plain = make_machine(progs(), system="LockillerTM")
        cycles_plain = plain.run()
        traced = make_machine(progs(), system="LockillerTM")
        Tracer().attach(traced)
        cycles_traced = traced.run()
        assert cycles_plain == cycles_traced
        assert plain.memsys.memory == traced.memsys.memory
