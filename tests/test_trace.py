"""Tests for the execution tracer and contention profiler."""

import pytest

from repro.common.params import CacheParams, SystemParams
from repro.harness.systems import get_system
from repro.htm.isa import Plain, Txn, compute, fault, load, store
from repro.sim.machine import Machine
from repro.sim.trace import TraceEvent, Tracer
from conftest import line_addr, make_machine, simple_txn


def traced_run(programs, system="Baseline", params=None, **tracer_kw):
    m = make_machine(programs, system=system, params=params)
    tracer = Tracer(**tracer_kw)
    tracer.attach(m)
    m.run()
    return m, tracer


class TestRecorder:
    def test_records_tx_lifecycle(self):
        _, tracer = traced_run([[simple_txn([1], [2])]])
        counts = tracer.counts()
        assert counts[TraceEvent.TX_BEGIN] == 1
        assert counts[TraceEvent.TX_COMMIT] == 1
        assert TraceEvent.TX_ABORT not in counts

    def test_records_aborts(self):
        prog = [[Txn([fault(persistent=True), store(line_addr(1), 1)])]]
        _, tracer = traced_run(prog)
        counts = tracer.counts()
        assert counts[TraceEvent.TX_ABORT] >= 1
        assert counts[TraceEvent.FALLBACK] == 1

    def test_records_rejects_and_wakeups(self):
        def prog(t):
            return [
                Plain([compute(3 + t)]),
                *[
                    Txn([load(line_addr(0)), store(line_addr(0), 1), compute(10)])
                    for _ in range(6)
                ],
            ]

        _, tracer = traced_run(
            [prog(t) for t in range(4)], system="LockillerTM-RWI"
        )
        counts = tracer.counts()
        assert counts.get(TraceEvent.REJECT, 0) > 0
        assert counts.get(TraceEvent.WAKEUP, 0) > 0

    def test_records_switching(self):
        params = SystemParams(
            num_cores=4,
            l1=CacheParams(2 * 64, 2, 2),
            llc=CacheParams(4096 * 64, 16, 12),
        )
        _, tracer = traced_run(
            [[simple_txn([1, 2, 3], [4])]],
            system="LockillerTM",
            params=params,
        )
        counts = tracer.counts()
        assert counts.get(TraceEvent.OVERFLOW, 0) >= 1
        assert counts.get(TraceEvent.SWITCH_OK, 0) == 1

    def test_stl_deny_path_recorded(self):
        # The denial branch of the _stl_result wrap: drive the wrapped
        # callback directly (a machine-level denial needs a racing STL
        # owner, which is timing-fragile to stage).
        m = make_machine([[simple_txn([1], [2])]], system="LockillerTM")
        tracer = Tracer()
        tracer.attach(m)
        cpu = m.cpus[0]
        cpu._stl_result(5, False, cpu.tx.attempt_seq)
        records = [r for r in tracer.records]
        assert records[-1].event is TraceEvent.SWITCH_ATTEMPT
        assert records[-1].detail == "denied"
        assert records[-1].time == 5

    def test_fallback_entry_and_lock_begin_recorded(self):
        prog = [[Txn([fault(persistent=True), store(line_addr(1), 1)])]]
        _, tracer = traced_run(prog)  # Baseline: classic fallback lock
        counts = tracer.counts()
        assert counts[TraceEvent.FALLBACK] == 1
        assert counts.get(TraceEvent.LOCK_BEGIN, 0) == 1
        lock_rec = [
            r for r in tracer.records if r.event is TraceEvent.LOCK_BEGIN
        ][0]
        assert lock_rec.detail == "fallback"

    def test_drain_wrap_reports_waiter_count(self):
        def prog(t):
            return [
                Plain([compute(3 + t)]),
                *[
                    Txn([load(line_addr(0)), store(line_addr(0), 1), compute(10)])
                    for _ in range(6)
                ],
            ]

        _, tracer = traced_run(
            [prog(t) for t in range(4)], system="LockillerTM-RWI"
        )
        wakeups = [
            r for r in tracer.records if r.event is TraceEvent.WAKEUP
        ]
        assert wakeups
        assert all(r.detail.endswith("waiter(s)") for r in wakeups)
        assert all(int(r.detail.split()[0]) >= 1 for r in wakeups)

    def test_capacity_bound(self):
        _, tracer = traced_run(
            [[simple_txn([i], [i]) for i in range(10)]], capacity=3
        )
        assert len(tracer) == 3
        assert tracer.dropped > 0
        assert "dropped" in tracer.render_tail()

    def test_event_filter(self):
        _, tracer = traced_run(
            [[simple_txn([1], [2])]],
            events={TraceEvent.TX_COMMIT},
        )
        assert set(tracer.counts()) == {TraceEvent.TX_COMMIT}

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_attach_same_machine_idempotent(self):
        m = make_machine([[simple_txn([1], [2])]])
        tracer = Tracer()
        tracer.attach(m)
        tracer.attach(m)  # no-op, no double-wrapping
        m.run()
        # Each lifecycle event recorded exactly once.
        assert tracer.counts()[TraceEvent.TX_COMMIT] == 1

    def test_attach_other_machine_rejected(self):
        m1 = make_machine([[]])
        m2 = make_machine([[]])
        tracer = Tracer()
        tracer.attach(m1)
        with pytest.raises(RuntimeError):
            tracer.attach(m2)

    def test_detach_restores_callbacks(self):
        from repro.telemetry.events import TelemetryHub

        m = make_machine([[simple_txn([1], [2])]])
        originals = (
            m.memsys.access,
            m.memsys.abort_core,
            m.drain_wakeups,
            m.cpus[0]._xbegin,
            m.cpus[0]._commit_done,
        )
        tracer = Tracer()
        tracer.attach(m)
        hub = TelemetryHub.of(m)
        assert hub.wired
        assert m.memsys.access is not originals[0]
        tracer.detach()
        assert not hub.wired
        assert (
            m.memsys.access,
            m.memsys.abort_core,
            m.drain_wakeups,
            m.cpus[0]._xbegin,
            m.cpus[0]._commit_done,
        ) == originals
        # Detached tracer records nothing; the machine still runs.
        m.run()
        assert len(tracer) == 0
        tracer.detach()  # idempotent when not attached

    def test_attach_run_detach_reattach(self):
        m = make_machine([[simple_txn([1], [2]), simple_txn([3], [4])]])
        first = Tracer()
        first.attach(m)
        first.detach()
        second = Tracer()
        second.attach(m)
        m.run()
        assert second.counts()[TraceEvent.TX_COMMIT] == 2
        assert len(first) == 0

    def test_two_tracers_share_one_set_of_wraps(self):
        m = make_machine([[simple_txn([1], [2])]])
        a, b = Tracer(), Tracer()
        a.attach(m)
        access_wrapped = m.memsys.access
        b.attach(m)
        # Second subscriber must not re-wrap the callbacks.
        assert m.memsys.access is access_wrapped
        m.run()
        assert a.counts() == b.counts()


class TestQueries:
    def _tracer(self):
        progs = [
            [Plain([compute(2 + t)]), simple_txn([0], [0])] for t in range(3)
        ]
        return traced_run(progs, system="LockillerTM-RWI")[1]

    def test_events_for_core(self):
        tracer = self._tracer()
        for r in tracer.events_for_core(1):
            assert r.core == 1

    def test_between_window(self):
        tracer = self._tracer()
        all_times = [r.time for r in tracer.records]
        mid = sorted(all_times)[len(all_times) // 2]
        window = tracer.between(0, mid)
        assert all(r.time <= mid for r in window)
        assert window  # nonempty

    def test_render_contains_core_and_event(self):
        tracer = self._tracer()
        text = tracer.render_tail(5)
        assert "core" in text and "tx_commit" in text

    def test_contention_profile(self):
        def prog(t):
            return [
                Plain([compute(3 + t)]),
                *[
                    Txn([load(line_addr(7)), store(line_addr(7), 1)])
                    for _ in range(5)
                ],
            ]

        _, tracer = traced_run(
            [prog(t) for t in range(4)], system="LockillerTM-RWI"
        )
        profile = tracer.contention_profile()
        assert profile.total > 0
        hottest_line, hits = profile.hottest(1)[0]
        assert hottest_line == 7
        assert hits == profile.total  # only one contended line

    def test_tracing_does_not_change_results(self):
        progs = lambda: [
            [Plain([compute(2 + t)]), simple_txn([0], [0])] for t in range(4)
        ]
        plain = make_machine(progs(), system="LockillerTM")
        cycles_plain = plain.run()
        traced = make_machine(progs(), system="LockillerTM")
        Tracer().attach(traced)
        cycles_traced = traced.run()
        assert cycles_plain == cycles_traced
        assert plain.memsys.memory == traced.memsys.memory
