"""Unit tests for SystemSpec validation and the conflict managers."""

import pytest

from repro.common.errors import ConfigError, ProtocolInvariantError
from repro.common.stats import AbortReason
from repro.core.conflict import (
    HolderInfo,
    RecoveryConflictManager,
    RequesterInfo,
    RequesterWinsManager,
    build_conflict_manager,
)
from repro.core.policies import PriorityKind, RequesterPolicy, SystemSpec
from repro.htm.txstate import LOCK_PRIORITY, TxMode


def spec(**kw):
    base = dict(name="t", use_htm=True)
    base.update(kw)
    return SystemSpec(**base)


class TestSystemSpecValidation:
    def test_switching_requires_htmlock(self):
        with pytest.raises(ConfigError):
            spec(recovery=True, switching=True)

    def test_htmlock_requires_recovery(self):
        with pytest.raises(ConfigError):
            spec(htmlock=True)

    def test_cgl_cannot_arm_mechanisms(self):
        with pytest.raises(ConfigError):
            spec(use_htm=False, recovery=True)

    def test_valid_full_stack(self):
        s = spec(recovery=True, htmlock=True, switching=True)
        assert not s.is_cgl
        assert "switchingMode" in s.describe()

    def test_cgl_describe(self):
        assert "locking" in spec(use_htm=False).describe()

    def test_build_manager_kinds(self):
        assert isinstance(
            build_conflict_manager(spec()), RequesterWinsManager
        )
        assert isinstance(
            build_conflict_manager(spec(recovery=True)),
            RecoveryConflictManager,
        )
        assert isinstance(
            build_conflict_manager(spec(use_htm=False)),
            RequesterWinsManager,
        )


def req(core=0, mode=TxMode.HTM, priority=0, is_write=True):
    return RequesterInfo(core, mode, priority, is_write)


def holder(core=1, mode=TxMode.HTM, priority=0, writer=True, sig=False):
    return HolderInfo(core, mode, priority, writer, via_signature=sig)


class TestRequesterWins:
    def setup_method(self):
        self.mgr = RequesterWinsManager(spec())

    def test_no_holders_granted(self):
        res = self.mgr.resolve(req(), [])
        assert res.granted and not res.victims

    def test_all_holders_abort(self):
        res = self.mgr.resolve(req(), [holder(1), holder(2, writer=False)])
        assert res.granted
        assert sorted(v[0] for v in res.victims) == [1, 2]
        assert all(r is AbortReason.CONFLICT_HTM for _, r in res.victims)

    def test_non_tx_requester_reason(self):
        res = self.mgr.resolve(req(mode=TxMode.NONE), [holder(1)])
        assert res.victims[0][1] is AbortReason.CONFLICT_NON_TRAN

    def test_fallback_requester_reason_is_mutex(self):
        res = self.mgr.resolve(req(mode=TxMode.FALLBACK), [holder(1)])
        assert res.victims[0][1] is AbortReason.MUTEX

    def test_lock_holder_is_invariant_violation(self):
        with pytest.raises(ProtocolInvariantError):
            self.mgr.resolve(req(), [holder(1, mode=TxMode.TL)])

    def test_self_conflict_rejected(self):
        with pytest.raises(ProtocolInvariantError):
            self.mgr.resolve(req(core=1), [holder(core=1)])

    def test_counters(self):
        self.mgr.resolve(req(), [holder()])
        assert self.mgr.grants == 1 and self.mgr.rejects == 0


class TestRecovery:
    def setup_method(self):
        self.mgr = RecoveryConflictManager(
            spec(recovery=True, priority_kind=PriorityKind.INSTS)
        )

    def test_higher_priority_requester_wins(self):
        res = self.mgr.resolve(req(priority=10), [holder(priority=5)])
        assert res.granted
        assert res.victims == [(1, AbortReason.CONFLICT_HTM)]

    def test_lower_priority_requester_rejected(self):
        res = self.mgr.resolve(req(priority=5), [holder(priority=10)])
        assert not res.granted
        assert res.reject_holder == 1
        assert not res.reject_by_lock

    def test_tie_breaks_by_core_id(self):
        # Requester core 0 vs holder core 1, equal priority: 0 wins.
        res = self.mgr.resolve(req(core=0, priority=5), [holder(core=1, priority=5)])
        assert res.granted
        # Requester core 2 vs holder core 1: holder wins.
        res = self.mgr.resolve(req(core=2, priority=5), [holder(core=1, priority=5)])
        assert not res.granted

    def test_must_beat_every_holder(self):
        res = self.mgr.resolve(
            req(priority=10),
            [holder(core=1, priority=5), holder(core=2, priority=20)],
        )
        assert not res.granted
        assert res.reject_holder == 2  # the strongest blocker

    def test_reject_holder_is_strongest(self):
        res = self.mgr.resolve(
            req(priority=0),
            [holder(core=3, priority=5), holder(core=1, priority=9)],
        )
        assert res.reject_holder == 1

    def test_lock_holder_always_rejects(self):
        res = self.mgr.resolve(
            req(priority=10**9),
            [holder(core=4, mode=TxMode.TL, priority=LOCK_PRIORITY)],
        )
        assert not res.granted
        assert res.reject_by_lock
        assert res.reject_holder == 4

    def test_signature_holder_rejects_too(self):
        res = self.mgr.resolve(
            req(), [holder(core=4, mode=TxMode.STL, priority=LOCK_PRIORITY, sig=True)]
        )
        assert not res.granted and res.reject_by_lock

    def test_plain_requester_beats_htm_holders(self):
        res = self.mgr.resolve(req(mode=TxMode.NONE), [holder(priority=10**6)])
        assert res.granted
        assert res.victims[0][1] is AbortReason.CONFLICT_NON_TRAN

    def test_plain_requester_loses_to_lock_holder(self):
        res = self.mgr.resolve(
            req(mode=TxMode.NONE),
            [holder(mode=TxMode.TL, priority=LOCK_PRIORITY)],
        )
        assert not res.granted and res.reject_by_lock

    def test_lock_requester_aborts_htm_holders_with_lock_reason(self):
        res = self.mgr.resolve(
            req(mode=TxMode.STL, priority=LOCK_PRIORITY),
            [holder(priority=999)],
        )
        assert res.granted
        assert res.victims[0][1] is AbortReason.CONFLICT_LOCK

    def test_two_lock_holders_invariant(self):
        with pytest.raises(ProtocolInvariantError):
            self.mgr.resolve(
                req(),
                [
                    holder(core=1, mode=TxMode.TL, priority=LOCK_PRIORITY),
                    holder(core=2, mode=TxMode.STL, priority=LOCK_PRIORITY),
                ],
            )

    def test_lock_vs_lock_invariant(self):
        with pytest.raises(ProtocolInvariantError):
            self.mgr.resolve(
                req(mode=TxMode.TL, priority=LOCK_PRIORITY),
                [holder(mode=TxMode.STL, priority=LOCK_PRIORITY)],
            )

    def test_reject_counter(self):
        self.mgr.resolve(req(priority=0), [holder(priority=10)])
        assert self.mgr.rejects == 1
