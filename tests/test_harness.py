"""Tests for the experiment harness and reporting helpers."""

import pytest

from repro.harness.experiments import (
    ExperimentContext,
    breakdown_experiment,
    extreme_scenario,
    fig1_motivation,
    fig7_speedup_grid,
    fig8_commit_rate,
    fig10_abort_reasons,
    fig12_avg_speedup,
    headline_ratios,
    print_fig1,
    print_fig10,
    print_fig12,
    table1_parameters,
    table2_systems,
)
from repro.harness.reporting import (
    format_breakdown_table,
    format_series,
    format_table,
)


@pytest.fixture(scope="module")
def ctx() -> ExperimentContext:
    # Tiny context shared by all harness tests (module-scoped cache).
    return ExperimentContext(
        scale=0.06,
        seed=5,
        threads=(2, 4),
        workloads=("intruder", "kmeans+", "ssca2"),
    )


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bee"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out and "30" in out
        assert set(lines[2]) <= {"-", " "}

    def test_format_series(self):
        out = format_series({"s1": {2: 1.5, 4: 2.0}}, title="x")
        assert "s1" in out and "1.50" in out and "2.00" in out

    def test_format_breakdown_percent(self):
        out = format_breakdown_table(
            {"sys": {"htm": 0.25, "lock": 0.75}},
            row_order=["sys"],
            col_order=["htm", "lock"],
        )
        assert "25.0%" in out and "75.0%" in out


class TestTables:
    def test_table1_mentions_key_params(self):
        out = table1_parameters()
        assert "32KB" in out and "8MB" in out and "4x8" in out

    def test_table2_lists_all_systems(self):
        out = table2_systems()
        for name in ("CGL", "Baseline", "LosaTM-SAFU", "LockillerTM"):
            assert name in out


class TestExperiments:
    def test_run_cache_hits(self, ctx):
        a = ctx.run("ssca2", "CGL", 2)
        b = ctx.run("ssca2", "CGL", 2)
        assert a is b  # memoized

    def test_fig1_covers_all_workloads(self, ctx):
        data = fig1_motivation(ctx)
        assert set(data) == set(ctx.workloads)
        assert all(v > 0 for v in data.values())

    def test_fig7_grid_shape(self, ctx):
        grid = fig7_speedup_grid(ctx, systems=("Baseline", "LockillerTM"))
        assert set(grid) == set(ctx.workloads)
        for per_system in grid.values():
            assert set(per_system) == {"Baseline", "LockillerTM"}
            for series in per_system.values():
                assert set(series) == set(ctx.threads)

    def test_fig8_rates_bounded(self, ctx):
        data = fig8_commit_rate(ctx)
        for series in data.values():
            for rate in series.values():
                assert 0.0 < rate <= 1.0

    def test_breakdown_fractions_sum(self, ctx):
        data = breakdown_experiment(ctx, 2, ("Baseline", "LockillerTM"))
        for per_system in data.values():
            for entry in per_system.values():
                assert sum(entry["fractions"].values()) == pytest.approx(1.0)
                assert 0 < entry["commit_rate"] <= 1.0

    def test_fig10_fractions(self, ctx):
        data = fig10_abort_reasons(ctx, threads=2)
        for per_system in data.values():
            for fractions in per_system.values():
                total = sum(fractions.values())
                assert total == pytest.approx(1.0) or total == 0.0

    def test_fig12_includes_all_systems(self, ctx):
        data = fig12_avg_speedup(ctx, systems=("Baseline", "LockillerTM"))
        assert set(data) == {"Baseline", "LockillerTM"}

    def test_headline_ratios_positive(self, ctx):
        heads = headline_ratios(ctx)
        assert heads["vs Baseline"] > 0
        assert heads["vs LosaTM-SAFU"] > 0

    def test_extreme_scenario_runs(self, ctx):
        ext = extreme_scenario(ctx)
        assert ext["max vs Baseline"] > 0

    def test_printers_return_text(self, ctx):
        assert "Fig. 1" in print_fig1(ctx)
        assert "Fig. 10" in print_fig10(ctx)
        assert "headline" in print_fig12(ctx)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_THREADS", "2,4,8")
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        c = ExperimentContext()
        assert c.threads == (2, 4, 8)
        assert c.scale == 0.5
