"""Tests for the streaming latency histogram and its wiring."""

import pytest

from repro.common.stats import LatencyHistogram
from repro.harness.export import dumps, loads
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


class TestHistogram:
    def test_record_and_mean(self):
        h = LatencyHistogram()
        for v in (10, 20, 30):
            h.record(v)
        assert h.count == 3
        assert h.mean == pytest.approx(20.0)

    def test_bucketing(self):
        h = LatencyHistogram()
        h.record(5)   # bit_length 3 -> [4, 8)
        h.record(7)
        h.record(100)  # bit_length 7 -> [64, 128)
        assert h.buckets[3] == 2
        assert h.buckets[7] == 1

    def test_quantiles_monotone(self):
        h = LatencyHistogram()
        for v in range(1, 200):
            h.record(v)
        q50 = h.quantile_upper_bound(0.5)
        q95 = h.quantile_upper_bound(0.95)
        assert q50 <= q95
        assert 64 <= q50 <= 255  # median 100 lives in [64,128)

    def test_quantile_validation(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.quantile_upper_bound(0.0)
        assert h.quantile_upper_bound(0.5) == 0  # empty

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(10)
        b.record(1000)
        a.merge(b)
        assert a.count == 2
        assert a.total == 1010

    def test_zero_value(self):
        h = LatencyHistogram()
        h.record(0)
        assert h.buckets[0] == 1
        assert h.quantile_upper_bound(1.0) == 0

    def test_round_trip_dict(self):
        h = LatencyHistogram()
        for v in (3, 50, 700):
            h.record(v)
        again = LatencyHistogram.from_dict(h.as_dict())
        assert again.buckets == h.buckets
        assert again.mean == h.mean


class TestWiring:
    def _run(self, system):
        return run_workload(
            get_workload("vacation+"),
            RunConfig(spec=get_system(system), threads=4, scale=0.1, seed=2),
        )

    def test_every_commit_recorded(self):
        stats = self._run("LockillerTM")
        merged = stats.merged()
        assert merged.commit_latency_hist.count == merged.commits

    def test_cgl_commits_recorded_too(self):
        stats = self._run("CGL")
        merged = stats.merged()
        assert merged.commit_latency_hist.count == merged.commits_lock

    def test_percentiles_reasonable(self):
        stats = self._run("LockillerTM")
        h = stats.merged().commit_latency_hist
        p50 = h.quantile_upper_bound(0.5)
        p99 = h.quantile_upper_bound(0.99)
        assert 0 < p50 <= p99 < stats.execution_cycles

    def test_survives_export_round_trip(self):
        stats = self._run("Baseline")
        again = loads(dumps(stats))
        assert (
            again.merged().commit_latency_hist.buckets
            == stats.merged().commit_latency_hist.buckets
        )
