"""Whole-matrix integration: every system x every workload, verified.

Each cell runs at small scale with the runner's full functional and
coherence verification armed; cross-cutting invariants (commit
accounting, billing conservation, mutex-elimination under HTMLock) are
asserted over the entire matrix.
"""

import pytest

from repro.common.stats import AbortReason
from repro.harness.systems import TABLE_ORDER, get_system
from repro.htm.isa import Txn
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import PAPER_ORDER, get_workload

THREADS = 4
SCALE = 0.08
SEED = 31


@pytest.fixture(scope="module")
def matrix():
    out = {}
    for wl in PAPER_ORDER + ["bayes"]:
        build = get_workload(wl).build(THREADS, SCALE, SEED)
        n_txns = sum(
            1 for p in build.programs for s in p if isinstance(s, Txn)
        )
        for system in TABLE_ORDER:
            stats = run_workload(
                build,
                RunConfig(
                    spec=get_system(system),
                    threads=THREADS,
                    scale=SCALE,
                    seed=SEED,
                ),
            )
            out[(wl, system)] = (stats, n_txns)
    return out


class TestMatrix:
    def test_every_cell_verified(self, matrix):
        assert len(matrix) == 10 * 9
        for (wl, system), (stats, _) in matrix.items():
            assert stats.sanity_failures == [], (wl, system)

    def test_commit_accounting_exact(self, matrix):
        for (wl, system), (stats, n_txns) in matrix.items():
            assert stats.commits == n_txns, (wl, system)

    def test_billing_conservation(self, matrix):
        for (wl, system), (stats, _) in matrix.items():
            for i, cs in enumerate(stats.cores):
                assert sum(cs.time.values()) == stats.execution_cycles, (
                    wl,
                    system,
                    i,
                )

    def test_cgl_never_aborts(self, matrix):
        for wl in PAPER_ORDER:
            stats, _ = matrix[(wl, "CGL")]
            assert stats.total_aborts == 0, wl

    def test_htmlock_systems_have_no_mutex_aborts(self, matrix):
        for (wl, system), (stats, _) in matrix.items():
            if get_system(system).htmlock:
                assert (
                    stats.abort_breakdown()[AbortReason.MUTEX] == 0
                ), (wl, system)

    def test_switching_only_in_full_system(self, matrix):
        for (wl, system), (stats, _) in matrix.items():
            switched = stats.merged().commits_switched
            if not get_system(system).switching:
                assert switched == 0, (wl, system)

    def test_rejects_only_under_recovery(self, matrix):
        for (wl, system), (stats, _) in matrix.items():
            spec = get_system(system)
            if not spec.recovery:
                assert stats.merged().rejects_received == 0, (wl, system)

    def test_all_systems_agree_functionally(self, matrix):
        # Same workload build on every system -> identical commits
        # (memory equality is asserted per-run by the runner).
        for wl in PAPER_ORDER:
            commits = {
                system: matrix[(wl, system)][0].commits
                for system in TABLE_ORDER
            }
            assert len(set(commits.values())) == 1, (wl, commits)
