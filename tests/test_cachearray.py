"""Unit and property tests for the set-associative cache array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ProtocolInvariantError
from repro.common.params import CacheParams
from repro.coherence.cachearray import CacheArray
from repro.coherence.states import MESI


@pytest.fixture(params=["packed", "reference"])
def arr(request) -> CacheArray:
    # 4 sets, 2 ways; every test runs against both array backends.
    return CacheArray(CacheParams(8 * 64, 2, 2, backend=request.param))


class TestBasics:
    def test_probe_absent_is_invalid(self, arr):
        assert arr.probe(1) == MESI.I
        assert not arr.contains(1)

    def test_insert_and_probe(self, arr):
        assert arr.insert(1, MESI.S) is None
        assert arr.probe(1) == MESI.S
        assert len(arr) == 1

    def test_insert_existing_updates_state(self, arr):
        arr.insert(1, MESI.S)
        arr.insert(1, MESI.M)
        assert arr.probe(1) == MESI.M
        assert len(arr) == 1

    def test_insert_rejects_invalid_state(self, arr):
        with pytest.raises(ProtocolInvariantError):
            arr.insert(1, MESI.I)

    def test_set_state(self, arr):
        arr.insert(1, MESI.E)
        arr.set_state(1, MESI.M)
        assert arr.probe(1) == MESI.M

    def test_set_state_to_invalid_removes(self, arr):
        arr.insert(1, MESI.E)
        arr.set_state(1, MESI.I)
        assert not arr.contains(1)

    def test_set_state_absent_raises(self, arr):
        with pytest.raises(ProtocolInvariantError):
            arr.set_state(9, MESI.M)

    def test_invalidate_returns_prior(self, arr):
        arr.insert(1, MESI.M)
        assert arr.invalidate(1) == MESI.M
        assert arr.invalidate(1) == MESI.I

    def test_touch_absent_raises(self, arr):
        with pytest.raises(ProtocolInvariantError):
            arr.touch(5)


class TestReplacement:
    def test_lru_victim(self, arr):
        # lines 0, 4, 8 all map to set 0 (4 sets).
        arr.insert(0, MESI.S)
        arr.insert(4, MESI.S)
        victim = arr.insert(8, MESI.S)
        assert victim is not None and victim.line == 0
        assert not arr.contains(0)

    def test_touch_refreshes_lru(self, arr):
        arr.insert(0, MESI.S)
        arr.insert(4, MESI.S)
        arr.touch(0)  # now 4 is LRU
        victim = arr.insert(8, MESI.S)
        assert victim.line == 4

    def test_pinned_lines_skipped(self, arr):
        arr.insert(0, MESI.M)
        arr.insert(4, MESI.S)
        victim = arr.insert(8, MESI.S, pinned=lambda ln: ln == 0)
        assert victim.line == 4
        assert arr.contains(0)

    def test_all_pinned_reports_overflow(self, arr):
        arr.insert(0, MESI.M)
        arr.insert(4, MESI.M)
        victim = arr.insert(8, MESI.S, pinned=lambda ln: True)
        assert victim.was_pinned
        # Nothing was evicted and the new line was NOT inserted.
        assert arr.contains(0) and arr.contains(4)
        assert not arr.contains(8)

    def test_set_occupancy(self, arr):
        assert arr.set_occupancy(0) == 0
        arr.insert(0, MESI.S)
        arr.insert(4, MESI.S)
        assert arr.set_occupancy(8) == 2  # same set as 0 and 4
        assert arr.set_occupancy(1) == 0

    def test_eviction_counter(self, arr):
        arr.insert(0, MESI.S)
        arr.insert(4, MESI.S)
        arr.insert(8, MESI.S)
        assert arr.evictions == 1


class TestInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.sampled_from([MESI.S, MESI.E, MESI.M])),
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_structure_preserved_under_inserts(self, ops):
        arr = CacheArray(CacheParams(8 * 64, 2, 2))
        for line, state in ops:
            arr.insert(line, state)
            arr.check_invariants()
        # Capacity never exceeded.
        assert len(arr) <= 8

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.booleans()),
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_insert_invalidate_mix(self, ops):
        arr = CacheArray(CacheParams(8 * 64, 2, 2))
        for line, is_insert in ops:
            if is_insert:
                arr.insert(line, MESI.S)
            else:
                arr.invalidate(line)
            arr.check_invariants()
