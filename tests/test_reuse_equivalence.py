"""Shared-build and pooled-machine equivalence suites.

PR 7's structural reuse (shared WorkloadBuilds, the machine pool) is
pure plumbing: a run on a shared build or a pooled machine must be
bit-identical to a run on a fresh one.  These tests pin that over the
full Table-II system set on the same contended cell the golden pins use
(intruder / 4 threads / scale 0.05 / seed 3).
"""

import pytest

from repro.common.params import typical_params
from repro.harness.export import fingerprint
from repro.harness.systems import TABLE_ORDER, get_system
from repro.sim.machine import Machine
from repro.sim.pool import MachinePool
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.buildcache import BuildCache
from repro.workloads.registry import get_workload


def _cfg(system, threads=4, scale=0.05, seed=3, **kw):
    # Reuse is what's under test, so default it OFF: the "fresh" runs
    # these suites compare against must really build from scratch.
    kw.setdefault("share_build", False)
    kw.setdefault("machine_pool", False)
    return RunConfig(
        spec=get_system(system),
        threads=threads,
        scale=scale,
        seed=seed,
        **kw,
    )


class TestSharedBuildEquivalence:
    def test_cache_returns_same_object_per_key(self):
        cache = BuildCache()
        wl = get_workload("ssca2")
        a = cache.get(wl, 2, 0.05, 1)
        b = cache.get(wl, 2, 0.05, 1)
        assert a is b
        assert (cache.hits, cache.misses) == (1, 1)
        # int/float scale coordinates collapse to one build.
        c = cache.get(wl, 2, 1, 1)
        assert cache.get(wl, 2, 1.0, 1) is c

    def test_lru_bound(self):
        cache = BuildCache(max_entries=2)
        wl = get_workload("ssca2")
        first = cache.get(wl, 1, 0.05, 1)
        cache.get(wl, 1, 0.05, 2)
        cache.get(wl, 1, 0.05, 3)
        assert len(cache) == 2
        assert cache.get(wl, 1, 0.05, 1) is not first  # evicted, rebuilt

    @pytest.mark.parametrize("workload", ["intruder", "vacation-"])
    def test_shared_vs_fresh_bit_identical(self, workload):
        wl = get_workload(workload)
        fresh = run_workload(wl, _cfg("LockillerTM", share_build=False))
        shared = run_workload(wl, _cfg("LockillerTM", share_build=True))
        again = run_workload(wl, _cfg("LockillerTM", share_build=True))
        assert fingerprint(shared) == fingerprint(fresh)
        assert fingerprint(again) == fingerprint(fresh)


class TestPooledVsFresh:
    @pytest.mark.parametrize("system", TABLE_ORDER)
    def test_table2_system_bit_identical(self, system):
        wl = get_workload("intruder")
        pool = MachinePool()
        fresh = run_workload(wl, _cfg(system))
        first = run_workload(wl, _cfg(system, machine_pool=pool))
        reused = run_workload(wl, _cfg(system, machine_pool=pool))
        assert pool.builds == 1 and pool.reuses == 1
        assert fingerprint(first) == fingerprint(fresh)
        assert fingerprint(reused) == fingerprint(fresh)

    def test_reuse_across_thread_counts(self):
        wl = get_workload("ssca2")
        pool = MachinePool()
        run_workload(wl, _cfg("LockillerTM", threads=4, machine_pool=pool))
        fresh = run_workload(wl, _cfg("LockillerTM", threads=2))
        pooled = run_workload(
            wl, _cfg("LockillerTM", threads=2, machine_pool=pool)
        )
        assert pool.reuses == 1
        assert fingerprint(pooled) == fingerprint(fresh)

    def test_fault_plan_bypasses_pool(self):
        from repro.resilience.faults import get_plan, plan_names

        wl = get_workload("ssca2")
        pool = MachinePool()
        run_workload(
            wl,
            _cfg(
                "CGL",
                threads=2,
                seed=1,
                machine_pool=pool,
                fault_plan=get_plan(plan_names()[0]),
            ),
        )
        assert pool.builds == 0 and pool.reuses == 0 and pool.releases == 0

    def test_default_config_uses_global_pool(self):
        from repro.sim.pool import global_pool

        wl = get_workload("ssca2")
        gp = global_pool()
        acquired = gp.builds + gp.reuses
        released = gp.releases
        run_workload(wl, _cfg("CGL", threads=2, seed=1, machine_pool=None))
        run_workload(wl, _cfg("CGL", threads=2, seed=1, machine_pool=None))
        assert gp.builds + gp.reuses >= acquired + 2
        assert gp.releases >= released + 2
        # machine_pool=False opts out entirely.
        acquired = gp.builds + gp.reuses
        run_workload(wl, _cfg("CGL", threads=2, seed=1))
        assert gp.builds + gp.reuses == acquired

    def test_release_scrubs_parked_state(self):
        wl = get_workload("ssca2")
        pool = MachinePool()
        run_workload(wl, _cfg("CGL", threads=2, seed=1, machine_pool=pool))
        (parked,) = next(iter(pool._free.values()))
        assert parked.engine.now == 0
        assert parked.engine.events_processed == 0
        assert len(parked.memsys.directory) == 0
        assert parked.cpus == []

    def test_pool_caps_per_key(self):
        wl = get_workload("ssca2")
        pool = MachinePool(max_per_key=1)
        cfg = _cfg("CGL", threads=2, seed=1, machine_pool=pool)
        machines = [
            pool.acquire(cfg.params, cfg.spec, [[], []]) for _ in range(3)
        ]
        for m in machines:
            pool.release(m)
        assert len(pool._free[(cfg.spec, cfg.params)]) == 1


class TestMachineReset:
    def test_reset_run_matches_fresh_run(self):
        params = typical_params()
        spec = get_system("LockillerTM")
        build = get_workload("intruder").build(4, 0.05, 3)

        fresh = Machine(params, spec, build.programs, seed=3)
        want_cycles = fresh.run()

        m = Machine(params, spec, build.programs, seed=3)
        m.run()
        m.reset(build.programs, seed=3)
        assert m.engine.now == 0 and m.engine.events_processed == 0
        assert m.network.messages_sent == 0
        assert len(m.memsys.directory) == 0
        got_cycles = m.run()
        assert got_cycles == want_cycles
        from repro.common.stats import RunStats

        assert fingerprint(
            RunStats(execution_cycles=got_cycles, cores=m.core_stats)
        ) == fingerprint(
            RunStats(execution_cycles=want_cycles, cores=fresh.core_stats)
        )
