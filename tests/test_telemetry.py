"""repro.telemetry: registry, hub, timeline, Chrome trace, sinks,
harness wiring, CLI.

The load-bearing guarantee is *non-perturbation*: attaching a full
telemetry session must not change a single simulated bit.  The pinned
golden cell from ``test_golden_determinism`` is re-asserted here both
with telemetry off (default path untouched) and with telemetry on
(observation only).
"""

import json
import os

import pytest

from repro.common.params import typical_params
from repro.harness.cli import main as cli_main
from repro.harness.export import fingerprint
from repro.harness.multiseed import trace_seed
from repro.harness.runcache import RunCache
from repro.harness.sweeps import Sweep
from repro.harness.systems import get_system, resolve_system
from repro.sim.machine import Machine
from repro.sim.runner import RunConfig, run_workload
from repro.telemetry import (
    ARTIFACT_SUFFIXES,
    MetricsRegistry,
    NULL_METRIC,
    Telemetry,
    TelemetryHub,
    artifact_path,
    chrome_trace,
    read_jsonl,
    validate_chrome_trace,
    write_json_atomic,
    write_jsonl_atomic,
)
from repro.workloads.registry import get_workload

#: Same pinned cell as tests/test_golden_determinism.py.
GOLD_CYCLES, GOLD_FP, GOLD_COMMITS, GOLD_ABORTS = (
    9755,
    "1877f557f4e76393",
    40,
    5,
)


def _gold_config(telemetry=None):
    return RunConfig(
        spec=get_system("LockillerTM"),
        threads=4,
        scale=0.05,
        seed=3,
        telemetry=telemetry,
    )


def _gold_run(telemetry=None):
    return run_workload(get_workload("intruder"), _gold_config(telemetry))


class TestRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("htm.nack.total").inc()
        reg.counter("htm.nack.total").inc(4)
        reg.gauge("run.cycles").set(9755)
        assert reg.value("htm.nack.total") == 5
        assert reg.value("run.cycles") == 9755
        assert len(reg) == 2
        assert "htm.nack.total" in reg and "nope" not in reg

    def test_histogram_serializes(self):
        reg = MetricsRegistry()
        h = reg.histogram("commit_latency")
        for v in (1, 2, 4, 100):
            h.record(v)
        val = reg.value("commit_latency")
        assert val["count"] == 4
        assert val["total"] == 107
        assert val["p99_ub"] >= 100

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_disabled_registry_is_null(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_METRIC
        assert reg.gauge("b") is NULL_METRIC
        assert reg.histogram("c") is NULL_METRIC
        reg.counter("a").inc()
        reg.set("d", 7)
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_scope_prefixes(self):
        reg = MetricsRegistry()
        core0 = reg.scope("core.0")
        core0.counter("commits_htm").inc(3)
        core0.scope("time").gauge("htm").set(0.5)
        assert reg.value("core.0.commits_htm") == 3
        assert reg.value("core.0.time.htm") == 0.5

    def test_query_namespaces_render(self):
        reg = MetricsRegistry()
        reg.counter("noc.messages_sent").inc(10)
        reg.gauge("noc.link.0_1.busy_until").set(99)
        reg.gauge("sim.now").set(1)
        assert reg.query("noc") == {
            "noc.messages_sent": 10,
            "noc.link.0_1.busy_until": 99,
        }
        assert reg.namespaces() == ["noc", "sim"]
        out = reg.render("noc")
        assert "noc.messages_sent" in out and "sim.now" not in out
        assert reg.render(limit=2).count("\n") <= 2


class TestHub:
    def test_hub_cached_per_machine(self):
        m = Machine(
            typical_params(), get_system("Baseline"), [[] for _ in range(2)]
        )
        assert TelemetryHub.of(m) is TelemetryHub.of(m)

    def test_subscribe_wires_unsubscribe_restores(self):
        m = Machine(
            typical_params(), get_system("Baseline"), [[] for _ in range(2)]
        )
        hub = TelemetryHub.of(m)
        orig_access = m.memsys.access
        orig_xbegin = m.cpus[0]._xbegin
        sub = lambda ev: None
        hub.subscribe(sub)
        hub.subscribe(sub)  # idempotent
        assert hub.wired and hub.subscriber_count == 1
        assert m.memsys.access is not orig_access
        hub.unsubscribe(sub)
        assert not hub.wired
        assert m.memsys.access.__func__ is orig_access.__func__
        assert m.cpus[0]._xbegin.__func__ is orig_xbegin.__func__
        hub.unsubscribe(sub)  # safe when already gone


class TestBitIdentity:
    def test_off_matches_golden_pins(self):
        stats = _gold_run()
        assert stats.execution_cycles == GOLD_CYCLES
        assert fingerprint(stats) == GOLD_FP

    def test_on_matches_golden_pins(self):
        tel = Telemetry()
        stats = _gold_run(tel)
        merged = stats.merged()
        assert stats.execution_cycles == GOLD_CYCLES
        assert fingerprint(stats) == GOLD_FP
        assert merged.commits == GOLD_COMMITS
        assert merged.total_aborts == GOLD_ABORTS

    def test_timeline_matches_commit_abort_totals(self):
        tel = Telemetry()
        _gold_run(tel)
        tl = tel.timeline
        assert len(tl.committed()) == GOLD_COMMITS
        assert len(tl.aborted()) == GOLD_ABORTS
        assert all(s.end is not None for s in tl.spans)
        assert tel.registry.value("run.execution_cycles") == GOLD_CYCLES
        assert tel.registry.value("run.commits") == GOLD_COMMITS

    def test_detached_after_run(self):
        tel = Telemetry()
        _gold_run(tel)
        assert tel._machine is None  # runner detaches on success


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        tel = Telemetry()
        _gold_run(tel)
        return tel

    def test_validates_and_round_trips(self, traced):
        doc = traced.trace_dict("gold")
        assert validate_chrome_trace(doc) == []
        again = json.loads(json.dumps(doc))
        assert again == doc
        assert again["displayTimeUnit"] == "ns"

    def test_event_shapes(self, traced):
        events = traced.trace_dict("gold")["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "C"} <= phases
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == GOLD_COMMITS + GOLD_ABORTS
        assert all(e["dur"] >= 1 for e in spans)  # Perfetto rejects 0
        assert all(isinstance(e["tid"], int) for e in events)
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {
            "live-set lines",
            "signature fill",
        }

    def test_span_args_annotated(self, traced):
        spans = [
            e
            for e in traced.trace_dict("gold")["traceEvents"]
            if e["ph"] == "X"
        ]
        outcomes = {e["args"]["outcome"] for e in spans}
        assert outcomes == {"commit", "abort"}
        aborts = [e for e in spans if e["args"]["outcome"] == "abort"]
        assert all(e["args"]["abort_reason"] for e in aborts)
        assert all("priority" in e["args"] for e in spans)

    def test_validator_catches_bad_docs(self):
        assert validate_chrome_trace({"traceEvents": "x"})
        assert validate_chrome_trace(
            {"displayTimeUnit": "ns", "traceEvents": [{"ph": "Z"}]}
        )
        bad_x = {
            "displayTimeUnit": "ns",
            "traceEvents": [
                {"ph": "X", "name": "t", "pid": 1, "tid": 1, "ts": 0}
            ],
        }
        assert any("dur" in p for p in validate_chrome_trace(bad_x))


class TestSinks:
    def test_json_atomic(self, tmp_path):
        path = str(tmp_path / "doc.json")
        write_json_atomic(path, {"a": 1}, indent=2)
        assert json.loads(open(path, encoding="utf-8").read()) == {"a": 1}
        assert [f for f in os.listdir(tmp_path) if ".tmp." in f] == []

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "rows.jsonl")
        rows = [{"i": i} for i in range(5)]
        write_jsonl_atomic(path, rows)
        assert list(read_jsonl(path)) == rows

    def test_artifact_paths_are_cache_siblings(self, tmp_path):
        rc = RunCache(str(tmp_path))
        key = "ab" + "0" * 62
        base = rc.path_for(key)
        for kind, suffix in ARTIFACT_SUFFIXES.items():
            p = artifact_path(rc, key, kind)
            assert p == base[: -len(".json")] + suffix
            assert os.path.dirname(p) == os.path.dirname(base)
        with pytest.raises(ValueError):
            artifact_path(rc, key, "bogus")


class TestHarnessIntegration:
    def test_sweep_rerun_with_telemetry(self, tmp_path):
        sweep = Sweep(
            workloads=("intruder",),
            systems=("LockillerTM",),
            threads=(4,),
            seeds=(3,),
            scale=0.05,
        )
        cache = str(tmp_path / "rc")
        out = sweep.rerun_with_telemetry(
            cache, workload="intruder", system="LockillerTM"
        )
        assert set(out) == {"result", "metrics", "trace"}
        for path in out.values():
            assert os.path.exists(path)
        assert os.path.dirname(out["trace"]) == os.path.dirname(out["result"])
        doc = json.loads(open(out["trace"], encoding="utf-8").read())
        assert validate_chrome_trace(doc) == []
        metrics = json.loads(open(out["metrics"], encoding="utf-8").read())
        assert metrics["run.execution_cycles"] == GOLD_CYCLES
        # The telemetry re-run must agree with the cached result.
        rc = RunCache(cache)
        key = os.path.basename(out["result"])[: -len(".json")]
        assert fingerprint(rc.get(key)) == GOLD_FP

    def test_sweep_rerun_needs_exactly_one_cell(self, tmp_path):
        sweep = Sweep(
            workloads=("intruder",),
            systems=("CGL", "LockillerTM"),
            threads=(4,),
            seeds=(3,),
            scale=0.05,
        )
        with pytest.raises(KeyError):
            sweep.rerun_with_telemetry(
                str(tmp_path / "rc"), workload="intruder"
            )

    def test_trace_seed(self, tmp_path):
        out = trace_seed(
            "intruder",
            "LockillerTM",
            threads=4,
            seed=3,
            scale=0.05,
            cache=str(tmp_path / "rc"),
        )
        assert set(out) == {"result", "metrics", "trace"}
        doc = json.loads(open(out["trace"], encoding="utf-8").read())
        assert validate_chrome_trace(doc) == []
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == GOLD_COMMITS + GOLD_ABORTS


class TestResolveSystem:
    def test_exact_and_alias(self):
        assert resolve_system("LockillerTM").name == "LockillerTM"
        assert resolve_system("lockiller").name == "LockillerTM"
        assert resolve_system("losatm").name == "LosaTM-SAFU"
        assert resolve_system("cgl").name == "CGL"

    def test_case_insensitive_and_prefix(self):
        assert resolve_system("baseline").name == "Baseline"
        assert resolve_system("lockillertm-rwi").name == "LockillerTM-RWI"
        assert resolve_system("LosaTM").name == "LosaTM-SAFU"

    def test_ambiguous_and_unknown(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="ambiguous"):
            resolve_system("LockillerTM-R")  # RAI/RRI/RWI/RWL/RWIL
        with pytest.raises(ConfigError):
            resolve_system("no-such-system")


class TestCli:
    CELL = [
        "--workload",
        "intruder",
        "--system",
        "lockiller",
        "--cores",
        "4",
        "--scale",
        "0.05",
        "--seed",
        "3",
    ]

    def test_timeline_stdout_round_trips(self, capsys, tmp_path):
        out_file = str(tmp_path / "cell.trace.json")
        assert cli_main(["timeline", *self.CELL, "--out", out_file]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert validate_chrome_trace(doc) == []
        assert doc == json.loads(open(out_file, encoding="utf-8").read())

    def test_timeline_summary(self, capsys):
        assert cli_main(["timeline", *self.CELL, "--summary"]) == 0
        out = capsys.readouterr().out
        assert "commit" in out

    def test_metrics_render_and_json(self, capsys):
        assert cli_main(["metrics", *self.CELL, "--prefix", "htm"]) == 0
        out = capsys.readouterr().out
        assert "htm.nack" in out
        assert cli_main(["metrics", *self.CELL, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["run.execution_cycles"] == GOLD_CYCLES
