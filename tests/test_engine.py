"""Unit tests for the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import SimEngine


class TestScheduling:
    def test_fires_in_time_order(self):
        eng = SimEngine()
        order = []
        eng.schedule(30, lambda t: order.append(("c", t)))
        eng.schedule(10, lambda t: order.append(("a", t)))
        eng.schedule(20, lambda t: order.append(("b", t)))
        eng.run()
        assert order == [("a", 10), ("b", 20), ("c", 30)]

    def test_same_cycle_fifo(self):
        eng = SimEngine()
        order = []
        for name in "abc":
            eng.schedule(5, lambda t, n=name: order.append(n))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_schedule_after_relative(self):
        eng = SimEngine()
        seen = []
        eng.schedule(10, lambda t: eng.schedule_after(5, seen.append))
        eng.run()
        assert seen == [15]

    def test_rejects_past(self):
        eng = SimEngine()
        eng.schedule(10, lambda t: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule(5, lambda t: None)

    def test_rejects_negative_delay(self):
        eng = SimEngine()
        with pytest.raises(SimulationError):
            eng.schedule_after(-1, lambda t: None)

    def test_run_until_stops(self):
        eng = SimEngine()
        seen = []
        eng.schedule(10, seen.append)
        eng.schedule(20, seen.append)
        eng.run(until=15)
        assert seen == [10]
        assert eng.pending() == 1
        eng.run()
        assert seen == [10, 20]

    def test_run_until_advances_now_to_cutoff(self):
        # A truncated run ends at the truncation point, not at the last
        # processed event: time has observably passed up to `until`.
        eng = SimEngine()
        eng.schedule(10, lambda t: None)
        eng.schedule(20, lambda t: None)
        eng.run(until=15)
        assert eng.now == 15

    def test_run_until_empty_heap_advances_now(self):
        eng = SimEngine()
        eng.run(until=100)
        assert eng.now == 100

    def test_run_until_exact_event_time_runs_event(self):
        eng = SimEngine()
        seen = []
        eng.schedule(15, seen.append)
        eng.run(until=15)
        assert seen == [15]
        assert eng.now == 15

    def test_reschedule_after_truncated_run_anchors_at_cutoff(self):
        # schedule_after() issued after a truncated run must be relative
        # to the cutoff, so back-to-back run(until=...) windows compose.
        eng = SimEngine()
        seen = []
        eng.schedule(10, lambda t: None)
        eng.run(until=15)
        eng.schedule_after(5, seen.append)
        eng.run()
        assert seen == [20]
        assert eng.now == 20


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = SimEngine()
        seen = []
        token = eng.schedule(10, seen.append)
        eng.schedule(20, seen.append)
        token.cancel()
        eng.run()
        assert seen == [20]

    def test_cancel_is_idempotent(self):
        eng = SimEngine()
        token = eng.schedule(10, lambda t: None)
        token.cancel()
        token.cancel()
        eng.run()


class TestStepAndAccounting:
    def test_step_returns_false_when_empty(self):
        assert SimEngine().step() is False

    def test_step_processes_one(self):
        eng = SimEngine()
        seen = []
        eng.schedule(1, seen.append)
        eng.schedule(2, seen.append)
        assert eng.step()
        assert seen == [1]

    def test_events_processed_counter(self):
        eng = SimEngine()
        for i in range(5):
            eng.schedule(i, lambda t: None)
        eng.run()
        assert eng.events_processed == 5

    def test_now_tracks_last_event(self):
        eng = SimEngine()
        eng.schedule(42, lambda t: None)
        eng.run()
        assert eng.now == 42

    def test_event_budget_guards_livelock(self):
        eng = SimEngine(max_events=10)

        def respawn(t):
            eng.schedule_after(1, respawn)

        eng.schedule(0, respawn)
        with pytest.raises(SimulationError):
            eng.run()

    def test_events_scheduled_during_run(self):
        eng = SimEngine()
        seen = []

        def chain(t):
            seen.append(t)
            if t < 5:
                eng.schedule_after(1, chain)

        eng.schedule(0, chain)
        eng.run()
        assert seen == [0, 1, 2, 3, 4, 5]


class TestCalendarRingEdgeCases:
    """Edge cases of the bucket-ring + heap two-tier scheduler."""

    def test_zero_delay_storm_drains_in_schedule_order(self):
        # Events that schedule more zero-delay events at the same cycle
        # must fire in allocation order and all within that cycle.
        eng = SimEngine()
        seen = []

        def spawn(depth):
            def fire(t):
                seen.append((depth, t))
                if depth < 50:
                    eng.schedule_after(0, spawn(depth + 1))

            return fire

        eng.schedule(7, spawn(0))
        eng.run()
        assert seen == [(d, 7) for d in range(51)]
        assert eng.now == 7
        assert eng.pending() == 0

    def test_zero_delay_storm_from_heap_fast_path(self):
        # A lone heap event whose callback floods the current cycle
        # with zero-delay ring events: the direct-fire path must leave
        # _ring_next discoverable so the flood still drains at t.
        eng = SimEngine()
        seen = []

        def flood(t):
            for i in range(5):
                eng.schedule_after(0, lambda tt, i=i: seen.append((i, tt)))

        eng.schedule_after(100, flood)  # heap tier (>= RING_SPAN)
        eng.run()
        assert seen == [(i, 100) for i in range(5)]

    def test_cancel_bucketed_event_before_its_cycle(self):
        eng = SimEngine()
        seen = []
        tok = eng.schedule_after(3, seen.append)  # ring tier
        eng.schedule_after(5, seen.append)
        assert eng.pending() == 2
        tok.cancel()
        assert eng.pending() == 1
        eng.run()
        assert seen == [5]

    def test_cancel_bucketed_event_same_cycle_mid_drain(self):
        # First event at t cancels its same-cycle sibling: the corpse
        # must be skipped even though it is already in the bucket.
        eng = SimEngine()
        seen = []
        holder = {}
        eng.schedule_after(4, lambda t: holder["tok"].cancel())
        holder["tok"] = eng.schedule_after(4, seen.append)
        eng.schedule_after(4, lambda t: seen.append("third"))
        eng.run()
        assert seen == ["third"]
        assert eng.pending() == 0

    def test_cancel_fired_token_is_noop(self):
        # Tokens are consumed on fire; a late cancel must not corrupt
        # the live count.
        eng = SimEngine()
        tok = eng.schedule_after(1, lambda t: None)
        eng.schedule_after(2, lambda t: None)
        eng.step()
        tok.cancel()  # already fired
        assert eng.pending() == 1
        eng.run()
        assert eng.pending() == 0

    def test_run_until_truncation_with_ring_events(self):
        # Ring events beyond the cutoff survive a truncated run and a
        # follow-up schedule_after anchors at the cutoff.
        eng = SimEngine()
        seen = []
        for d in (1, 5, 9, 13):
            eng.schedule_after(d, seen.append)
        eng.run(until=6)
        assert seen == [1, 5]
        assert eng.now == 6
        assert eng.pending() == 2
        eng.schedule_after(1, seen.append)
        eng.run()
        assert seen == [1, 5, 7, 9, 13]

    def test_budget_enforced_on_nocancel_path(self):
        from repro.common.errors import EventBudgetError

        eng = SimEngine(max_events=10)

        def chain(t):
            eng.schedule_after_nocancel(1, chain)

        eng.schedule_after_nocancel(0, chain)
        with pytest.raises(EventBudgetError):
            eng.run()
        # The over-budget event is counted (then refused) — same
        # accounting as the token path.
        assert eng.events_processed == 11

    def test_budget_enforced_on_heap_fast_path(self):
        from repro.common.errors import EventBudgetError

        eng = SimEngine(max_events=5)

        def chain(t):
            eng.schedule_after_nocancel(100, chain)  # heap tier

        eng.schedule_after_nocancel(100, chain)
        with pytest.raises(EventBudgetError):
            eng.run()
        assert eng.events_processed == 6

    def test_pending_excludes_cancelled_events(self):
        eng = SimEngine()
        toks = [eng.schedule_after(70 + i, lambda t: None) for i in range(8)]
        assert eng.pending() == 8
        for tok in toks[:5]:
            tok.cancel()
        assert eng.pending() == 3
        assert eng.resident() == 8  # corpses still physically queued
        eng.run()
        assert eng.pending() == 0
        assert eng.resident() == 0

    def test_heap_compaction_on_cancellation_storm(self):
        from repro.sim.engine import _COMPACT_MIN

        eng = SimEngine()
        keep = []
        toks = []
        for i in range(2 * _COMPACT_MIN):
            toks.append(
                eng.schedule_after(1000 + i, keep.append)
            )
        for tok in toks[: 2 * _COMPACT_MIN - 10]:
            tok.cancel()
        assert eng.heap_compactions >= 1
        assert eng.resident() < 2 * _COMPACT_MIN
        eng.run()
        assert len(keep) == 10

    def test_virtual_delay_orders_before_plain_same_cycle(self):
        # An event with an earlier virtual allocation time fires before
        # a same-cycle event allocated (for real) in between.
        eng = SimEngine()
        seen = []
        eng.schedule(10, lambda t: None)
        eng.run()  # now = 10
        eng.schedule_after_virtual(5, lambda t: seen.append("early-v"), -3)
        eng.schedule_after(5, lambda t: seen.append("plain"))
        eng.run()
        assert seen == ["early-v", "plain"]
        # vtime may not exceed fire time.
        with pytest.raises(SimulationError):
            eng.schedule_after_virtual(2, lambda t: None, 3)

    def test_ring_to_heap_boundary(self):
        from repro.sim.engine import RING_SPAN

        eng = SimEngine()
        seen = []
        eng.schedule_after(RING_SPAN - 1, seen.append)  # last ring slot
        eng.schedule_after(RING_SPAN, seen.append)  # first heap delay
        assert eng.ring_events == 1
        assert eng.heap_events == 1
        eng.run()
        assert seen == [RING_SPAN - 1, RING_SPAN]
