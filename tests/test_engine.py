"""Unit tests for the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import SimEngine


class TestScheduling:
    def test_fires_in_time_order(self):
        eng = SimEngine()
        order = []
        eng.schedule(30, lambda t: order.append(("c", t)))
        eng.schedule(10, lambda t: order.append(("a", t)))
        eng.schedule(20, lambda t: order.append(("b", t)))
        eng.run()
        assert order == [("a", 10), ("b", 20), ("c", 30)]

    def test_same_cycle_fifo(self):
        eng = SimEngine()
        order = []
        for name in "abc":
            eng.schedule(5, lambda t, n=name: order.append(n))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_schedule_after_relative(self):
        eng = SimEngine()
        seen = []
        eng.schedule(10, lambda t: eng.schedule_after(5, seen.append))
        eng.run()
        assert seen == [15]

    def test_rejects_past(self):
        eng = SimEngine()
        eng.schedule(10, lambda t: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule(5, lambda t: None)

    def test_rejects_negative_delay(self):
        eng = SimEngine()
        with pytest.raises(SimulationError):
            eng.schedule_after(-1, lambda t: None)

    def test_run_until_stops(self):
        eng = SimEngine()
        seen = []
        eng.schedule(10, seen.append)
        eng.schedule(20, seen.append)
        eng.run(until=15)
        assert seen == [10]
        assert eng.pending() == 1
        eng.run()
        assert seen == [10, 20]

    def test_run_until_advances_now_to_cutoff(self):
        # A truncated run ends at the truncation point, not at the last
        # processed event: time has observably passed up to `until`.
        eng = SimEngine()
        eng.schedule(10, lambda t: None)
        eng.schedule(20, lambda t: None)
        eng.run(until=15)
        assert eng.now == 15

    def test_run_until_empty_heap_advances_now(self):
        eng = SimEngine()
        eng.run(until=100)
        assert eng.now == 100

    def test_run_until_exact_event_time_runs_event(self):
        eng = SimEngine()
        seen = []
        eng.schedule(15, seen.append)
        eng.run(until=15)
        assert seen == [15]
        assert eng.now == 15

    def test_reschedule_after_truncated_run_anchors_at_cutoff(self):
        # schedule_after() issued after a truncated run must be relative
        # to the cutoff, so back-to-back run(until=...) windows compose.
        eng = SimEngine()
        seen = []
        eng.schedule(10, lambda t: None)
        eng.run(until=15)
        eng.schedule_after(5, seen.append)
        eng.run()
        assert seen == [20]
        assert eng.now == 20


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = SimEngine()
        seen = []
        token = eng.schedule(10, seen.append)
        eng.schedule(20, seen.append)
        token.cancel()
        eng.run()
        assert seen == [20]

    def test_cancel_is_idempotent(self):
        eng = SimEngine()
        token = eng.schedule(10, lambda t: None)
        token.cancel()
        token.cancel()
        eng.run()


class TestStepAndAccounting:
    def test_step_returns_false_when_empty(self):
        assert SimEngine().step() is False

    def test_step_processes_one(self):
        eng = SimEngine()
        seen = []
        eng.schedule(1, seen.append)
        eng.schedule(2, seen.append)
        assert eng.step()
        assert seen == [1]

    def test_events_processed_counter(self):
        eng = SimEngine()
        for i in range(5):
            eng.schedule(i, lambda t: None)
        eng.run()
        assert eng.events_processed == 5

    def test_now_tracks_last_event(self):
        eng = SimEngine()
        eng.schedule(42, lambda t: None)
        eng.run()
        assert eng.now == 42

    def test_event_budget_guards_livelock(self):
        eng = SimEngine(max_events=10)

        def respawn(t):
            eng.schedule_after(1, respawn)

        eng.schedule(0, respawn)
        with pytest.raises(SimulationError):
            eng.run()

    def test_events_scheduled_during_run(self):
        eng = SimEngine()
        seen = []

        def chain(t):
            seen.append(t)
            if t < 5:
                eng.schedule_after(1, chain)

        eng.schedule(0, chain)
        eng.run()
        assert seen == [0, 1, 2, 3, 4, 5]
