"""Deterministic fault injection: composable plans and the injector.

A :class:`FaultPlan` declares *what* to perturb — interconnect message
delay-jitter and duplication, dropped wake-up and NACK messages
(forcing the ``WaitWakeup``/``SelfRetryLater`` timeout paths), transient
core stalls, signature false-positive storms, and an adversarial
directory reject storm.  A :class:`FaultInjector` turns a plan plus a
run seed into the callable hooks the components consume; every draw
comes from a per-component :class:`~repro.common.rng.SplitMix64` seeded
through :func:`repro.common.rng.substream`, so a chaos run is exactly as
bit-reproducible as a clean one: same ``(seed, plan)`` → same events.

Hook points (wired by :meth:`FaultInjector.wire` from the Machine):

* ``NetworkModel.chaos`` — latency perturbation (jitter/duplication);
* ``WakeupTable.chaos_drop`` — wake-up message loss;
* ``BloomSignature.chaos_fp`` — spurious signature hits;
* ``MemorySystem.chaos`` — the directory reject storm;
* ``CPU._chaos`` — NACK loss, transient stalls, the bounded-retry
  escape hatch, and the (test-only) wake-up timeout kill switch.

The plans are *plans*, not mocks: the functional contract (every
transaction commits, the memory image matches, quiescence holds) must
survive any plan whose knobs leave a recovery path open — that is the
whole point of the chaos fuzz campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import SplitMix64, substream

#: Fault-plan knobs that are probabilities (validated to [0, 1]).
_PROB_FIELDS = (
    "msg_jitter_prob",
    "msg_duplicate_prob",
    "drop_wakeup_prob",
    "drop_nack_prob",
    "stall_prob",
    "sig_false_positive_prob",
    "reject_storm_prob",
)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, composable description of the injected faults.

    The default instance injects nothing — a machine armed with an empty
    plan behaves (and times) *identically* to one with no plan at all.
    """

    name: str = "none"

    # -- interconnect -------------------------------------------------
    #: Probability a message picks up extra delay, and its max (cycles).
    msg_jitter_prob: float = 0.0
    msg_jitter_max: int = 16
    #: Probability a message is duplicated: the receiver waits for the
    #: retransmission, doubling the delivery latency.
    msg_duplicate_prob: float = 0.0

    # -- wake-up / NACK delivery --------------------------------------
    #: Probability a wake-up message is lost (the parked requester must
    #: recover through its ``wakeup_timeout`` guard).
    drop_wakeup_prob: float = 0.0
    #: Probability a NACK (reject response) is lost: the requester never
    #: learns it was rejected and re-issues after ``nack_loss_delay``
    #: cycles — the SelfRetryLater-shaped timeout path.
    drop_nack_prob: float = 0.0
    nack_loss_delay: int = 2_000
    #: TEST ONLY: disable the parked requester's timeout guard so a lost
    #: wake-up genuinely strands it (used to provoke DeadlockError).
    disable_wakeup_timeout: bool = False

    # -- core ---------------------------------------------------------
    #: Probability of a transient core stall between program segments,
    #: and its maximum length (cycles).
    stall_prob: float = 0.0
    stall_max: int = 100

    # -- LLC signatures ------------------------------------------------
    #: Probability a signature membership test spuriously reports a hit
    #: (a Bloom false-positive storm; conservative, so always safe).
    sig_false_positive_prob: float = 0.0

    # -- directory ----------------------------------------------------
    #: Probability the directory NACKs a speculative (HTM-mode) request
    #: outright, regardless of actual conflicts.  Adversarial: with the
    #: escape hatch disabled and a retry-forever policy this livelocks —
    #: which is exactly what the watchdog exists to catch.
    reject_storm_prob: float = 0.0

    # -- escape hatch -------------------------------------------------
    #: Bounded-retry escape: after this many rejects within one
    #: transaction, further rejects abort the attempt (burning the
    #: Listing-1 retry budget) so the speculative path degrades to the
    #: lock/CGL fallback and the functional contract still holds.
    #: ``None`` disables the hatch.
    escape_rejects: Optional[int] = None

    def __post_init__(self) -> None:
        for fname in _PROB_FIELDS:
            v = getattr(self, fname)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{fname}={v} outside [0, 1]")
        for fname in ("msg_jitter_max", "nack_loss_delay", "stall_max"):
            if getattr(self, fname) < 0:
                raise ConfigError(f"{fname} must be non-negative")
        if self.escape_rejects is not None and self.escape_rejects < 1:
            raise ConfigError("escape_rejects must be >= 1 (or None)")

    @property
    def empty(self) -> bool:
        """True when the plan perturbs nothing at all."""
        return (
            all(getattr(self, f) == 0.0 for f in _PROB_FIELDS)
            and not self.disable_wakeup_timeout
            and self.escape_rejects is None
        )

    def compose(self, other: "FaultPlan", name: Optional[str] = None) -> "FaultPlan":
        """Merge two plans: max of probabilities/magnitudes, OR of flags.

        The escape hatch composes to the *tighter* (smaller) threshold.
        """
        if name is None:
            name = f"{self.name}+{other.name}"
        escapes = [
            e
            for e in (self.escape_rejects, other.escape_rejects)
            if e is not None
        ]
        return FaultPlan(
            name=name,
            msg_jitter_prob=max(self.msg_jitter_prob, other.msg_jitter_prob),
            msg_jitter_max=max(self.msg_jitter_max, other.msg_jitter_max),
            msg_duplicate_prob=max(
                self.msg_duplicate_prob, other.msg_duplicate_prob
            ),
            drop_wakeup_prob=max(
                self.drop_wakeup_prob, other.drop_wakeup_prob
            ),
            drop_nack_prob=max(self.drop_nack_prob, other.drop_nack_prob),
            nack_loss_delay=max(self.nack_loss_delay, other.nack_loss_delay),
            disable_wakeup_timeout=(
                self.disable_wakeup_timeout or other.disable_wakeup_timeout
            ),
            stall_prob=max(self.stall_prob, other.stall_prob),
            stall_max=max(self.stall_max, other.stall_max),
            sig_false_positive_prob=max(
                self.sig_false_positive_prob, other.sig_false_positive_prob
            ),
            reject_storm_prob=max(
                self.reject_storm_prob, other.reject_storm_prob
            ),
            escape_rejects=min(escapes) if escapes else None,
        )

    def __or__(self, other: "FaultPlan") -> "FaultPlan":
        return self.compose(other)

    def with_name(self, name: str) -> "FaultPlan":
        return replace(self, name=name)

    def describe(self) -> str:
        """One line naming the armed knobs (for reports and replay)."""
        active: List[str] = []
        for f in fields(self):
            if f.name == "name":
                continue
            v = getattr(self, f.name)
            default = f.default
            if v != default and f.name not in (
                "msg_jitter_max",
                "nack_loss_delay",
                "stall_max",
            ):
                active.append(f"{f.name}={v}")
        return f"{self.name}({', '.join(active) if active else 'empty'})"

    def injector(self, seed: int) -> "FaultInjector":
        """Build the deterministic injector for one run."""
        return FaultInjector(self, seed)


class FaultInjector:
    """Seeded runtime state of one chaos run's fault plan.

    One :class:`~repro.common.rng.SplitMix64` per component keeps the
    components' draws independent of each other's call volume; every
    stream derives from ``substream(seed, "chaos", plan.name, tag)`` so
    the whole injection schedule is a pure function of ``(seed, plan)``.
    """

    __slots__ = (
        "plan",
        "_net",
        "_wake",
        "_nack",
        "_stall",
        "_sig",
        "_storm",
        "jitter_events",
        "duplicated_messages",
        "wakeups_dropped",
        "nacks_dropped",
        "stalls_injected",
        "sig_false_positives",
        "storm_rejects",
        "escapes_taken",
    )

    def __init__(self, plan: FaultPlan, seed: int) -> None:
        self.plan = plan

        def stream(tag: str) -> SplitMix64:
            root = substream(seed, "chaos", plan.name, tag)
            return SplitMix64(int(root.integers(0, 1 << 63)))

        self._net = stream("net")
        self._wake = stream("wakeup")
        self._nack = stream("nack")
        self._stall = stream("stall")
        self._sig = stream("sig")
        self._storm = stream("storm")
        self.jitter_events = 0
        self.duplicated_messages = 0
        self.wakeups_dropped = 0
        self.nacks_dropped = 0
        self.stalls_injected = 0
        self.sig_false_positives = 0
        self.storm_rejects = 0
        self.escapes_taken = 0

    # -- wiring --------------------------------------------------------

    def wire(self, machine) -> None:
        """Attach this injector to a machine's component hook points."""
        machine.network.chaos = self.perturb_latency
        machine.wakeups.chaos_drop = self.drop_wakeup
        machine.memsys.chaos = self
        machine.memsys.of_rd_sig.chaos_fp = self.sig_false_positive
        machine.memsys.of_wr_sig.chaos_fp = self.sig_false_positive

    # -- component hooks ----------------------------------------------

    def perturb_latency(self, latency: int) -> int:
        """Interconnect hook: jitter and duplication on one message."""
        p = self.plan
        rng = self._net
        if rng.chance(p.msg_jitter_prob):
            latency += 1 + rng.below(max(1, p.msg_jitter_max))
            self.jitter_events += 1
        if rng.chance(p.msg_duplicate_prob):
            latency += latency
            self.duplicated_messages += 1
        return latency

    def drop_wakeup(self) -> bool:
        """Wake-up table hook: should this wake-up message be lost?"""
        if self._wake.chance(self.plan.drop_wakeup_prob):
            self.wakeups_dropped += 1
            return True
        return False

    def drop_nack(self) -> bool:
        """CPU hook: should this NACK response be lost in transit?"""
        if self._nack.chance(self.plan.drop_nack_prob):
            self.nacks_dropped += 1
            return True
        return False

    def stall(self) -> int:
        """CPU hook: transient stall (cycles) at a segment boundary."""
        p = self.plan
        if self._stall.chance(p.stall_prob):
            self.stalls_injected += 1
            return 1 + self._stall.below(max(1, p.stall_max))
        return 0

    def sig_false_positive(self) -> bool:
        """Signature hook: force a spurious membership hit?"""
        if self._sig.chance(self.plan.sig_false_positive_prob):
            self.sig_false_positives += 1
            return True
        return False

    def storm_reject(self) -> bool:
        """Directory hook: NACK this speculative request outright?"""
        if self._storm.chance(self.plan.reject_storm_prob):
            self.storm_rejects += 1
            return True
        return False

    def escape_exceeded(self, rejects_this_txn: int) -> bool:
        """CPU hook: has the bounded-retry escape threshold tripped?"""
        limit = self.plan.escape_rejects
        if limit is not None and rejects_this_txn > limit:
            self.escapes_taken += 1
            return True
        return False

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Injected-fault counters (for reports and assertions)."""
        return {
            "jitter_events": self.jitter_events,
            "duplicated_messages": self.duplicated_messages,
            "wakeups_dropped": self.wakeups_dropped,
            "nacks_dropped": self.nacks_dropped,
            "stalls_injected": self.stalls_injected,
            "sig_false_positives": self.sig_false_positives,
            "storm_rejects": self.storm_rejects,
            "escapes_taken": self.escapes_taken,
        }


# ----------------------------------------------------------------------
# Preset plans and the registry
# ----------------------------------------------------------------------


def delay_jitter(
    prob: float = 0.25, max_extra: int = 24, duplicate_prob: float = 0.05
) -> FaultPlan:
    """Interconnect chaos: late and duplicated messages."""
    return FaultPlan(
        name="jitter",
        msg_jitter_prob=prob,
        msg_jitter_max=max_extra,
        msg_duplicate_prob=duplicate_prob,
    )


def lossy_delivery(
    wakeup_drop: float = 0.5, nack_drop: float = 0.25
) -> FaultPlan:
    """Lost wake-ups and NACKs: exercises both timeout recovery paths."""
    return FaultPlan(
        name="lossy",
        drop_wakeup_prob=wakeup_drop,
        drop_nack_prob=nack_drop,
    )


def core_stalls(prob: float = 0.15, max_stall: int = 300) -> FaultPlan:
    """Transient per-core stalls (noisy-neighbour / DVFS glitches)."""
    return FaultPlan(name="stalls", stall_prob=prob, stall_max=max_stall)


def signature_storm(prob: float = 0.2) -> FaultPlan:
    """Bloom false-positive storm on the HTMLock overflow signatures."""
    return FaultPlan(name="sig-storm", sig_false_positive_prob=prob)


def nack_storm(prob: float = 0.2, escape: int = 4) -> FaultPlan:
    """Adversarial directory rejects, with the escape hatch armed so the
    speculative path degrades to the lock fallback instead of
    livelocking."""
    return FaultPlan(
        name="nack-storm", reject_storm_prob=prob, escape_rejects=escape
    )


def chaos_monkey() -> FaultPlan:
    """Everything at once, at survivable intensities."""
    plan = delay_jitter(prob=0.15, max_extra=16, duplicate_prob=0.03)
    plan = plan | lossy_delivery(wakeup_drop=0.3, nack_drop=0.15)
    plan = plan | core_stalls(prob=0.08, max_stall=150)
    plan = plan | signature_storm(prob=0.1)
    plan = plan | nack_storm(prob=0.05, escape=6)
    return plan.with_name("chaos-monkey")


_PLAN_BUILDERS = {
    "jitter": delay_jitter,
    "lossy": lossy_delivery,
    "stalls": core_stalls,
    "sig-storm": signature_storm,
    "nack-storm": nack_storm,
    "chaos-monkey": chaos_monkey,
}


def plan_names() -> List[str]:
    return sorted(_PLAN_BUILDERS)


def get_plan(name: str) -> FaultPlan:
    try:
        return _PLAN_BUILDERS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown fault plan {name!r}; choose from {plan_names()}"
        ) from None


def default_campaign() -> Tuple[FaultPlan, ...]:
    """The standard three-plan chaos campaign: interconnect chaos, lost
    control messages, and everything at once."""
    return (delay_jitter(), lossy_delivery(), chaos_monkey())
