"""Forward-progress watchdog: commit tracking with a stall horizon.

The engine's event budget is a blunt last-resort guard (200M events,
opaque error).  The watchdog is the structured alternative: the machine
samples global commit progress every ``check_every`` cycles, and when no
transaction anywhere has committed for ``horizon`` simulated cycles
while cores are still unfinished, it raises
:class:`~repro.common.errors.LivelockError` carrying per-core
diagnostics (transaction flag, retry budget, priority, parked state) and
the run's exact replay coordinates.

The watchdog is opt-in (``Machine(..., watchdog=WatchdogConfig(...))``)
so default runs schedule zero extra events — the zero-overhead-when-off
contract shared with fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CoreDiagnostic


@dataclass(frozen=True)
class WatchdogConfig:
    """Stall-detection parameters for one run.

    ``horizon`` is the commit-progress stall horizon in simulated
    cycles; it must comfortably exceed the longest legitimate commit gap
    of the workload (the default clears even pathological wake-up
    timeout chains).  ``check_every`` is the sampling period; 0 picks
    ``horizon // 4``.
    """

    horizon: int = 1_000_000
    check_every: int = 0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("watchdog horizon must be positive")
        if self.check_every < 0:
            raise ValueError("check_every must be non-negative")

    @property
    def period(self) -> int:
        return self.check_every or max(1, self.horizon // 4)


def diagnose_machine(machine) -> list:
    """Snapshot every core's progress state for a LivelockError."""
    now = machine.engine.now
    out = []
    for cpu in machine.cpus:
        tx = cpu.tx
        out.append(
            CoreDiagnostic(
                core=cpu.core,
                mode=tx.mode.name,
                aborted=tx.aborted,
                done=cpu.done,
                parked=cpu.is_parked,
                retries_left=cpu.retries_left,
                attempts=cpu.attempts_this_txn,
                priority=machine.memsys.priority_of(cpu.core, now),
                commits=machine.core_stats[cpu.core].commits,
            )
        )
    return out
