"""Fault injection, forward-progress watchdog, crash-tolerant harness.

The resilience subsystem answers "does the simulated machine — and the
experiment harness around it — keep its promises under adversity?"
Three layers, all deterministic and all zero-overhead when off:

* :mod:`repro.resilience.faults` — seedable, composable
  :class:`FaultPlan`\\ s injecting interconnect jitter/duplication, lost
  wake-up and NACK messages, transient core stalls, signature
  false-positive storms, and adversarial directory reject storms;
* :mod:`repro.resilience.watchdog` — per-run commit-progress tracking
  raising a structured ``LivelockError`` (per-core diagnostics + replay
  coordinates) instead of the opaque event-budget crash;
* :mod:`repro.resilience.harness` — per-run timeouts, bounded retries,
  quarantine and atomic JSON checkpointing for sweeps and multi-seed
  campaigns.

See ``docs/RESILIENCE.md`` for the guided tour.
"""

from repro.common.errors import (
    CoreDiagnostic,
    EventBudgetError,
    LivelockError,
    RunTimeoutError,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    chaos_monkey,
    core_stalls,
    default_campaign,
    delay_jitter,
    get_plan,
    lossy_delivery,
    nack_storm,
    plan_names,
    signature_storm,
)
from repro.resilience.watchdog import WatchdogConfig, diagnose_machine

__all__ = [
    "CoreDiagnostic",
    "EventBudgetError",
    "FaultInjector",
    "FaultPlan",
    "LivelockError",
    "RunTimeoutError",
    "WatchdogConfig",
    "chaos_monkey",
    "core_stalls",
    "default_campaign",
    "delay_jitter",
    "diagnose_machine",
    "get_plan",
    "lossy_delivery",
    "nack_storm",
    "plan_names",
    "signature_storm",
]
