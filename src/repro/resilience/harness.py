"""Crash-tolerant experiment harness: timeouts, retries, quarantine.

Long sweeps and multi-seed campaigns die in the worst way: hours in, one
cell hangs or crashes and everything already computed is lost.  This
module wraps the harness drivers with

* a per-run **wall-clock timeout** (``SIGALRM``-based, main thread only;
  a no-op elsewhere) raising
  :class:`~repro.common.errors.RunTimeoutError`,
* a bounded **retry policy** per cell,
* a **quarantine** list — cells that still fail after retries are
  recorded with their full replay coordinates instead of aborting the
  campaign, and
* an atomic **JSON checkpoint** so an interrupted campaign resumes from
  the last completed cell (serialized through
  :mod:`repro.harness.export`).

Entry points: :func:`run_sweep_resilient` (also reachable as
``Sweep.run_resilient``) and :func:`resilient_seed_runs` (also
``repro.harness.multiseed.multi_seed_runs_resilient``).
"""

from __future__ import annotations

import json
import os
import signal
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import ConfigError, RunTimeoutError
from repro.common.stats import RunStats
from repro.harness.export import (
    SCHEMA_VERSION,
    run_stats_from_dict,
    run_stats_to_dict,
)


def call_with_timeout(fn: Callable[[], object], timeout_s: Optional[float]):
    """Run ``fn`` under a wall-clock budget; raise RunTimeoutError late.

    Uses ``signal.setitimer`` and therefore only enforces the budget on
    the main thread of the main interpreter; elsewhere (or with no
    budget) it degrades to a plain call.
    """
    if not timeout_s or timeout_s <= 0:
        return fn()
    if threading.current_thread() is not threading.main_thread():
        return fn()  # SIGALRM cannot be delivered to worker threads

    def _on_alarm(signum, frame):
        raise RunTimeoutError(f"run exceeded {timeout_s}s wall clock")

    old_handler = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old_handler)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try one cell before quarantining it."""

    max_attempts: int = 2
    #: Wall-clock seconds per attempt; None disables the timeout.
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive (or None)")


@dataclass
class QuarantineRecord:
    """A cell that failed every attempt, with its replay coordinates."""

    label: str
    replay: Dict[str, object]
    error_type: str
    error: str
    attempts: int

    def render(self) -> str:
        return (
            f"{self.label}: {self.error_type} after {self.attempts} "
            f"attempt(s) — {self.error} | replay: {self.replay}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "replay": dict(self.replay),
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "QuarantineRecord":
        return cls(
            label=data["label"],
            replay=dict(data["replay"]),
            error_type=data["error_type"],
            error=data["error"],
            attempts=data["attempts"],
        )


class SweepCheckpoint:
    """Atomic JSON checkpoint of completed campaign cells.

    Completed cells are keyed by their point label and store the full
    serialized :class:`~repro.common.stats.RunStats`; quarantined cells
    are kept for reporting but are *retried* on resume (a transient
    failure deserves a fresh chance).  Writes go through a temp file +
    ``os.replace`` so a crash mid-save never corrupts the checkpoint.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._done: Dict[str, Dict] = {}
        self._quarantined: List[Dict] = []

    @classmethod
    def load(cls, path: str) -> "SweepCheckpoint":
        ckpt = cls(path)
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if data.get("schema") != SCHEMA_VERSION:
                raise ConfigError(
                    f"checkpoint schema {data.get('schema')!r} unsupported"
                )
            ckpt._done = dict(data.get("done", {}))
            ckpt._quarantined = list(data.get("quarantined", []))
        return ckpt

    def __len__(self) -> int:
        return len(self._done)

    def has(self, label: str) -> bool:
        return label in self._done

    def get(self, label: str) -> RunStats:
        return run_stats_from_dict(self._done[label])

    def put(
        self, label: str, stats: RunStats, meta: Optional[Dict] = None
    ) -> None:
        self._done[label] = run_stats_to_dict(stats, meta)

    def quarantine(self, record: QuarantineRecord) -> None:
        self._quarantined.append(record.to_dict())

    @property
    def quarantined(self) -> List[QuarantineRecord]:
        return [QuarantineRecord.from_dict(d) for d in self._quarantined]

    def save(self) -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "done": self._done,
            "quarantined": self._quarantined,
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, self.path)


def _attempt_cell(
    label: str,
    replay: Dict[str, object],
    run: Callable[[], RunStats],
    retry: RetryPolicy,
) -> "tuple[Optional[RunStats], Optional[QuarantineRecord]]":
    """Run one cell under the retry policy; (stats, None) on success."""
    last_exc: Optional[BaseException] = None
    for attempt in range(retry.max_attempts):
        try:
            return call_with_timeout(run, retry.timeout_s), None
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - quarantine, don't abort
            last_exc = exc
    return None, QuarantineRecord(
        label=label,
        replay=replay,
        error_type=type(last_exc).__name__,
        error=str(last_exc),
        attempts=retry.max_attempts,
    )


@dataclass
class ResilientSweepReport:
    """Outcome of a crash-tolerant campaign."""

    results: "object"  # SweepResults (typed loosely: no harness import)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    #: Cells served from the checkpoint instead of being re-run.
    resumed: int = 0
    executed: int = 0

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def render(self) -> str:
        lines = [
            f"resilient sweep: {len(self.results)} cell(s) complete "
            f"({self.resumed} resumed, {self.executed} executed), "
            f"{len(self.quarantined)} quarantined"
        ]
        lines.extend(f"  {q.render()}" for q in self.quarantined[:10])
        return "\n".join(lines)


def run_sweep_resilient(
    sweep,
    checkpoint_path: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    progress: Optional[Callable] = None,
    fault_plan=None,
    watchdog=None,
    cache=None,
) -> ResilientSweepReport:
    """Crash-tolerant version of :meth:`repro.harness.sweeps.Sweep.run`.

    Every cell runs under the retry policy; failures are quarantined
    with full replay coordinates instead of killing the campaign, and —
    with ``checkpoint_path`` — completed cells are persisted after each
    run so an interrupted campaign resumes where it stopped.  ``cache``
    additionally consults/fills the global run cache
    (:mod:`repro.harness.runcache`); it composes with the checkpoint —
    the checkpoint is this campaign's resume journal, the cache a memo
    shared across campaigns.  Fault-injected cells bypass the cache
    entirely: a chaos run is not the cell's true result.
    """
    from repro.harness.runcache import coerce_cache
    from repro.harness.sweeps import SweepRecord, SweepResults
    from repro.sim.runner import RunConfig, run_workload
    from repro.workloads.registry import get_workload

    retry = retry or RetryPolicy()
    ckpt = (
        SweepCheckpoint.load(checkpoint_path) if checkpoint_path else None
    )
    rc = coerce_cache(cache) if fault_plan is None else None
    records: List[SweepRecord] = []
    report = ResilientSweepReport(results=None)
    total = sweep.size()
    for i, point in enumerate(sweep.points()):
        label = point.label()
        if ckpt is not None and ckpt.has(label):
            records.append(SweepRecord(point, ckpt.get(label)))
            report.resumed += 1
            if progress is not None:
                progress(point, i + 1, total)
            continue
        if rc is not None:
            hit = rc.get_cell(
                point.workload,
                sweep.spec_resolver(point.system),
                sweep.params_by_tag[point.params_tag],
                point.threads,
                sweep.scale,
                point.seed,
            )
            if hit is not None:
                records.append(SweepRecord(point, hit))
                report.resumed += 1
                if ckpt is not None:
                    ckpt.put(label, hit)
                    ckpt.save()
                if progress is not None:
                    progress(point, i + 1, total)
                continue
        replay = {
            "workload": point.workload,
            "system": point.system,
            "threads": point.threads,
            "seed": point.seed,
            "params_tag": point.params_tag,
            "scale": sweep.scale,
            "fault_plan": fault_plan.name if fault_plan is not None else None,
        }

        def run_cell(p=point) -> RunStats:
            return run_workload(
                get_workload(p.workload),
                RunConfig(
                    spec=sweep.spec_resolver(p.system),
                    threads=p.threads,
                    scale=sweep.scale,
                    seed=p.seed,
                    params=sweep.params_by_tag[p.params_tag],
                    fault_plan=fault_plan,
                    watchdog=watchdog,
                ),
            )

        stats, quarantined = _attempt_cell(label, replay, run_cell, retry)
        report.executed += 1
        if stats is not None:
            records.append(SweepRecord(point, stats))
            if ckpt is not None:
                ckpt.put(label, stats, meta=replay)
                ckpt.save()
            if rc is not None:
                rc.put_cell(
                    point.workload,
                    sweep.spec_resolver(point.system),
                    sweep.params_by_tag[point.params_tag],
                    point.threads,
                    sweep.scale,
                    point.seed,
                    stats,
                )
        else:
            report.quarantined.append(quarantined)
            if ckpt is not None:
                ckpt.quarantine(quarantined)
                ckpt.save()
        if progress is not None:
            progress(point, i + 1, total)
    report.results = SweepResults(records)
    return report


def resilient_seed_runs(
    workload: str,
    system: str,
    threads: int,
    seeds: Sequence[int],
    scale: float = 0.25,
    params=None,
    retry: Optional[RetryPolicy] = None,
    checkpoint_path: Optional[str] = None,
    fault_plan=None,
    watchdog=None,
    cache=None,
) -> "tuple[List[RunStats], List[QuarantineRecord]]":
    """Crash-tolerant multi-seed runs (cf. ``multiseed.multi_seed_runs``).

    Returns the completed runs (in seed order, failed seeds omitted)
    and the quarantine list.  With ``checkpoint_path``, completed seeds
    persist across interruptions.  ``cache`` consults/fills the global
    run cache; fault-injected runs bypass it.
    """
    from repro.common.params import typical_params
    from repro.harness.runcache import coerce_cache
    from repro.harness.systems import get_system
    from repro.sim.runner import RunConfig, run_workload
    from repro.workloads.registry import get_workload

    retry = retry or RetryPolicy()
    ckpt = (
        SweepCheckpoint.load(checkpoint_path) if checkpoint_path else None
    )
    rc = coerce_cache(cache) if fault_plan is None else None
    run_params = params or typical_params()
    runs: List[RunStats] = []
    quarantined: List[QuarantineRecord] = []
    for seed in seeds:
        label = f"{workload}/{system}/t{threads}/s{seed}"
        if ckpt is not None and ckpt.has(label):
            runs.append(ckpt.get(label))
            continue
        if rc is not None:
            hit = rc.get_cell(
                workload, get_system(system), run_params, threads, scale, seed
            )
            if hit is not None:
                runs.append(hit)
                if ckpt is not None:
                    ckpt.put(label, hit)
                    ckpt.save()
                continue
        replay = {
            "workload": workload,
            "system": system,
            "threads": threads,
            "seed": seed,
            "scale": scale,
            "fault_plan": fault_plan.name if fault_plan is not None else None,
        }

        def run_cell(s=seed) -> RunStats:
            return run_workload(
                get_workload(workload),
                RunConfig(
                    spec=get_system(system),
                    threads=threads,
                    scale=scale,
                    seed=s,
                    params=run_params,
                    fault_plan=fault_plan,
                    watchdog=watchdog,
                ),
            )

        stats, record = _attempt_cell(label, replay, run_cell, retry)
        if stats is not None:
            runs.append(stats)
            if ckpt is not None:
                ckpt.put(label, stats, meta=replay)
                ckpt.save()
            if rc is not None:
                rc.put_cell(
                    workload,
                    get_system(system),
                    run_params,
                    threads,
                    scale,
                    seed,
                    stats,
                )
        else:
            quarantined.append(record)
            if ckpt is not None:
                ckpt.quarantine(record)
                ckpt.save()
    return runs, quarantined
