"""System model parameters (paper Table I) and the sensitivity configs.

The defaults mirror Table I of the paper:

===================  =================================================
Component            Value
===================  =================================================
Number of cores      32
Frequency            2 GHz (cycles are the simulation unit)
Core                 in-order, single-issue (CPI = 1 for compute)
Cache line           64 bytes
L1 I&D               private, 32 KB, 4-way, 2-cycle hit
L2 (LLC)             shared, 8 MB, 16-way, 12-cycle hit, inclusive
Memory               8 GB, 100-cycle latency
Coherence            MESI, directory based
Topology / routing   2-D mesh 4x8, X-Y
Flit / message       16 B flits; data = 5 flits, control = 1 flit
Link                 1 cycle / 1 flit per cycle
===================  =================================================

Section IV-B(e) additionally evaluates a *small* configuration (8 KB L1,
1 MB LLC) and a *large* one (128 KB L1, 32 MB LLC); helpers below build
those.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.common.types import LINE_SIZE


@dataclass(frozen=True)
class CacheParams:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    assoc: int
    hit_latency: int
    line_size: int = LINE_SIZE
    #: Tag/state array implementation: "reference" (the dict-of-LRU-
    #: lists model — the default: measured faster under CPython on
    #: eviction-light cells, see docs/PERFORMANCE.md PR 8) or "packed"
    #: (flat arena way slots + rank LRU, selectable for differential
    #: testing and eviction-heavy experiments).  See
    #: repro.coherence.cachearray.
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0:
            raise ValueError("cache size and associativity must be positive")
        if self.size_bytes % (self.assoc * self.line_size) != 0:
            raise ValueError(
                f"cache of {self.size_bytes} B is not divisible into "
                f"{self.assoc}-way sets of {self.line_size} B lines"
            )
        if self.backend not in ("packed", "reference"):
            raise ValueError(
                f"unknown cache backend {self.backend!r}; "
                "expected 'packed' or 'reference'"
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc

    def set_index(self, line: int) -> int:
        """Map a line address to its set (power-of-two fast path)."""
        return line % self.num_sets


@dataclass(frozen=True)
class NetworkParams:
    """2-D mesh network parameters (Table I bottom rows)."""

    mesh_cols: int = 4
    mesh_rows: int = 8
    link_latency: int = 1
    router_latency: int = 1
    flit_bytes: int = 16
    data_flits: int = 5
    control_flits: int = 1
    #: EXTENSION (off by default — see DESIGN.md "known simplifications"):
    #: model per-link occupancy along the X-Y route, serializing messages
    #: that share a directional link.  The ablation bench
    #: ``bench_ext_noc_contention.py`` verifies the paper-shape results
    #: are insensitive to this, justifying the hop-latency default.
    model_contention: bool = False

    @property
    def num_tiles(self) -> int:
        return self.mesh_cols * self.mesh_rows


@dataclass(frozen=True)
class MemoryParams:
    """Off-chip memory model."""

    size_bytes: int = 8 << 30
    latency: int = 100


@dataclass(frozen=True)
class HtmParams:
    """Best-effort HTM / fallback-path tunables (Listing 1 semantics)."""

    #: TME_MAX_RETRIES in Listing 1 — speculative attempts before falling
    #: back to the lock path.
    max_retries: int = 8
    #: Extra speculative retries granted after a *capacity* abort before
    #: taking the fallback path (elision handlers treat the capacity bit
    #: as near-deterministic and bail out quickly).
    capacity_retries: int = 1
    #: Fixed cost of a commit (publishing + set clear), cycles.
    commit_latency: int = 6
    #: Abort penalty: base + per-written-line restore (eager undo-log).
    abort_base_penalty: int = 20
    abort_per_write_penalty: int = 4
    #: Randomised exponential backoff cap applied between retries.
    backoff_base: int = 16
    backoff_cap: int = 1024
    #: Safety net for parked WaitWakeup requesters (lost-wakeup guard).
    wakeup_timeout: int = 50_000
    #: SelfRetryLater: pause before re-issuing a rejected request.
    retry_delay: int = 48
    #: Retry pause for a rejected *plain* (non-transactional) access.
    plain_retry_delay: int = 96
    #: Cost of taking an exception on a non-speculative path.
    trap_latency: int = 250
    #: Cost of xbegin/hlbegin-style mode entry at the core.
    xbegin_latency: int = 3
    #: Signature size (bits) for the two LLC overflow signatures (§III-B).
    signature_bits: int = 2048
    signature_hashes: int = 4


@dataclass(frozen=True)
class SystemParams:
    """Complete machine description (paper Table I)."""

    num_cores: int = 32
    l1: CacheParams = field(
        default_factory=lambda: CacheParams(32 * 1024, 4, 2)
    )
    #: Optional *private middle cache* — arms the MESI-Three-Level-HTM
    #: protocol the ARM team shipped in gem5 and §IV-A replaces with the
    #: streamlined two-level one.  Transactional data is then maintained
    #: in the middle cache (bigger capacity before overflow) at the cost
    #: of slower hits and the protocol's odd L1-flush-on-remote-load
    #: behaviour.  ``None`` (the default) is the paper's two-level model.
    l2private: Optional[CacheParams] = None
    llc: CacheParams = field(
        default_factory=lambda: CacheParams(8 * 1024 * 1024, 16, 12)
    )
    network: NetworkParams = field(default_factory=NetworkParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    htm: HtmParams = field(default_factory=HtmParams)

    def __post_init__(self) -> None:
        if self.num_cores > self.network.num_tiles:
            raise ValueError(
                f"{self.num_cores} cores do not fit on a "
                f"{self.network.mesh_cols}x{self.network.mesh_rows} mesh"
            )
        if (
            self.l2private is not None
            and self.l2private.size_bytes < self.l1.size_bytes
        ):
            raise ValueError(
                "private middle cache must be at least L1-sized (inclusive)"
            )

    def with_cache_backend(self, backend: str) -> "SystemParams":
        """Copy with every cache level's array backend replaced.

        The equivalence suite runs identical workloads on
        ``with_cache_backend("packed")`` vs the reference default and
        asserts bit-identical results.
        """
        return replace(
            self,
            l1=replace(self.l1, backend=backend),
            l2private=(
                replace(self.l2private, backend=backend)
                if self.l2private is not None
                else None
            ),
            llc=replace(self.llc, backend=backend),
        )


def typical_params(**overrides) -> SystemParams:
    """Table I configuration (32 KB L1 / 8 MB LLC)."""
    return replace(SystemParams(), **overrides) if overrides else SystemParams()


def small_cache_params(**overrides) -> SystemParams:
    """Sensitivity: 8 KB L1, 1 MB LLC (Fig. 13 'small')."""
    base = SystemParams(
        l1=CacheParams(8 * 1024, 4, 2),
        llc=CacheParams(1024 * 1024, 16, 12),
    )
    return replace(base, **overrides) if overrides else base


def large_cache_params(**overrides) -> SystemParams:
    """Sensitivity: 128 KB L1, 32 MB LLC (Fig. 13 'large')."""
    base = SystemParams(
        l1=CacheParams(128 * 1024, 4, 2),
        llc=CacheParams(32 * 1024 * 1024, 16, 12),
    )
    return replace(base, **overrides) if overrides else base


def three_level_params(**overrides) -> SystemParams:
    """The gem5 ARM MESI-Three-Level-HTM arrangement §IV-A starts from:
    Table-I L1 plus a private 128 KB, 8-way, 8-cycle middle cache that
    maintains the transactional data."""
    base = SystemParams(
        l2private=CacheParams(128 * 1024, 8, 8),
    )
    return replace(base, **overrides) if overrides else base
