"""Elementary typing vocabulary shared across the simulator.

Addresses are plain ``int`` byte addresses.  Cache lines are 64 bytes, so a
*line address* is the byte address right-shifted by :data:`LINE_SHIFT`.
Using bare integers (not wrapper classes) keeps the hot coherence paths
allocation-free, per the HPC guidance of vectorising and avoiding object
churn in inner loops.
"""

from __future__ import annotations

# Table I: cache line size is 64 bytes.
LINE_SIZE: int = 64
LINE_SHIFT: int = 6

#: Byte address within the simulated physical address space.
Address = int
#: Cache-line index (byte address >> LINE_SHIFT).
LineAddr = int
#: Index of a core / hardware thread (0-based).
CoreId = int
#: Simulated time in cycles.
Cycles = int


def line_of(addr: Address) -> LineAddr:
    """Return the cache-line index containing byte address ``addr``."""
    return addr >> LINE_SHIFT


def line_base(line: LineAddr) -> Address:
    """Return the first byte address of cache line ``line``."""
    return line << LINE_SHIFT


def same_line(a: Address, b: Address) -> bool:
    """True when the two byte addresses fall in the same cache line."""
    return (a >> LINE_SHIFT) == (b >> LINE_SHIFT)
