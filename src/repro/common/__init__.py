"""Shared foundations: addresses, parameters, RNG, statistics, errors."""

from repro.common.params import (
    CacheParams,
    MemoryParams,
    NetworkParams,
    SystemParams,
    large_cache_params,
    small_cache_params,
    typical_params,
)
from repro.common.types import (
    LINE_SHIFT,
    LINE_SIZE,
    Address,
    CoreId,
    LineAddr,
    line_of,
    line_base,
)

__all__ = [
    "Address",
    "CoreId",
    "LineAddr",
    "LINE_SHIFT",
    "LINE_SIZE",
    "line_of",
    "line_base",
    "CacheParams",
    "MemoryParams",
    "NetworkParams",
    "SystemParams",
    "typical_params",
    "small_cache_params",
    "large_cache_params",
]
