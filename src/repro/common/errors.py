"""Exception hierarchy for the simulator.

Simulator bugs (protocol invariant violations) are distinguished from
user errors (bad configuration) so tests can assert on the right class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """Invalid user-supplied configuration."""


class ProtocolInvariantError(ReproError):
    """A cache-coherence invariant (e.g. SWMR) was violated — a bug."""


class SimulationError(ReproError):
    """The simulation reached an impossible state (deadlock, lost core)."""


class DeadlockError(SimulationError):
    """No runnable events remain but cores have not finished."""


class EventBudgetError(SimulationError):
    """The engine processed more events than its configured budget.

    A blunt livelock guard: the event count keeps growing but the modeled
    system is (probably) not making forward progress.  The machine layer
    converts this into a structured :class:`LivelockError` carrying
    per-core diagnostics; the raw form only escapes from bare-engine use.
    """

    def __init__(self, max_events: int, now: int) -> None:
        self.max_events = max_events
        self.now = now
        super().__init__(
            f"event budget exceeded ({max_events}) at t={now}; "
            "likely a livelock in the modeled system"
        )


class RunTimeoutError(ReproError):
    """A harness-level wall-clock timeout expired around one run."""


@dataclass(frozen=True)
class CoreDiagnostic:
    """Per-core forward-progress snapshot attached to a LivelockError."""

    core: int
    mode: str          #: transaction flag (NONE/HTM/TL/STL/FALLBACK)
    aborted: bool
    done: bool
    parked: bool       #: waiting on a wake-up message
    retries_left: int
    attempts: int      #: aborted attempts of the current transaction
    priority: int      #: live user-defined priority (ARUSER)
    commits: int

    def render(self) -> str:
        flags = []
        if self.done:
            flags.append("done")
        if self.aborted:
            flags.append("aborted")
        if self.parked:
            flags.append("parked")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return (
            f"core {self.core}: mode={self.mode} commits={self.commits} "
            f"retries_left={self.retries_left} attempts={self.attempts} "
            f"priority={self.priority}{suffix}"
        )


class LivelockError(SimulationError):
    """Forward progress stopped while events kept firing.

    Raised by the machine's watchdog (no commit progress within the
    configured stall horizon) or when the raw event budget trips.  Unlike
    the opaque budget message it carries everything needed to debug and
    replay the stall: per-core diagnostics, the simulated time, the
    pending event count, and the exact replay coordinates of the run.
    """

    def __init__(
        self,
        reason: str,
        now: int,
        cores: List[CoreDiagnostic],
        replay: Dict[str, object],
        pending_events: int = 0,
    ) -> None:
        self.reason = reason
        self.now = now
        self.cores = list(cores)
        self.replay = dict(replay)
        self.pending_events = pending_events
        lines = [
            f"{reason} (t={now}, pending_events={pending_events})",
            f"replay: {self.replay}",
        ]
        lines.extend("  " + d.render() for d in self.cores)
        super().__init__("\n".join(lines))
