"""Exception hierarchy for the simulator.

Simulator bugs (protocol invariant violations) are distinguished from
user errors (bad configuration) so tests can assert on the right class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """Invalid user-supplied configuration."""


class ProtocolInvariantError(ReproError):
    """A cache-coherence invariant (e.g. SWMR) was violated — a bug."""


class SimulationError(ReproError):
    """The simulation reached an impossible state (deadlock, lost core)."""


class DeadlockError(SimulationError):
    """No runnable events remain but cores have not finished."""
