"""Execution statistics: time-breakdown categories and abort reasons.

The categories follow the paper exactly:

* Figs. 9/11 execution-time breakdown: ``htm``, ``aborted``, ``lock``,
  ``switchLock``, ``waitlock``, ``rollback``, ``non_tran``.
* Fig. 10 abort reasons: ``mc`` (conflict with an HTM transaction),
  ``lock`` (conflict with a TL/STL lock transaction), ``mutex``
  (fallback-lock induced), ``non_tran`` (conflict with a plain access),
  ``of`` (capacity overflow), ``fault`` (exception).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Tuple


class LatencyHistogram:
    """Streaming log2-bucketed latency histogram.

    O(1) memory regardless of sample count; bucket ``b`` counts samples
    with ``bit_length == b`` i.e. values in ``[2^(b-1), 2^b)``.  Quantile
    queries return the (conservative, upper) bucket boundary — exact
    enough for the "how long do transactions take to commit" question.
    """

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value}")
        b = value.bit_length()
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += value

    def merge(self, other: "LatencyHistogram") -> None:
        for b, n in other.buckets.items():
            self.buckets[b] = self.buckets.get(b, 0) + n
        self.count += other.count
        self.total += other.total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile_upper_bound(self, q: float) -> int:
        """Upper bucket boundary containing quantile ``q`` (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0
        target = q * self.count
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= target:
                return (1 << b) - 1 if b else 0
        return (1 << max(self.buckets)) - 1  # pragma: no cover

    def as_dict(self) -> Dict[str, object]:
        return {
            "buckets": dict(self.buckets),
            "count": self.count,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LatencyHistogram":
        h = cls()
        h.buckets = {int(k): v for k, v in data["buckets"].items()}
        h.count = data["count"]
        h.total = data["total"]
        return h


class TimeCat(str, Enum):
    """Execution-time breakdown categories (Figs. 9 and 11)."""

    HTM = "htm"
    ABORTED = "aborted"
    LOCK = "lock"
    SWITCH_LOCK = "switchLock"
    WAITLOCK = "waitlock"
    ROLLBACK = "rollback"
    NON_TRAN = "non_tran"


class AbortReason(str, Enum):
    """Transaction abort attribution (Fig. 10)."""

    CONFLICT_HTM = "mc"
    CONFLICT_LOCK = "lock"
    MUTEX = "mutex"
    CONFLICT_NON_TRAN = "non_tran"
    OVERFLOW = "of"
    FAULT = "fault"
    #: Explicit user abort (xabort outside the taxonomy; kept for debug).
    EXPLICIT = "explicit"


TIME_CATS: List[TimeCat] = list(TimeCat)
ABORT_REASONS: List[AbortReason] = list(AbortReason)


@dataclass
class CoreStats:
    """Per-core counters accumulated during one simulation run."""

    time: Dict[TimeCat, int] = field(
        default_factory=lambda: {c: 0 for c in TimeCat}
    )
    aborts: Dict[AbortReason, int] = field(
        default_factory=lambda: {r: 0 for r in AbortReason}
    )
    commits_htm: int = 0
    commits_lock: int = 0
    commits_switched: int = 0
    tx_attempts: int = 0
    fallback_entries: int = 0
    switch_attempts: int = 0
    switch_successes: int = 0
    rejects_received: int = 0
    rejects_issued: int = 0
    wakeups_sent: int = 0
    wakeup_timeouts: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    #: Hits in the private middle cache (MESI-Three-Level mode only).
    l2_hits: int = 0
    #: Wall-clock latency of committed critical sections (entry of the
    #: final successful attempt to commit completion).
    commit_latency_hist: LatencyHistogram = field(
        default_factory=LatencyHistogram
    )

    def add_time(self, cat: TimeCat, cycles: int) -> None:
        if cycles < 0:
            raise ValueError(f"negative time slice for {cat}: {cycles}")
        self.time[cat] += cycles

    @property
    def commits(self) -> int:
        return self.commits_htm + self.commits_lock + self.commits_switched

    @property
    def total_aborts(self) -> int:
        return sum(self.aborts.values())

    @property
    def commit_rate(self) -> float:
        """Committed attempts / all attempts (speculative and lock)."""
        if self.tx_attempts == 0:
            return 1.0
        return self.commits / self.tx_attempts

    def publish_telemetry(self, scope) -> None:
        """Publish this core's counters into a registry scope.

        ``scope`` is a :class:`repro.telemetry.registry.Scope` (duck-
        typed here to keep ``common`` free of telemetry imports).
        """
        for name in (
            "commits_htm",
            "commits_lock",
            "commits_switched",
            "tx_attempts",
            "fallback_entries",
            "switch_attempts",
            "switch_successes",
            "rejects_received",
            "rejects_issued",
            "wakeups_sent",
            "wakeup_timeouts",
            "loads",
            "stores",
            "l1_hits",
            "l1_misses",
            "l2_hits",
        ):
            scope.set(name, getattr(self, name))
        scope.set("commit_rate", self.commit_rate)
        for cat, cycles in self.time.items():
            scope.set(f"time.{cat.value}", cycles)
        for reason, count in self.aborts.items():
            scope.set(f"aborts.{reason.value}", count)
        scope.histogram("commit_latency").merge(self.commit_latency_hist)


@dataclass
class RunStats:
    """Whole-machine result of one run."""

    execution_cycles: int
    cores: List[CoreStats]
    sanity_failures: List[str] = field(default_factory=list)

    def time_breakdown(self) -> Dict[TimeCat, int]:
        out = {c: 0 for c in TimeCat}
        for cs in self.cores:
            for c, v in cs.time.items():
                out[c] += v
        return out

    def time_fractions(self) -> Dict[TimeCat, float]:
        bd = self.time_breakdown()
        total = sum(bd.values())
        if total == 0:
            return {c: 0.0 for c in TimeCat}
        return {c: v / total for c, v in bd.items()}

    def abort_breakdown(self) -> Dict[AbortReason, int]:
        out = {r: 0 for r in AbortReason}
        for cs in self.cores:
            for r, v in cs.aborts.items():
                out[r] += v
        return out

    def abort_fractions(self) -> Dict[AbortReason, float]:
        bd = self.abort_breakdown()
        total = sum(bd.values())
        if total == 0:
            return {r: 0.0 for r in AbortReason}
        return {r: v / total for r, v in bd.items()}

    @property
    def commits(self) -> int:
        return sum(cs.commits for cs in self.cores)

    @property
    def tx_attempts(self) -> int:
        return sum(cs.tx_attempts for cs in self.cores)

    @property
    def total_aborts(self) -> int:
        return sum(cs.total_aborts for cs in self.cores)

    @property
    def commit_rate(self) -> float:
        attempts = self.tx_attempts
        if attempts == 0:
            return 1.0
        return self.commits / attempts

    def merged(self) -> CoreStats:
        """Sum of all per-core stats (convenience for reporting)."""
        out = CoreStats()
        for cs in self.cores:
            for c in TimeCat:
                out.time[c] += cs.time[c]
            for r in AbortReason:
                out.aborts[r] += cs.aborts[r]
            out.commits_htm += cs.commits_htm
            out.commits_lock += cs.commits_lock
            out.commits_switched += cs.commits_switched
            out.tx_attempts += cs.tx_attempts
            out.fallback_entries += cs.fallback_entries
            out.switch_attempts += cs.switch_attempts
            out.switch_successes += cs.switch_successes
            out.rejects_received += cs.rejects_received
            out.rejects_issued += cs.rejects_issued
            out.wakeups_sent += cs.wakeups_sent
            out.wakeup_timeouts += cs.wakeup_timeouts
            out.loads += cs.loads
            out.stores += cs.stores
            out.l1_hits += cs.l1_hits
            out.l1_misses += cs.l1_misses
            out.l2_hits += cs.l2_hits
            out.commit_latency_hist.merge(cs.commit_latency_hist)
        return out


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's 'average speedup' aggregator."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    log_sum = 0.0
    import math

    for v in vals:
        log_sum += math.log(v)
    return math.exp(log_sum / len(vals))


def speedup(baseline_cycles: int, system_cycles: int) -> float:
    """Speedup of ``system`` relative to ``baseline`` (>1 means faster)."""
    if system_cycles <= 0:
        raise ValueError("system cycles must be positive")
    return baseline_cycles / system_cycles


def weighted_average(pairs: Iterable[Tuple[float, float]]) -> float:
    """Weighted mean of ``(value, weight)`` pairs.

    Used by the reporting layer to aggregate per-workload rates where
    equal weighting would misrepresent the population — e.g. a commit
    rate averaged across workloads weighted by each workload's
    transaction attempts.  Weights must be non-negative with a positive
    total.
    """
    total_w = 0.0
    acc = 0.0
    n = 0
    for value, weight in pairs:
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        acc += value * weight
        total_w += weight
        n += 1
    if n == 0:
        raise ValueError("weighted average of empty sequence")
    if total_w == 0:
        raise ValueError("weighted average with zero total weight")
    return acc / total_w
