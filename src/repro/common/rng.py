"""Deterministic random-number plumbing.

Every stochastic decision in the simulator (workload generation, backoff
jitter, fault injection) draws from a stream derived from a single run
seed, so a run is exactly reproducible from ``(system, workload, seed)``.
Sub-streams are split with stable string tags to keep component draws
independent of call order elsewhere.
"""

from __future__ import annotations

import zlib
from typing import Iterator

import numpy as np


def derive_seed(root_seed: int, *tags: object) -> int:
    """Derive a stable 63-bit child seed from ``root_seed`` and tags."""
    text = "|".join(str(t) for t in tags)
    mixed = zlib.crc32(text.encode("utf-8"))
    return ((root_seed * 0x9E3779B97F4A7C15) ^ (mixed * 0xBF58476D1CE4E5B9)) & (
        (1 << 63) - 1
    )


def substream(root_seed: int, *tags: object) -> np.random.Generator:
    """Return an independent numpy Generator for the tagged sub-stream."""
    return np.random.default_rng(derive_seed(root_seed, *tags))


class SplitMix64:
    """Tiny allocation-free PRNG for hot simulator paths (backoff jitter).

    numpy Generators cost a Python-call round trip per draw; this keeps a
    single int of state and inlines well in interpreted loops.
    """

    __slots__ = ("_state",)

    MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self._state = seed & self.MASK

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & self.MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self.MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self.MASK
        return z ^ (z >> 31)

    def below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` (bound >= 1)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def chance(self, prob: float) -> bool:
        """Bernoulli draw with probability ``prob``."""
        if prob <= 0.0:
            return False
        if prob >= 1.0:
            return True
        return self.next_u64() < prob * (1 << 64)

    def stream(self) -> Iterator[int]:
        while True:
            yield self.next_u64()
