"""LosaTM-SAFU — the state-of-the-art comparison system (Table II).

LosaTM (Fu, Wan & Han, TPDS 2022) is a scenario-awareness conflict
manager for best-effort HTM.  The paper compares against
**LosaTM-SAFU**: LosaTM *without* its false-sharing and
capacity-overflow optimizations (the false-sharing fix is orthogonal to
LockillerTM and the capacity optimization has narrow applicability).

What remains, per the paper's own description (§II and §IV-B(d)), is a
NACK-style conflict manager with a stall/wake-up resolution and a
*progression-based* priority — which this reproduction expresses
through the same recovery framework with:

* ``RequesterPolicy.WAIT_WAKEUP`` — LosaTM's wake-up mechanism solves
  "the problem of difficulty in determining the retry time";
* ``PriorityKind.PROGRESSION`` — priority grows with *elapsed time* in
  the attempt rather than committed instructions, the property the
  paper criticizes as less representative than insts-based priority;
* no HTMLock and no switchingMode — LosaTM keeps the classic exclusive
  fallback path, so the "unfair competition" scenario (fallback-lock
  storms) and overflow aborts remain, which is exactly where Fig. 12
  shows LockillerTM pulling ahead.

This is a re-implementation from the published description, not the
authors' gem5 code; DESIGN.md records the substitution.
"""

from __future__ import annotations

from repro.core.policies import PriorityKind, RequesterPolicy, SystemSpec

LOSATM_SAFU_SPEC = SystemSpec(
    name="LosaTM-SAFU",
    recovery=True,
    requester_policy=RequesterPolicy.WAIT_WAKEUP,
    priority_kind=PriorityKind.PROGRESSION,
)
