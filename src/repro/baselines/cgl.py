"""CGL — coarse-grained locking at transaction granularity (Table II).

The paper's reference point: the same source programs with the
enter/exit-critical-section functions overloaded to a single global
lock.  In this reproduction a ``Txn`` segment on a CGL machine acquires
the FIFO ticket lock, runs its ops non-speculatively, and releases —
waiting time is billed as ``waitlock`` and the critical section as
``lock``, matching the paper's breakdown categories.
"""

from __future__ import annotations

from repro.core.policies import SystemSpec

CGL_SPEC = SystemSpec(name="CGL", use_htm=False)
