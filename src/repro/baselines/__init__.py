"""Comparison systems: coarse-grained locking and LosaTM-SAFU."""

from repro.baselines.cgl import CGL_SPEC
from repro.baselines.losatm import LOSATM_SAFU_SPEC

__all__ = ["CGL_SPEC", "LOSATM_SAFU_SPEC"]
