"""STAMP-like transactional workloads (synthetic-equivalent kernels).

Each module documents which published STAMP characteristics it models
(transaction length, read/write-set size, contention, overflow and
exception proneness) and carries machine-checkable functional
invariants: all stores are additive, so the final memory image is an
interleaving-independent sum that the runner verifies after every run.
"""

from repro.workloads.base import (
    Workload,
    WorkloadBuild,
    expected_final_memory,
)
from repro.workloads.registry import (
    WORKLOADS,
    get_workload,
    workload_names,
)

__all__ = [
    "Workload",
    "WorkloadBuild",
    "expected_final_memory",
    "WORKLOADS",
    "get_workload",
    "workload_names",
]
