"""Shared helpers for composing transactional access mixes."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.htm.isa import Op, Txn, compute, fault, load, store


def make_txn(
    rng: np.random.Generator,
    reads: Sequence[int],
    writes: Sequence[Tuple[int, int]],
    pre_compute: int = 10,
    per_op_compute: int = 2,
    tag: str = "",
    fault_at: Optional[int] = None,
    fault_persistent: bool = False,
    rmw_pairs: Sequence[Tuple[int, int]] = (),
) -> Txn:
    """Build a transaction interleaving reads, writes and compute.

    ``reads`` are byte addresses; ``writes`` are (address, delta) pairs.
    The combined stream is shuffled so conflict windows are realistic.
    ``rmw_pairs`` are (address, delta) read-modify-writes whose load and
    store stay *adjacent* (an atomic counter / queue-pointer update —
    keeping them adjacent keeps the upgrade window tight, as real code
    does).  ``fault_at`` injects an exception before the op at that index
    of the combined stream.
    """
    ops: List[Op] = []
    if pre_compute > 0:
        ops.append(compute(pre_compute))
    stream: List[object] = [load(a) for a in reads] + [
        store(a, d) for a, d in writes
    ] + [("rmw", a, d) for a, d in rmw_pairs]
    if len(stream) > 1:
        order = rng.permutation(len(stream))
        stream = [stream[i] for i in order]
    for i, op in enumerate(stream):
        if fault_at is not None and i == fault_at:
            ops.append(fault(persistent=fault_persistent))
        if per_op_compute > 0:
            ops.append(compute(per_op_compute))
        if op[0] == "rmw":
            ops.append(load(op[1]))
            ops.append(store(op[1], op[2]))
        else:
            ops.append(op)
    if fault_at is not None and fault_at >= len(stream):
        ops.append(fault(persistent=fault_persistent))
    return Txn(ops, tag=tag)


def pick_lines(
    rng: np.random.Generator, universe: int, count: int
) -> np.ndarray:
    """``count`` distinct line indices out of ``universe``."""
    count = min(count, universe)
    if count * 3 < universe:
        # Rejection-free fast path for sparse picks.
        picks = rng.choice(universe, size=count, replace=False)
    else:
        picks = rng.permutation(universe)[:count]
    return picks


def zipf_line(rng: np.random.Generator, universe: int, skew: float) -> int:
    """A skew-controlled hot/cold line pick (bounded Zipf-ish)."""
    u = rng.random()
    idx = int(universe * (u ** (1.0 + skew)))
    return min(idx, universe - 1)
