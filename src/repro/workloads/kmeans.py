"""kmeans — clustering (STAMP); low- and high-contention variants.

Published profile: *very short* transactions updating one cluster
center each.  Contention is set by the number of clusters: the ``-``
(low) configuration spreads updates over many centers, the ``+`` (high)
configuration hammers a handful.  The paper reports kmeans+ reaching a
100% commit rate once HTMLock lets lock transactions coexist — its
transactions are short enough that the recovery mechanism alone resolves
essentially every conflict with a reject-and-wait instead of an abort.

Model: each transaction reads one private point line and adds into one
cluster-center line (read + write) plus a shared membership counter.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.htm.isa import Plain, Segment, compute, load
from repro.workloads.base import (
    Workload,
    interleave_warmup,
    private_line_addr,
    shared_line_addr,
)
from repro.workloads.mixes import make_txn


class KMeansWorkload(Workload):
    base_txs = 250
    clusters = 256

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        n_txs = self.txs_per_thread(scale)
        programs: List[List[Segment]] = []
        for t in range(threads):
            prog: List[Segment] = [interleave_warmup(t, rng)]
            for i in range(n_txs):
                # Distance computation over the private point: non-tx.
                prog.append(
                    Plain(
                        [
                            compute(int(rng.integers(30, 90))),
                            load(private_line_addr(t, i % 48)),
                        ]
                    )
                )
                center = int(rng.integers(0, self.clusters))
                counter = self.clusters + center
                prog.append(
                    make_txn(
                        rng,
                        reads=[],
                        writes=[],
                        rmw_pairs=[
                            (shared_line_addr(center), 1),
                            (shared_line_addr(counter), 1),
                        ],
                        pre_compute=4,
                        per_op_compute=1,
                        tag=f"{self.name}-{t}-{i}",
                    )
                )
            programs.append(prog)
        return programs


class KMeansLowWorkload(KMeansWorkload):
    name = "kmeans-"
    clusters = 256
    summary = "tiny txs over 256 cluster centers; low contention"


class KMeansHighWorkload(KMeansWorkload):
    name = "kmeans+"
    clusters = 16
    summary = "tiny txs over 16 cluster centers; high contention"
