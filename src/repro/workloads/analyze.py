"""Workload characterization: the statistics the paper's behaviour
depends on, computed directly from generated programs.

Used for calibration (do our kernels actually have STAMP-like shapes?)
and exposed to users building their own workloads: given a program and a
cache geometry, :func:`overflow_probability` predicts how often
best-effort HTM will take a capacity abort before ever simulating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.params import CacheParams
from repro.htm.isa import OP_FAULT, OP_STORE, Segment, Txn


@dataclass(frozen=True)
class TxnProfile:
    """Footprint statistics of one transaction."""

    ops: int
    read_lines: int
    write_lines: int
    footprint: int          # distinct lines touched
    shared_lines: int       # lines below the private region
    has_fault: bool


@dataclass
class WorkloadProfile:
    """Aggregate statistics over all transactions of a program set."""

    txns: List[TxnProfile]

    @property
    def count(self) -> int:
        return len(self.txns)

    def mean(self, attr: str) -> float:
        if not self.txns:
            return 0.0
        return sum(getattr(t, attr) for t in self.txns) / len(self.txns)

    def max(self, attr: str) -> int:
        if not self.txns:
            return 0
        return max(getattr(t, attr) for t in self.txns)

    @property
    def fault_fraction(self) -> float:
        if not self.txns:
            return 0.0
        return sum(t.has_fault for t in self.txns) / len(self.txns)

    def footprint_histogram(self, bucket: int = 16) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for t in self.txns:
            key = (t.footprint // bucket) * bucket
            hist[key] = hist.get(key, 0) + 1
        return dict(sorted(hist.items()))


PRIVATE_THRESHOLD = 0x1000_0000 >> 6  # line index of PRIVATE_BASE


def profile_txn(txn: Txn) -> TxnProfile:
    reads = txn.read_lines()
    writes = txn.write_lines()
    footprint = reads | writes
    return TxnProfile(
        ops=len(txn.ops),
        read_lines=len(reads),
        write_lines=len(writes),
        footprint=len(footprint),
        shared_lines=sum(1 for ln in footprint if ln < PRIVATE_THRESHOLD),
        has_fault=any(op[0] == OP_FAULT for op in txn.ops),
    )


def profile_programs(programs: Sequence[Sequence[Segment]]) -> WorkloadProfile:
    txns = [
        profile_txn(seg)
        for prog in programs
        for seg in prog
        if isinstance(seg, Txn)
    ]
    return WorkloadProfile(txns)


def overflow_probability(
    footprint_lines: int, cache: CacheParams
) -> float:
    """P(some cache set receives more distinct lines than its ways).

    Models the footprint as uniformly hashed into the cache's sets
    (random line addresses — the common case for our kernels) and
    applies a Poisson tail per set with a union bound refinement:
    ``1 - P(X <= assoc)^sets`` for ``X ~ Poisson(footprint/sets)``.
    """
    if footprint_lines <= cache.assoc:
        return 0.0
    lam = footprint_lines / cache.num_sets
    # P(X <= assoc) for Poisson(lam).
    p_ok = 0.0
    term = math.exp(-lam)
    for k in range(cache.assoc + 1):
        p_ok += term
        term *= lam / (k + 1)
    p_ok = min(1.0, p_ok)
    return 1.0 - p_ok**cache.num_sets


def contention_estimate(
    programs: Sequence[Sequence[Segment]], top: int = 5
) -> List[Tuple[int, int]]:
    """Hottest shared lines by static write frequency."""
    writes: Dict[int, int] = {}
    for prog in programs:
        for seg in prog:
            if not isinstance(seg, Txn):
                continue
            for op in seg.ops:
                if op[0] == OP_STORE:
                    line = op[1] >> 6
                    if line < PRIVATE_THRESHOLD:
                        writes[line] = writes.get(line, 0) + 1
    ranked = sorted(writes.items(), key=lambda kv: -kv[1])
    return ranked[:top]


def summarize(
    programs: Sequence[Sequence[Segment]], cache: CacheParams
) -> Dict[str, object]:
    """One-call characterization used by tests and the analyzer example."""
    prof = profile_programs(programs)
    mean_fp = prof.mean("footprint")
    return {
        "txns": prof.count,
        "mean_ops": prof.mean("ops"),
        "mean_footprint": mean_fp,
        "max_footprint": prof.max("footprint"),
        "fault_fraction": prof.fault_fraction,
        "overflow_probability": overflow_probability(
            int(round(mean_fp)), cache
        ),
        "hottest_lines": contention_estimate(programs),
    }
