"""vacation — travel reservation system (STAMP); low/high contention.

Published profile: medium transactions (tens of accesses) walking
red-black reservation tables.  The ``-`` (low) configuration queries a
wide table with mostly-read transactions; the ``+`` (high) configuration
narrows the table and raises the update fraction, producing frequent
conflicts and — under best-effort HTM — waves of fallback-lock
serialization that the HTMLock mechanism dissolves (Fig. 9 shows
vacation's waitlock time collapsing under LockillerTM-RWIL).

Model: per transaction, ``n_reads`` reads + ``n_writes`` writes over
``table_lines`` lines (relation tables for cars/flights/rooms laid out
consecutively), plus customer-record updates on a hotter sub-region.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.htm.isa import Plain, Segment, compute, load, store
from repro.workloads.base import (
    Workload,
    interleave_warmup,
    private_line_addr,
    shared_line_addr,
)
from repro.workloads.mixes import make_txn, pick_lines


class VacationWorkload(Workload):
    base_txs = 120
    table_lines = 16384
    customer_lines = 512
    n_reads = 14
    n_writes = 4

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        n_txs = self.txs_per_thread(scale)
        programs: List[List[Segment]] = []
        for t in range(threads):
            prog: List[Segment] = [interleave_warmup(t, rng)]
            for i in range(n_txs):
                plain_ops = [compute(int(rng.integers(50, 140)))]
                plain_ops.append(load(private_line_addr(t, i % 40)))
                if rng.random() < 0.06:
                    plain_ops.append(
                        load(
                            shared_line_addr(
                                int(rng.integers(0, self.table_lines))
                            )
                        )
                    )
                if rng.random() < 0.015:
                    plain_ops.append(
                        store(
                            shared_line_addr(
                                int(rng.integers(0, self.table_lines))
                            ),
                            1,
                        )
                    )
                prog.append(Plain(plain_ops))

                tbl = pick_lines(rng, self.table_lines, self.n_reads)
                reads = [shared_line_addr(int(x)) for x in tbl]
                wr = pick_lines(rng, self.table_lines, self.n_writes)
                writes = [(shared_line_addr(int(x)), 1) for x in wr]
                cust = self.table_lines + int(
                    rng.integers(0, self.customer_lines)
                )
                writes.append((shared_line_addr(cust), 1))
                prog.append(
                    make_txn(
                        rng,
                        reads,
                        writes,
                        pre_compute=int(rng.integers(10, 30)),
                        per_op_compute=2,
                        tag=f"{self.name}-{t}-{i}",
                    )
                )
            programs.append(prog)
        return programs


class VacationLowWorkload(VacationWorkload):
    name = "vacation-"
    table_lines = 16384
    customer_lines = 1024
    n_reads = 14
    n_writes = 4
    summary = "reservation tables, wide; medium txs, low contention"


class VacationHighWorkload(VacationWorkload):
    name = "vacation+"
    table_lines = 1024
    customer_lines = 128
    n_reads = 18
    n_writes = 7
    summary = "reservation tables, narrow; medium txs, high contention"
