"""labyrinth — maze routing (STAMP).

Published profile: *huge* read/write sets — each transaction privately
copies a large grid region, routes a path, then writes the path back.
The sets far exceed a 4-way private L1's capacity, so best-effort HTM
almost always aborts with a capacity overflow and serializes on the
fallback lock.  This is the showcase for HTMLock + switchingMode: the
overflowing transaction switches to STL mode, spills its sets into the
LLC signatures, keeps its work, and runs concurrently with everyone who
does not touch its path.

Model: per transaction, a long read sweep over the shared grid
(contiguous blocks, ~168 lines), a written-back path (~56 lines), plus
~80 private scratch lines, with heavy in-transaction compute.  Expected
footprint ≈ 300 lines -> overflow is essentially certain at 32 KB
(4-way, 128 sets) and absolutely certain at 8 KB.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.htm.isa import Plain, Segment, compute, load
from repro.workloads.base import (
    Workload,
    interleave_warmup,
    private_line_addr,
    shared_line_addr,
)
from repro.workloads.mixes import make_txn

GRID_LINES = 16384
READ_BLOCKS = 14
BLOCK_LEN = 12           # 168 read lines
PATH_LEN = 56            # written lines (subset of a read block area)
PRIVATE_SCRATCH = 80


class LabyrinthWorkload(Workload):
    name = "labyrinth"
    base_txs = 20
    summary = "maze routing; ~230-line tx footprints, overflow-bound"

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        n_txs = self.txs_per_thread(scale)
        programs: List[List[Segment]] = []
        for t in range(threads):
            prog: List[Segment] = [interleave_warmup(t, rng)]
            for i in range(n_txs):
                prog.append(Plain([compute(int(rng.integers(200, 500)))]))
                reads: List[int] = []
                for _ in range(READ_BLOCKS):
                    base = int(rng.integers(0, GRID_LINES - BLOCK_LEN))
                    reads.extend(
                        shared_line_addr(base + j) for j in range(BLOCK_LEN)
                    )
                path_base = int(rng.integers(0, GRID_LINES - PATH_LEN))
                writes = [
                    (shared_line_addr(path_base + j), 1)
                    for j in range(PATH_LEN)
                ]
                reads.extend(
                    private_line_addr(t, (i * 7 + j) % 256)
                    for j in range(PRIVATE_SCRATCH)
                )
                prog.append(
                    make_txn(
                        rng,
                        reads,
                        writes,
                        pre_compute=int(rng.integers(80, 200)),
                        per_op_compute=2,
                        tag=f"labyrinth-{t}-{i}",
                    )
                )
            programs.append(prog)
        return programs
