"""bayes — Bayesian network structure learning (STAMP).

The paper **excludes** bayes from its evaluation, citing its "known
unpredictable behavior and highly variable execution time" (§IV-A,
following π-TM).  We implement it anyway so the suite is complete, but
it is *not* registered in the paper sweep (``PAPER_ORDER``); run it
explicitly via ``get_workload("bayes")``.

Published profile: very long transactions with large, *highly variable*
read/write sets (adtree queries + dependency-graph edge insertion) and
high contention on the learner's task list.  The variability is the
defining trait — per-transaction footprints span two orders of
magnitude, so runs whipsaw between fully-speculative and fully-fallback
behaviour depending on the interleaving.

Model: transaction footprints drawn from a heavy-tailed (log-uniform)
distribution between 4 and ~320 lines over an 8192-line adtree region,
plus a hot task-list head and moderate per-op compute.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.htm.isa import Plain, Segment, compute
from repro.workloads.base import (
    Workload,
    interleave_warmup,
    private_line_addr,
    shared_line_addr,
)
from repro.workloads.mixes import make_txn, pick_lines

ADTREE_LINES = 8192
TASK_HEAD = ADTREE_LINES  # one hot line past the adtree
MIN_FOOTPRINT = 4
MAX_FOOTPRINT = 320


class BayesWorkload(Workload):
    name = "bayes"
    base_txs = 24
    summary = "structure learning; wildly variable tx footprints (excluded)"

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        n_txs = self.txs_per_thread(scale)
        programs: List[List[Segment]] = []
        log_lo = np.log(MIN_FOOTPRINT)
        log_hi = np.log(MAX_FOOTPRINT)
        for t in range(threads):
            prog: List[Segment] = [interleave_warmup(t, rng)]
            for i in range(n_txs):
                prog.append(Plain([compute(int(rng.integers(80, 400)))]))
                footprint = int(
                    round(np.exp(rng.uniform(log_lo, log_hi)))
                )
                n_writes = max(1, footprint // 4)
                picks = pick_lines(rng, ADTREE_LINES, footprint)
                reads = [shared_line_addr(int(x)) for x in picks]
                writes = [
                    (shared_line_addr(int(x)), 1)
                    for x in picks[:n_writes]
                ]
                reads.extend(
                    private_line_addr(t, (i * 3 + j) % 96)
                    for j in range(min(24, footprint))
                )
                prog.append(
                    make_txn(
                        rng,
                        reads,
                        writes,
                        rmw_pairs=[(shared_line_addr(TASK_HEAD), 1)],
                        pre_compute=int(rng.integers(20, 120)),
                        per_op_compute=2,
                        tag=f"bayes-{t}-{i}",
                    )
                )
            programs.append(prog)
        return programs
