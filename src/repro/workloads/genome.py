"""genome — gene sequencing (STAMP).

Published profile: moderate transaction lengths, moderate read/write
sets, *low* contention (hash-set segment deduplication followed by
Rabin-Karp style linking).  Transactions mostly insert into a large
shared hash table, so conflicts are rare but not negligible; best-effort
HTM does well, and the HTMLock mechanism removes the residual
serialization when an unlucky streak sends one thread to the fallback
path.

Model: each transaction probes ``TABLE_LINES`` hash-table lines (6
reads) and inserts (3 writes), with a little in-transaction compute.
Between transactions threads run private compute plus occasional plain
reads of the shared table (the barrier-phase accesses that produce the
paper's ``non_tran`` abort category).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.htm.isa import Plain, Segment, compute, load, store
from repro.workloads.base import (
    Workload,
    interleave_warmup,
    private_line_addr,
    shared_line_addr,
)
from repro.workloads.mixes import make_txn, pick_lines

TABLE_LINES = 4096
LINK_LINES = 2048


class GenomeWorkload(Workload):
    name = "genome"
    base_txs = 160
    summary = "hash-table segment dedup; moderate txs, low contention"

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        n_txs = self.txs_per_thread(scale)
        programs: List[List[Segment]] = []
        for t in range(threads):
            prog: List[Segment] = [interleave_warmup(t, rng)]
            for i in range(n_txs):
                # Non-transactional phase: private work + rare shared read.
                plain_ops = [compute(int(rng.integers(40, 120)))]
                for k in range(2):
                    plain_ops.append(load(private_line_addr(t, (i * 2 + k) % 64)))
                if rng.random() < 0.08:
                    plain_ops.append(
                        load(shared_line_addr(int(rng.integers(0, TABLE_LINES))))
                    )
                if rng.random() < 0.02:
                    plain_ops.append(
                        store(
                            shared_line_addr(int(rng.integers(0, TABLE_LINES))),
                            1,
                        )
                    )
                prog.append(Plain(plain_ops))

                probes = pick_lines(rng, TABLE_LINES, 6)
                inserts = pick_lines(rng, TABLE_LINES, 2)
                link = TABLE_LINES + int(rng.integers(0, LINK_LINES))
                reads = [shared_line_addr(int(x)) for x in probes]
                writes = [(shared_line_addr(int(x)), 1) for x in inserts]
                writes.append((shared_line_addr(link), 1))
                prog.append(
                    make_txn(
                        rng,
                        reads,
                        writes,
                        pre_compute=int(rng.integers(8, 24)),
                        per_op_compute=2,
                        tag=f"genome-{t}-{i}",
                    )
                )
            programs.append(prog)
        return programs
