"""ssca2 — scalable synthetic compact applications, kernel 1 (STAMP).

Published profile: *tiny* transactions (a couple of accesses adding a
node to a graph's adjacency arrays) over a very large structure — the
lowest-contention workload in the suite.  HTM shines here because the
coarse lock serializes millions of two-word critical sections; any HTM
variant should beat CGL by a wide margin and the LockillerTM mechanisms
are mostly idle.

Model: per transaction, one read + two writes at random lines of a
32768-line graph region; negligible in-transaction compute.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.htm.isa import Plain, Segment, compute, load
from repro.workloads.base import (
    Workload,
    interleave_warmup,
    private_line_addr,
    shared_line_addr,
)
from repro.workloads.mixes import make_txn

GRAPH_LINES = 32768


class Ssca2Workload(Workload):
    name = "ssca2"
    base_txs = 320
    summary = "graph construction; 3-access txs, minimal contention"

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        n_txs = self.txs_per_thread(scale)
        programs: List[List[Segment]] = []
        for t in range(threads):
            prog: List[Segment] = [interleave_warmup(t, rng)]
            for i in range(n_txs):
                prog.append(
                    Plain(
                        [
                            compute(int(rng.integers(15, 45))),
                            load(private_line_addr(t, i % 16)),
                        ]
                    )
                )
                a = int(rng.integers(0, GRAPH_LINES))
                b = int(rng.integers(0, GRAPH_LINES))
                reads = [shared_line_addr(a)]
                writes = [
                    (shared_line_addr(a), 1),
                    (shared_line_addr(b), 1),
                ]
                prog.append(
                    make_txn(
                        rng,
                        reads,
                        writes,
                        pre_compute=2,
                        per_op_compute=1,
                        tag=f"ssca2-{t}-{i}",
                    )
                )
            programs.append(prog)
        return programs
