"""Process-wide memoization of :class:`WorkloadBuild` objects.

A build is a pure function of ``(workload, threads, scale, seed)`` —
:meth:`Workload.build` derives its RNG substream from exactly those
coordinates — and nothing in the simulator mutates a build after
construction: programs are read-only op lists, ``expected`` is only read
by verification, and the per-segment burst plans the CPUs warm up are
idempotent memos on the segment objects.  So the same build can back
every cell of a sweep that shares its coordinates (every system of the
Table-II grid, for one), and ``make_txn``'s RNG stream runs once per
distinct key instead of once per cell.

Bit-identity of shared-vs-fresh builds is pinned by the golden
equivalence test.  The cache is per-process (sweep workers each warm
their own), bounded LRU so long multi-scale campaigns cannot grow it
without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.workloads.base import Workload, WorkloadBuild

#: Distinct (workload, threads, scale, seed) keys kept per process.
MAX_ENTRIES = 64


class BuildCache:
    """Bounded LRU of WorkloadBuilds with hit/miss accounting."""

    def __init__(self, max_entries: int = MAX_ENTRIES) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, WorkloadBuild]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(
        self, workload: Workload, threads: int, scale: float, seed: int
    ) -> WorkloadBuild:
        # Same numeric normalization as the run cache key: scale=1 and
        # scale=1.0 are the same build.
        key = (workload.name, int(threads), float(scale), int(seed))
        build = self._entries.get(key)
        if build is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return build
        self.misses += 1
        build = workload.build(threads, scale, seed)
        self._entries[key] = build
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return build

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide cache used by the runner when build sharing is on.
_SHARED: BuildCache = BuildCache()


def shared_builds() -> BuildCache:
    return _SHARED
