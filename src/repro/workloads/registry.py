"""Workload registry: the paper's STAMP selection (§IV-A).

Bayes is excluded (known unpredictable behaviour, as in the paper);
kmeans and vacation appear in low- and high-contention configurations.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.bayes import BayesWorkload
from repro.workloads.genome import GenomeWorkload
from repro.workloads.intruder import IntruderWorkload
from repro.workloads.kmeans import KMeansHighWorkload, KMeansLowWorkload
from repro.workloads.labyrinth import LabyrinthWorkload
from repro.workloads.ssca2 import Ssca2Workload
from repro.workloads.vacation import (
    VacationHighWorkload,
    VacationLowWorkload,
)
from repro.workloads.yada import YadaWorkload

WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        BayesWorkload(),  # implemented but excluded from the paper sweep
        GenomeWorkload(),
        IntruderWorkload(),
        KMeansHighWorkload(),
        KMeansLowWorkload(),
        LabyrinthWorkload(),
        Ssca2Workload(),
        VacationHighWorkload(),
        VacationLowWorkload(),
        YadaWorkload(),
    )
}

#: Paper presentation order (Figs. 1 and 7).  bayes is deliberately
#: absent — the paper excludes it (§IV-A) for its unpredictable
#: behaviour; it remains runnable via :func:`get_workload`.
PAPER_ORDER: List[str] = [
    "genome",
    "intruder",
    "kmeans+",
    "kmeans-",
    "labyrinth",
    "ssca2",
    "vacation+",
    "vacation-",
    "yada",
]

#: The high-contention subset the paper's extreme-scenario headline
#: numbers (7.79x / 6.73x) come from.
HIGH_CONTENTION: List[str] = ["intruder", "kmeans+", "vacation+"]


def workload_names() -> List[str]:
    return list(PAPER_ORDER)


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
