"""yada — Yet Another Delaunay Application (STAMP).

Published profile: long transactions with large read/write sets (cavity
re-triangulation) **and frequent exceptions** — the workload the paper
explicitly concedes: "except for the yada workload due to many
exceptions, which the best-effort HTM and LockillerTM do not support"
(§IV-B).  Most transactions either fault or overflow, so they execute on
the fallback path; LockillerTM's switchingMode still rescues the
overflow-only transactions (Fig. 11 shows yada's commit rate rising),
but faulting transactions roll back exactly as in best-effort HTM
because §III-C chooses not to support switching on exceptions.

Model: per transaction, ~48 reads + ~24 writes over an 8192-line mesh,
~40 private scratch lines (cache pressure -> occasional overflow at the
typical L1, pervasive at 8 KB), a 12% chance of a one-shot page fault
(resolved after the first trip) and a **70% chance of a persistent
fault** — cavity refinement allocates memory / re-balances structures in
ways that can never complete speculatively, modeling the paper's "many
exceptions, which the best-effort HTM and LockillerTM do not support".
With ~82% of transactions faulting, nearly all work lands on the
serialized fallback path *after a wasted speculative attempt* — which is
what makes yada the one workload where coarse-grained locking wins.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.htm.isa import Plain, Segment, compute
from repro.workloads.base import (
    Workload,
    interleave_warmup,
    private_line_addr,
    shared_line_addr,
)
from repro.workloads.mixes import make_txn, pick_lines

MESH_LINES = 8192
READS = 48
WRITES = 24
PRIVATE_SCRATCH = 40
FAULT_ONCE_P = 0.05
FAULT_PERSISTENT_P = 0.92
#: Cavity bases are drawn from a narrow active front of the mesh, so the
#: few transactions that do run speculatively also collide with the
#: fallback stream's writes (real Delaunay refinement works a frontier).
ACTIVE_FRONT_LINES = 1536


class YadaWorkload(Workload):
    name = "yada"
    base_txs = 32
    summary = "Delaunay refinement; big txs, many exceptions"

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        n_txs = self.txs_per_thread(scale)
        programs: List[List[Segment]] = []
        for t in range(threads):
            prog: List[Segment] = [interleave_warmup(t, rng)]
            for i in range(n_txs):
                prog.append(Plain([compute(int(rng.integers(100, 300)))]))
                # Cavity: a contiguous region plus scattered neighbours.
                base = int(rng.integers(0, ACTIVE_FRONT_LINES - 32))
                reads = [shared_line_addr(base + j) for j in range(32)]
                scattered = pick_lines(rng, MESH_LINES, READS - 32)
                reads.extend(shared_line_addr(int(x)) for x in scattered)
                writes = [
                    (shared_line_addr(base + j), 1) for j in range(WRITES)
                ]
                reads.extend(
                    private_line_addr(t, (i * 5 + j) % 128)
                    for j in range(PRIVATE_SCRATCH)
                )
                n_stream = len(reads) + len(writes)
                # Faults fire early: page faults / allocation happen on
                # first touch of the fresh cavity, so a doomed attempt
                # wastes little work and prefetches almost nothing.
                early = max(1, n_stream // 4)
                fault_at = None
                persistent = False
                roll = rng.random()
                if roll < FAULT_PERSISTENT_P:
                    fault_at = int(rng.integers(0, early))
                    persistent = True
                elif roll < FAULT_PERSISTENT_P + FAULT_ONCE_P:
                    fault_at = int(rng.integers(0, early))
                prog.append(
                    make_txn(
                        rng,
                        reads,
                        writes,
                        pre_compute=int(rng.integers(40, 120)),
                        per_op_compute=2,
                        tag=f"yada-{t}-{i}",
                        fault_at=fault_at,
                        fault_persistent=persistent,
                    )
                )
            programs.append(prog)
        return programs
