"""Workload framework: program generation plus functional verification.

A workload turns ``(threads, scale, seed)`` into one micro-op program
per thread.  Generation is fully deterministic from the seed.  Because
every ``STORE`` is an additive delta and the simulator guarantees each
transaction commits exactly once (speculatively, via HTMLock mode, or on
the fallback path), the final memory image must equal the sum of all
program deltas — :func:`expected_final_memory` computes it and the
runner asserts it.  Any lost or double-applied commit, broken isolation
window, or leaked speculative write shows up as a mismatch.

Address-space conventions
=========================

* shared structures start at :data:`SHARED_BASE`, laid out at cache-line
  granularity so contention is controlled by the generators (no
  accidental false sharing);
* per-thread private data lives at :data:`PRIVATE_BASE` + a per-thread
  stride, creating realistic cache pressure without conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.common.rng import substream
from repro.common.types import LINE_SIZE
from repro.htm.isa import OP_STORE, Plain, Segment

SHARED_BASE = 0x0010_0000
PRIVATE_BASE = 0x1000_0000
PRIVATE_STRIDE = 0x0100_0000


def shared_line_addr(index: int) -> int:
    """Byte address of shared line ``index`` (one word per line)."""
    return SHARED_BASE + index * LINE_SIZE

def private_line_addr(thread: int, index: int) -> int:
    return PRIVATE_BASE + thread * PRIVATE_STRIDE + index * LINE_SIZE


@dataclass
class WorkloadBuild:
    """Programs plus their pre-computed functional expectation."""

    name: str
    programs: List[List[Segment]]
    expected: Dict[int, int] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.expected:
            self.expected = expected_final_memory(self.programs)

    def verify(self, memory: Dict[int, int]) -> List[str]:
        """Compare the committed memory image against the expectation."""
        problems: List[str] = []
        for addr, want in self.expected.items():
            got = memory.get(addr, 0)
            if got != want:
                problems.append(
                    f"addr {addr:#x}: expected {want}, got {got}"
                )
                if len(problems) >= 10:
                    problems.append("... (more mismatches suppressed)")
                    return problems
        extra = set(memory) - set(self.expected)
        stray = [a for a in extra if memory[a] != 0]
        if stray:
            problems.append(
                f"{len(stray)} unexpected nonzero addresses, e.g. "
                f"{stray[0]:#x}={memory[stray[0]]}"
            )
        return problems


def expected_final_memory(programs: Sequence[Sequence[Segment]]) -> Dict[int, int]:
    """Interleaving-independent final image of all additive stores."""
    out: Dict[int, int] = {}
    for prog in programs:
        for seg in prog:
            for op in seg.ops:
                if op[0] == OP_STORE and op[2]:
                    out[op[1]] = out.get(op[1], 0) + op[2]
    return {a: v for a, v in out.items() if v != 0}


class Workload:
    """Base class; subclasses implement :meth:`_generate`."""

    #: Registry key and display name.
    name: str = "abstract"
    #: Transactions per thread at scale=1.0 (subclasses override).
    base_txs: int = 100
    #: One-line description of the modeled STAMP application.
    summary: str = ""

    def build(
        self, threads: int, scale: float = 1.0, seed: int = 0
    ) -> WorkloadBuild:
        if threads <= 0:
            raise ValueError("need at least one thread")
        if scale <= 0:
            raise ValueError("scale must be positive")
        rng = substream(seed, "workload", self.name, threads)
        programs = self._generate(threads, scale, rng)
        if len(programs) != threads:
            raise RuntimeError(
                f"{self.name}: generated {len(programs)} programs "
                f"for {threads} threads"
            )
        return WorkloadBuild(self.name, programs, meta=self.metadata())

    def txs_per_thread(self, scale: float) -> int:
        return max(1, int(round(self.base_txs * scale)))

    def metadata(self) -> Dict[str, object]:
        return {"name": self.name, "summary": self.summary}

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        raise NotImplementedError


def interleave_warmup(thread: int, rng: np.random.Generator) -> Plain:
    """A small staggered warm-up so threads do not start in lockstep."""
    from repro.htm.isa import compute

    jitter = 20 + 13 * thread + int(rng.integers(0, 40))
    return Plain([compute(jitter)])
