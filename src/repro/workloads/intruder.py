"""intruder — network intrusion detection (STAMP).

Published profile: **short transactions, high contention**.  Each
iteration of the real benchmark runs *three separate transactions*:

1. a tiny queue *pop* (read-modify-write of the shared queue head),
2. a medium fragment-reassembly *map* transaction (dictionary
   lookups/inserts), and
3. a tiny *push* of the decoded packet onto a second queue.

The hot queue pointers are held in a write set only for the few cycles
of the pop/push transactions, so the map work parallelizes while the
queue accesses serialize — under requester-wins the pop transactions
friendly-fire each other into the fallback path (the paper's motivating
pathology), which the recovery mechanism's insts-based priority turns
into clean reject-and-wait serialization.

Model: per iteration, a 3-op pop transaction on hot line 0 (sometimes
also line 1), a 9-access dictionary transaction over 512 lines with a
semi-hot counter, and (30% of iterations) a 2-op push transaction.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.htm.isa import Plain, Segment, compute, load
from repro.workloads.base import (
    Workload,
    interleave_warmup,
    private_line_addr,
    shared_line_addr,
)
from repro.workloads.mixes import make_txn, pick_lines

QUEUE_HEAD = 0
QUEUE_TAIL = 1
COUNTER_LINES = 8       # lines 2..9
DICT_BASE = 16
DICT_LINES = 512


class IntruderWorkload(Workload):
    name = "intruder"
    base_txs = 80  # iterations per thread; ~2.3 transactions each
    summary = "queue pop / map insert / queue push; high contention"

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        n_iters = self.txs_per_thread(scale)
        programs: List[List[Segment]] = []
        for t in range(threads):
            prog: List[Segment] = [interleave_warmup(t, rng)]
            for i in range(n_iters):
                # Capture/decode phase: private, non-transactional.
                plain_ops = [compute(int(rng.integers(90, 220)))]
                plain_ops.append(load(private_line_addr(t, i % 32)))
                if rng.random() < 0.05:
                    plain_ops.append(
                        load(
                            shared_line_addr(
                                DICT_BASE + int(rng.integers(0, DICT_LINES))
                            )
                        )
                    )
                prog.append(Plain(plain_ops))

                # (1) pop: a compact RMW of the queue head.
                prog.append(
                    make_txn(
                        rng,
                        reads=[],
                        writes=[],
                        rmw_pairs=[(shared_line_addr(QUEUE_HEAD), 1)],
                        pre_compute=2,
                        per_op_compute=1,
                        tag=f"intruder-pop-{t}-{i}",
                    )
                )

                # Decode between transactions.
                prog.append(Plain([compute(int(rng.integers(40, 110)))]))

                # (2) reassembly map: the medium transaction (the bulk of
                # the work, diluting queue-pointer pressure).
                dict_picks = pick_lines(rng, DICT_LINES, 12)
                reads = [
                    shared_line_addr(DICT_BASE + int(x))
                    for x in dict_picks[:8]
                ]
                writes = [
                    (shared_line_addr(DICT_BASE + int(x)), 1)
                    for x in dict_picks[8:12]
                ]
                counter = 2 + int(rng.integers(0, COUNTER_LINES))
                prog.append(
                    make_txn(
                        rng,
                        reads,
                        writes,
                        rmw_pairs=[(shared_line_addr(counter), 1)],
                        pre_compute=int(rng.integers(8, 24)),
                        per_op_compute=2,
                        tag=f"intruder-map-{t}-{i}",
                    )
                )

                # (3) push the decoded packet (30% of iterations).
                if rng.random() < 0.3:
                    prog.append(
                        make_txn(
                            rng,
                            reads=[],
                            writes=[],
                            rmw_pairs=[(shared_line_addr(QUEUE_TAIL), 1)],
                            pre_compute=2,
                            per_op_compute=1,
                            tag=f"intruder-push-{t}-{i}",
                        )
                    )
            programs.append(prog)
        return programs
