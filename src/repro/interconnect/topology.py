"""2-D mesh topology with X-Y (dimension-ordered) routing.

Tiles are numbered row-major on a ``cols x rows`` grid (Table I: 4x8).
Each tile hosts one core, its private L1, and one address-interleaved
bank of the shared LLC.  X-Y routing goes fully along X first, then
along Y; it is deadlock-free and deterministic, so the hop count between
two tiles is simply the Manhattan distance.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.common.errors import ConfigError
from repro.common.params import NetworkParams

#: Hop tables are pure geometry, so one table per (cols, rows) shape
#: serves every Machine ever built — sweeps construct thousands of
#: same-shaped topologies and the table build showed up in init profiles.
_HOPS_CACHE: dict = {}


class MeshTopology:
    """Geometry queries over the tiled mesh."""

    __slots__ = ("cols", "rows", "num_tiles", "max_hops", "_hops")

    def __init__(self, params: NetworkParams) -> None:
        if params.mesh_cols <= 0 or params.mesh_rows <= 0:
            raise ConfigError("mesh dimensions must be positive")
        self.cols = params.mesh_cols
        self.rows = params.mesh_rows
        n = self.cols * self.rows
        self.num_tiles = n
        #: Mesh diameter (corner to corner) — sizes latency memo tables.
        self.max_hops = (self.cols - 1) + (self.rows - 1)
        # Precompute the full hop matrix as one flat row-major table
        # (hops[src * n + dst]); n is small (32 tiles) and this removes
        # divmod — and one level of list indirection — from the
        # per-message hot path.  NetworkModel indexes it directly.
        table = _HOPS_CACHE.get((self.cols, self.rows))
        if table is None:
            table = [
                abs(a % self.cols - b % self.cols)
                + abs(a // self.cols - b // self.cols)
                for a in range(n)
                for b in range(n)
            ]
            _HOPS_CACHE[(self.cols, self.rows)] = table
        self._hops: List[int] = table

    def coords(self, tile: int) -> Tuple[int, int]:
        """(x, y) position of ``tile`` on the grid."""
        self._check(tile)
        return tile % self.cols, tile // self.cols

    def tile_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.cols and 0 <= y < self.rows):
            raise ConfigError(f"({x},{y}) outside {self.cols}x{self.rows} mesh")
        return y * self.cols + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop count between two tiles (X-Y route length).

        Hot path: called per message; bounds are enforced by the table
        lookup itself (IndexError on garbage), not re-checked.  Note
        ``src`` of garbage with small ``dst`` could alias a valid index;
        all call sites pass tile ids produced by the topology itself.
        """
        return self._hops[src * self.num_tiles + dst]

    def route(self, src: int, dst: int) -> List[int]:
        """The exact tile sequence an X-Y-routed message traverses."""
        self._check(src)
        self._check(dst)
        sx, sy = src % self.cols, src // self.cols
        dx, dy = dst % self.cols, dst // self.cols
        path = [src]
        x, y = sx, sy
        step = 1 if dx > sx else -1
        while x != dx:
            x += step
            path.append(y * self.cols + x)
        step = 1 if dy > sy else -1
        while y != dy:
            y += step
            path.append(y * self.cols + x)
        return path

    def home_tile(self, line: int) -> int:
        """LLC bank (tile) owning directory state for ``line``.

        Address-interleaved at line granularity, the standard tiled-CMP
        arrangement the paper assumes for its shared L2.
        """
        return line % self.num_tiles

    def neighbors(self, tile: int) -> Iterator[int]:
        x, y = self.coords(tile)
        if x > 0:
            yield tile - 1
        if x < self.cols - 1:
            yield tile + 1
        if y > 0:
            yield tile - self.cols
        if y < self.rows - 1:
            yield tile + self.cols

    def _check(self, tile: int) -> None:
        if not (0 <= tile < self.num_tiles):
            raise ConfigError(
                f"tile {tile} outside mesh of {self.num_tiles} tiles"
            )
