"""Coherence message vocabulary, including the paper's extensions.

The protocol-visible message types follow the MESI directory protocol
plus the LockillerTM additions of §III-A:

* ``NACK`` — the probed owner invalidated itself and tells the directory
  to source the data itself (Fig. 3 red path).
* ``REJECT`` — a data-less response telling the *requester* its request
  lost the priority comparison and was withdrawn (encodable on the ACE
  CRRESP signal per the paper).
* ``WAKEUP`` — retry notification sent at commit/abort time to cores that
  were previously rejected (ACE stash-like, AWSNOOP extension).

The timing model only needs each message's *class* (control vs data) to
price it in flits; the enum keeps protocol traces readable and lets
tests assert on the exact message mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class MessageClass(Enum):
    CONTROL = auto()
    DATA = auto()


class MsgType(Enum):
    # Requests (control)
    GETS = auto()
    GETM = auto()
    UPGRADE = auto()
    PUTM = auto()
    # Forwarded probes (control)
    FWD_GETS = auto()
    FWD_GETM = auto()
    INV = auto()
    # Responses
    DATA_EXCLUSIVE = auto()
    DATA_SHARED = auto()
    INV_ACK = auto()
    WB_ACK = auto()
    UNBLOCK = auto()
    # LockillerTM extensions (§III-A)
    NACK = auto()
    REJECT = auto()
    WAKEUP = auto()

    @property
    def msg_class(self) -> MessageClass:
        return MSG_CLASS[self]


#: Flat MsgType -> MessageClass table.  Hot paths (NetworkModel pricing)
#: index this directly instead of going through the ``msg_class``
#: property chain (descriptor lookup + enum membership test per call).
MSG_CLASS = {
    t: (
        MessageClass.DATA
        if t in (MsgType.DATA_EXCLUSIVE, MsgType.DATA_SHARED, MsgType.PUTM)
        else MessageClass.CONTROL
    )
    for t in MsgType
}


@dataclass(frozen=True)
class Message:
    """One protocol message; used for tracing and latency accounting."""

    mtype: MsgType
    src_tile: int
    dst_tile: int
    line: int
    #: User-defined priority payload (ARUSER field per §III-A); only
    #: meaningful on requests under the recovery mechanism.
    priority: int = 0
    requester: int = -1

    @property
    def msg_class(self) -> MessageClass:
        return self.mtype.msg_class
