"""On-chip interconnect: 2-D mesh topology, X-Y routing, latency model."""

from repro.interconnect.topology import MeshTopology
from repro.interconnect.network import NetworkModel
from repro.interconnect.message import MessageClass

__all__ = ["MeshTopology", "NetworkModel", "MessageClass"]
