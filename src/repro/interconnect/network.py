"""Latency model for the mesh interconnect.

A message crossing ``h`` hops with ``f`` flits on 1-flit/cycle links with
1-cycle routers costs::

    h * (link_latency + router_latency) + (f - 1)

i.e. store-and-forward per hop for the head flit plus pipeline
serialization for the body flits (wormhole tail latency).  Per DESIGN.md
we do not model link *contention*; directory-bank serialization (modeled
in the coherence layer) is the first-order queueing effect for STAMP on
32 cores.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.common.params import NetworkParams
from repro.interconnect.message import MessageClass, MsgType
from repro.interconnect.topology import MeshTopology


class NetworkModel:
    """Prices messages between tiles.

    Default mode is stateless hop-latency pricing.  With
    ``params.model_contention`` (extension), each directional link keeps
    a ``busy_until`` window and messages sharing a link serialize; the
    current simulation time is read from :attr:`clock` (wired by the
    Machine), so component call sites stay unchanged.
    """

    __slots__ = (
        "topology",
        "params",
        "_per_hop",
        "_data_tail",
        "_ctrl_tail",
        "messages_sent",
        "flits_sent",
        "hops_traversed",
        "clock",
        "_link_busy",
        "link_stalls",
        "chaos",
    )

    def __init__(self, topology: MeshTopology, params: NetworkParams) -> None:
        self.topology = topology
        self.params = params
        self._per_hop = params.link_latency + params.router_latency
        self._data_tail = params.data_flits - 1
        self._ctrl_tail = params.control_flits - 1
        self.messages_sent = 0
        self.flits_sent = 0
        self.hops_traversed = 0
        #: Simulation clock; wired by the Machine when contention
        #: modeling is armed (defaults to a constant 0 = relative time).
        self.clock: Optional[Callable[[], int]] = None
        self._link_busy: Dict[Tuple[int, int], int] = {}
        self.link_stalls = 0
        #: Fault-injection hook (latency -> perturbed latency); wired by
        #: the Machine when a FaultPlan is armed, else None (no cost).
        self.chaos: Optional[Callable[[int], int]] = None

    def latency(self, src_tile: int, dst_tile: int, msg_class: MessageClass) -> int:
        """Cycles for one message from ``src_tile`` to ``dst_tile``."""
        hops = self.topology.hops(src_tile, dst_tile)
        tail = (
            self._data_tail
            if msg_class is MessageClass.DATA
            else self._ctrl_tail
        )
        flits = tail + 1
        self.messages_sent += 1
        self.flits_sent += flits
        self.hops_traversed += hops
        if self.params.model_contention:
            lat = self._traverse(src_tile, dst_tile, flits, tail)
        elif hops == 0:
            # Local delivery still crosses the tile's router once.
            lat = self.params.router_latency + tail
        else:
            lat = hops * self._per_hop + tail
        if self.chaos is not None:
            lat = self.chaos(lat)
        return lat

    def _traverse(
        self, src_tile: int, dst_tile: int, flits: int, tail: int
    ) -> int:
        """Walk the X-Y route reserving each directional link."""
        now = self.clock() if self.clock is not None else 0
        if src_tile == dst_tile:
            return self.params.router_latency + tail
        t = now
        route = self.topology.route(src_tile, dst_tile)
        busy = self._link_busy
        for a, b in zip(route, route[1:]):
            key = (a, b)
            ready = busy.get(key, 0)
            if ready > t:
                self.link_stalls += 1
                t = ready
            # The link is occupied while all flits stream across it.
            busy[key] = t + flits * self.params.link_latency
            t += self._per_hop
        t += tail
        return max(1, t - now)

    def publish_telemetry(self, registry) -> None:
        """Publish NoC counters under ``noc.*`` / ``noc.link.X_Y.*``."""
        noc = registry.scope("noc")
        noc.set("messages_sent", self.messages_sent)
        noc.set("flits_sent", self.flits_sent)
        noc.set("hops_traversed", self.hops_traversed)
        noc.set("link_stalls", self.link_stalls)
        if self.messages_sent:
            noc.set(
                "mean_hops", self.hops_traversed / self.messages_sent
            )
        # Per-link occupancy exists only under contention modeling.
        for (a, b), busy_until in sorted(self._link_busy.items()):
            noc.set(f"link.{a}_{b}.busy_until", busy_until)

    def latency_for(self, src_tile: int, dst_tile: int, mtype: MsgType) -> int:
        return self.latency(src_tile, dst_tile, mtype.msg_class)

    def control_latency(self, src_tile: int, dst_tile: int) -> int:
        return self.latency(src_tile, dst_tile, MessageClass.CONTROL)

    def data_latency(self, src_tile: int, dst_tile: int) -> int:
        return self.latency(src_tile, dst_tile, MessageClass.DATA)

    def round_trip(self, a: int, b: int) -> int:
        """Control request + data response between two tiles."""
        return self.control_latency(a, b) + self.data_latency(b, a)
