"""Latency model for the mesh interconnect.

A message crossing ``h`` hops with ``f`` flits on 1-flit/cycle links with
1-cycle routers costs::

    h * (link_latency + router_latency) + (f - 1)

i.e. store-and-forward per hop for the head flit plus pipeline
serialization for the body flits (wormhole tail latency).  Per DESIGN.md
we do not model link *contention*; directory-bank serialization (modeled
in the coherence layer) is the first-order queueing effect for STAMP on
32 cores.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.common.params import NetworkParams
from repro.interconnect.message import MSG_CLASS, MessageClass, MsgType
from repro.interconnect.topology import MeshTopology


class NetworkModel:
    """Prices messages between tiles.

    Default mode is stateless hop-latency pricing.  With
    ``params.model_contention`` (extension), each directional link keeps
    a ``busy_until`` window and messages sharing a link serialize; the
    current simulation time is read from :attr:`clock` (wired by the
    Machine), so component call sites stay unchanged.
    """

    __slots__ = (
        "topology",
        "params",
        "_per_hop",
        "_data_tail",
        "_ctrl_tail",
        "_hops_table",
        "_n_tiles",
        "_stateless",
        "_lat_by_hops",
        "_ctrl_by_hops",
        "_data_by_hops",
        "messages_sent",
        "flits_sent",
        "hops_traversed",
        "clock",
        "_link_busy",
        "link_stalls",
        "chaos",
    )

    def __init__(self, topology: MeshTopology, params: NetworkParams) -> None:
        self.topology = topology
        self.params = params
        self._per_hop = params.link_latency + params.router_latency
        self._data_tail = params.data_flits - 1
        self._ctrl_tail = params.control_flits - 1
        # Flat hop table shared with the topology (one load instead of a
        # method call per message).
        self._hops_table = topology._hops
        self._n_tiles = topology.num_tiles
        #: No link contention is modeled — latency is a pure function of
        #: (hops, class), so it can be memoized once per geometry.
        self._stateless = not params.model_contention
        self._lat_by_hops = {
            cls: [
                (
                    params.router_latency + tail
                    if h == 0
                    else h * self._per_hop + tail
                )
                for h in range(topology.max_hops + 1)
            ]
            for cls, tail in (
                (MessageClass.CONTROL, self._ctrl_tail),
                (MessageClass.DATA, self._data_tail),
            )
        }
        # Direct per-class aliases: the dominant call sites know their
        # class statically, so they can skip the enum-keyed dict hop.
        self._ctrl_by_hops = self._lat_by_hops[MessageClass.CONTROL]
        self._data_by_hops = self._lat_by_hops[MessageClass.DATA]
        self.messages_sent = 0
        self.flits_sent = 0
        self.hops_traversed = 0
        #: Simulation clock; wired by the Machine when contention
        #: modeling is armed (defaults to a constant 0 = relative time).
        self.clock: Optional[Callable[[], int]] = None
        self._link_busy: Dict[Tuple[int, int], int] = {}
        self.link_stalls = 0
        #: Fault-injection hook (latency -> perturbed latency); wired by
        #: the Machine when a FaultPlan is armed, else None (no cost).
        self.chaos: Optional[Callable[[int], int]] = None

    def reset(self) -> None:
        """Zero counters and link state (machine-pool reuse).

        The latency tables are pure functions of (geometry, params) and
        survive; the wired :attr:`clock` closure stays valid because the
        pool reuses the engine object in place.
        """
        self.messages_sent = 0
        self.flits_sent = 0
        self.hops_traversed = 0
        self._link_busy.clear()
        self.link_stalls = 0
        self.chaos = None

    def latency(self, src_tile: int, dst_tile: int, msg_class: MessageClass) -> int:
        """Cycles for one message from ``src_tile`` to ``dst_tile``."""
        hops = self._hops_table[src_tile * self._n_tiles + dst_tile]
        if msg_class is MessageClass.DATA:
            tail = self._data_tail
        else:
            tail = self._ctrl_tail
        self.messages_sent += 1
        self.flits_sent += tail + 1
        self.hops_traversed += hops
        if self._stateless:
            # Memoized default path: latency is a pure (hops, class)
            # function when no contention or chaos is armed.
            lat = self._lat_by_hops[msg_class][hops]
            if self.chaos is None:
                return lat
            return self.chaos(lat)
        lat = self._traverse(src_tile, dst_tile, tail + 1, tail)
        if self.chaos is not None:
            lat = self.chaos(lat)
        return lat

    def _traverse(
        self, src_tile: int, dst_tile: int, flits: int, tail: int
    ) -> int:
        """Walk the X-Y route reserving each directional link."""
        now = self.clock() if self.clock is not None else 0
        if src_tile == dst_tile:
            return self.params.router_latency + tail
        t = now
        route = self.topology.route(src_tile, dst_tile)
        busy = self._link_busy
        for a, b in zip(route, route[1:]):
            key = (a, b)
            ready = busy.get(key, 0)
            if ready > t:
                self.link_stalls += 1
                t = ready
            # The link is occupied while all flits stream across it.
            busy[key] = t + flits * self.params.link_latency
            t += self._per_hop
        t += tail
        return max(1, t - now)

    def publish_telemetry(self, registry) -> None:
        """Publish NoC counters under ``noc.*`` / ``noc.link.X_Y.*``."""
        noc = registry.scope("noc")
        noc.set("messages_sent", self.messages_sent)
        noc.set("flits_sent", self.flits_sent)
        noc.set("hops_traversed", self.hops_traversed)
        noc.set("link_stalls", self.link_stalls)
        if self.messages_sent:
            noc.set(
                "mean_hops", self.hops_traversed / self.messages_sent
            )
        # Per-link occupancy exists only under contention modeling.
        for (a, b), busy_until in sorted(self._link_busy.items()):
            noc.set(f"link.{a}_{b}.busy_until", busy_until)

    def latency_for(self, src_tile: int, dst_tile: int, mtype: MsgType) -> int:
        return self.latency(src_tile, dst_tile, MSG_CLASS[mtype])

    def control_latency(self, src_tile: int, dst_tile: int) -> int:
        # Statically-classed twin of latency(): identical counter updates
        # and pricing, minus the per-call MessageClass dispatch.
        hops = self._hops_table[src_tile * self._n_tiles + dst_tile]
        self.messages_sent += 1
        self.flits_sent += self._ctrl_tail + 1
        self.hops_traversed += hops
        if self._stateless:
            lat = self._ctrl_by_hops[hops]
            if self.chaos is None:
                return lat
            return self.chaos(lat)
        lat = self._traverse(
            src_tile, dst_tile, self._ctrl_tail + 1, self._ctrl_tail
        )
        if self.chaos is not None:
            lat = self.chaos(lat)
        return lat

    def data_latency(self, src_tile: int, dst_tile: int) -> int:
        hops = self._hops_table[src_tile * self._n_tiles + dst_tile]
        self.messages_sent += 1
        self.flits_sent += self._data_tail + 1
        self.hops_traversed += hops
        if self._stateless:
            lat = self._data_by_hops[hops]
            if self.chaos is None:
                return lat
            return self.chaos(lat)
        lat = self._traverse(
            src_tile, dst_tile, self._data_tail + 1, self._data_tail
        )
        if self.chaos is not None:
            lat = self.chaos(lat)
        return lat

    def round_trip(self, a: int, b: int) -> int:
        """Control request + data response between two tiles."""
        return self.control_latency(a, b) + self.data_latency(b, a)
