"""The telemetry session facade: one object per observed run.

``Telemetry`` bundles a :class:`MetricsRegistry` and a
:class:`TimelineBuilder`, subscribes both to the machine's
:class:`~repro.telemetry.events.TelemetryHub`, and at ``finalize`` time
asks every component to publish its counters into the registry
(pull-model, so the simulator's hot paths carry no metric calls).
Typical use, via :func:`repro.sim.runner.run_workload`::

    tel = Telemetry()
    stats = run_workload(RunConfig(spec, 4, 0.05, seed=3,
                                   telemetry=tel))
    tel.registry.snapshot()      # flat {name: value}
    tel.trace_dict("intruder")   # Chrome trace-event JSON (Perfetto)

Constructing with ``enabled=False`` yields a fully inert session:
``attach`` is a no-op and the machine is never wrapped, which is the
golden-preserving default path.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.telemetry.chrometrace import chrome_trace, validate_chrome_trace
from repro.telemetry.events import TelemetryEvent, TelemetryHub
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sinks import write_json_atomic
from repro.telemetry.timeline import TimelineBuilder


class Telemetry:
    """Registry + timeline + hub subscriptions for one run."""

    def __init__(
        self,
        enabled: bool = True,
        timeline: bool = True,
        capacity: int = 200_000,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.timeline: Optional[TimelineBuilder] = (
            TimelineBuilder(capacity=capacity) if enabled and timeline else None
        )
        self._machine = None
        self._finalized = False

    # -- lifecycle -----------------------------------------------------

    def attach(self, machine) -> "Telemetry":
        """Wire this session to ``machine`` (idempotent per machine)."""
        if not self.enabled or self._machine is machine:
            return self
        if self._machine is not None:
            raise RuntimeError(
                "telemetry session already attached to another machine"
            )
        self._machine = machine
        hub = TelemetryHub.of(machine)
        hub.subscribe(self._count_event)
        if self.timeline is not None:
            self.timeline.attach(machine)
        return self

    def detach(self) -> None:
        if self._machine is None:
            return
        hub = TelemetryHub.of(self._machine)
        if self.timeline is not None:
            self.timeline.detach()
        hub.unsubscribe(self._count_event)
        self._machine = None

    def _count_event(self, ev: TelemetryEvent) -> None:
        self.registry.counter(f"events.{ev.kind.value}").inc()

    def finalize(self, stats=None, build=None) -> "Telemetry":
        """Pull component metrics into the registry; close the timeline.

        Call once after the run: ``stats`` is the finished
        :class:`~repro.common.stats.RunStats`, ``build`` the
        :class:`~repro.workloads.base.WorkloadBuild` (both optional —
        whatever is given gets published).  The machine stays attached
        until :meth:`detach`, so artifacts can still be rendered.
        """
        if not self.enabled or self._finalized:
            return self
        self._finalized = True
        machine = self._machine
        reg = self.registry
        end_time = None
        if stats is not None:
            end_time = stats.execution_cycles
        elif machine is not None:
            end_time = machine.engine.now
        if self.timeline is not None:
            self.timeline.close(end_time)
        if machine is not None:
            machine.publish_telemetry(reg)
        if stats is not None:
            run = reg.scope("run")
            run.set("execution_cycles", stats.execution_cycles)
            run.set("commits", stats.commits)
            run.set("tx_attempts", stats.tx_attempts)
            run.set("sanity_failures", len(stats.sanity_failures))
        if build is not None:
            wl = reg.scope("workload")
            wl.set("name", build.name)
            wl.set("programs", len(build.programs))
            for key, value in sorted(build.meta.items()):
                if isinstance(value, (bool, int, float, str)):
                    wl.set(f"meta.{key}", value)
        return self

    # -- artifacts -----------------------------------------------------

    def metrics_dict(self) -> Dict[str, object]:
        return self.registry.snapshot()

    def trace_dict(self, run_label: str = "repro") -> Dict[str, object]:
        if self.timeline is None:
            raise RuntimeError("telemetry session has no timeline")
        doc = chrome_trace(self.timeline, run_label=run_label)
        problems = validate_chrome_trace(doc)
        if problems:  # pragma: no cover - renderer bug guard
            raise AssertionError(
                f"generated invalid chrome trace: {problems[:3]}"
            )
        return doc

    def write_metrics(self, path: str) -> str:
        return write_json_atomic(path, self.metrics_dict(), indent=2)

    def write_trace(self, path: str, run_label: str = "repro") -> str:
        return write_json_atomic(path, self.trace_dict(run_label))


#: Disabled singleton: accepted anywhere ``telemetry=`` is, costs nothing.
NULL_TELEMETRY = Telemetry(enabled=False)
