"""repro.telemetry — observability for the simulator.

Four layers, composable a-la-carte:

- :mod:`repro.telemetry.registry` — hierarchical metrics (counters,
  gauges, log2 histograms) under dotted namespaces (``core.N.*``,
  ``dir.bank.N.*``, ``noc.link.X_Y.*``, ``htm.nack.*``, ``lock_tx.*``).
- :mod:`repro.telemetry.events` — the per-machine event bus
  (:class:`TelemetryHub`) that wraps lifecycle callbacks only while
  subscribers exist; canonical home of :class:`TraceEvent`.
- :mod:`repro.telemetry.timeline` — per-transaction span
  reconstruction; :mod:`repro.telemetry.chrometrace` renders spans as
  Chrome trace-event JSON for Perfetto.
- :mod:`repro.telemetry.sinks` — atomic JSON/JSONL artifact writers
  and runcache-sibling artifact paths.

:class:`Telemetry` (in :mod:`repro.telemetry.session`) is the facade
that `run_workload(RunConfig(..., telemetry=...))` consumes.  See
docs/OBSERVABILITY.md for the namespace catalog and overhead numbers.
"""

from repro.telemetry.chrometrace import (
    chrome_trace,
    timeline_summary_lines,
    validate_chrome_trace,
)
from repro.telemetry.events import TelemetryEvent, TelemetryHub, TraceEvent
from repro.telemetry.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
    Scope,
)
from repro.telemetry.session import NULL_TELEMETRY, Telemetry
from repro.telemetry.sinks import (
    ARTIFACT_SUFFIXES,
    artifact_path,
    read_jsonl,
    write_json_atomic,
    write_jsonl_atomic,
)
from repro.telemetry.timeline import TimelineBuilder, TxSpan

__all__ = [
    "ARTIFACT_SUFFIXES",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "Scope",
    "Telemetry",
    "TelemetryEvent",
    "TelemetryHub",
    "TimelineBuilder",
    "TraceEvent",
    "TxSpan",
    "artifact_path",
    "chrome_trace",
    "read_jsonl",
    "timeline_summary_lines",
    "validate_chrome_trace",
    "write_json_atomic",
    "write_jsonl_atomic",
]
