"""Hierarchical metrics registry: counters, gauges, log2 histograms.

The registry is the *pull* side of ``repro.telemetry``: components
publish their counters into per-component namespaces (``core.N.*``,
``dir.bank.N.*``, ``noc.link.X_Y.*``, ``htm.nack.*``, ``lock_tx.*``)
via dotted metric names, and sinks/CLI render or serialize the
resulting flat snapshot.  Histograms reuse
:class:`repro.common.stats.LatencyHistogram` (streaming log2 buckets,
O(1) memory) so per-core latency distributions merge for free.

Pay-for-what-you-use: a registry constructed with ``enabled=False``
(or the module singleton :data:`NULL_REGISTRY`) hands out one shared
no-op metric object — ``inc``/``set``/``record`` on it do nothing and
allocate nothing, so instrumented code can keep unconditional metric
calls without any per-event cost growth beyond a no-op method call.
Simulator hot paths go further and are not instrumented at all unless
a telemetry session is attached (see :mod:`repro.telemetry.events`),
which is what keeps the seed goldens bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.common.stats import LatencyHistogram


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def as_value(self):
        return self.value


class Gauge:
    """Last-written value (numbers or small JSON-able snapshots)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = None

    def set(self, value) -> None:
        self.value = value

    def as_value(self):
        return self.value


class _NullMetric:
    """Shared do-nothing stand-in for every metric kind.

    One instance serves a disabled registry's counters, gauges and
    histograms alike: all mutators are no-ops, so disabled telemetry
    performs zero allocation per event.
    """

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def record(self, value: int) -> None:
        pass

    def merge(self, other) -> None:
        pass

    def as_value(self):
        return None


NULL_METRIC = _NullMetric()

Metric = Union[Counter, Gauge, LatencyHistogram, _NullMetric]


def _hist_value(hist: LatencyHistogram) -> Dict[str, object]:
    return {
        "count": hist.count,
        "total": hist.total,
        "mean": hist.mean,
        "p50_ub": hist.quantile_upper_bound(0.5) if hist.count else 0,
        "p99_ub": hist.quantile_upper_bound(0.99) if hist.count else 0,
        "buckets": {str(k): v for k, v in sorted(hist.buckets.items())},
    }


class MetricsRegistry:
    """Flat name -> metric map with dotted-namespace conveniences."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    # -- creation ------------------------------------------------------

    def _get_or_create(self, name: str, cls):
        if not self.enabled:
            return NULL_METRIC
        if not name or name.startswith(".") or name.endswith("."):
            raise ValueError(f"bad metric name {name!r}")
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> LatencyHistogram:
        return self._get_or_create(name, LatencyHistogram)

    def set(self, name: str, value) -> None:
        """Shorthand: write ``value`` into gauge ``name``."""
        self.gauge(name).set(value)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self, prefix)

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def value(self, name: str):
        metric = self._metrics[name]
        if isinstance(metric, LatencyHistogram):
            return _hist_value(metric)
        return metric.as_value()

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def namespaces(self) -> List[str]:
        """Sorted set of first-level name components."""
        return sorted({n.split(".", 1)[0] for n in self._metrics})

    def query(self, prefix: str) -> Dict[str, object]:
        """Snapshot of every metric under ``prefix`` (dot-aware)."""
        dotted = prefix + "." if prefix and not prefix.endswith(".") else prefix
        return {
            n: self.value(n)
            for n in self.names()
            if n == prefix or n.startswith(dotted)
        }

    def snapshot(self) -> Dict[str, object]:
        """The full registry as one sorted, JSON-able dict."""
        return {n: self.value(n) for n in self.names()}

    def render(self, prefix: str = "", limit: Optional[int] = None) -> str:
        """Human-readable ``name value`` listing (for the CLI)."""
        items: Iterable[Tuple[str, object]] = (
            self.query(prefix) if prefix else self.snapshot()
        ).items()
        lines = []
        for name, value in items:
            if isinstance(value, dict):  # histogram summary
                value = (
                    f"n={value['count']} mean={value['mean']:.1f} "
                    f"p99<={value['p99_ub']}"
                )
            lines.append(f"  {name:<44s} {value}")
            if limit is not None and len(lines) >= limit:
                lines.append(f"  ... ({len(self._metrics)} metrics total)")
                break
        return "\n".join(lines)


class Scope:
    """A dotted-prefix view of a registry (hierarchical namespaces)."""

    __slots__ = ("_registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self.prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._name(name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._name(name))

    def histogram(self, name: str) -> LatencyHistogram:
        return self._registry.histogram(self._name(name))

    def set(self, name: str, value) -> None:
        self._registry.set(self._name(name), value)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self._registry, self._name(prefix))


#: Shared always-disabled registry: safe to publish into from anywhere.
NULL_REGISTRY = MetricsRegistry(enabled=False)
