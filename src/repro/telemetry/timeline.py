"""Transaction timeline reconstruction from lifecycle events.

Subscribes to the :class:`~repro.telemetry.events.TelemetryHub` and
folds the event stream into per-transaction **spans**: one
:class:`TxSpan` per critical-section attempt, from ``xbegin`` (or
irrevocable lock entry) through its NACKs, stalls, spills and wake-ups
to the commit or abort that closes it.  Spans carry the attempt's mode
trajectory (``htm``, ``htm->stl``, ``tl``, ``fallback``), outcome,
abort reason and the priority the conflict manager saw at close — the
per-cell "why" behind the paper's aggregate bars.

Alongside spans the builder samples two machine-level counter tracks at
span boundaries: the total transactional live set (lines pinned across
all cores) and the LLC overflow-signature fill, the two capacity
signals of the HTMLock mechanism.  Render everything with
:func:`repro.telemetry.chrometrace.chrome_trace` and load the JSON in
Perfetto or ``chrome://tracing``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import TelemetryEvent, TelemetryHub, TraceEvent

#: Span-boundary kinds that trigger a counter-track sample.
_SAMPLE_KINDS = (
    TraceEvent.TX_BEGIN,
    TraceEvent.LOCK_BEGIN,
    TraceEvent.TX_COMMIT,
    TraceEvent.TX_ABORT,
    TraceEvent.SPILL,
)


class TxSpan:
    """One critical-section attempt on one core."""

    __slots__ = (
        "core",
        "index",
        "start",
        "end",
        "mode",
        "switched",
        "outcome",
        "kind",
        "abort_reason",
        "nacks",
        "wakeups",
        "overflows",
        "spills",
        "priority",
        "marks",
    )

    def __init__(self, core: int, index: int, start: int, mode: str) -> None:
        self.core = core
        self.index = index
        self.start = start
        self.end: Optional[int] = None
        self.mode = mode
        self.switched = False
        #: "commit" | "abort" | "open" (never closed; truncated run).
        self.outcome = "open"
        #: Commit kind ("htm" / "lock" / "switched") when committed.
        self.kind: Optional[str] = None
        self.abort_reason: Optional[str] = None
        self.nacks = 0
        self.wakeups = 0
        self.overflows = 0
        self.spills = 0
        self.priority: Optional[int] = None
        #: (time, label) annotations inside the span (bounded).
        self.marks: List[Tuple[int, str]] = []

    @property
    def duration(self) -> int:
        end = self.end if self.end is not None else self.start
        return max(end - self.start, 0)

    def label(self) -> str:
        if self.outcome == "commit":
            return f"{self.mode} commit"
        if self.outcome == "abort":
            return f"{self.mode} abort:{self.abort_reason}"
        return f"{self.mode} (open)"

    def as_dict(self) -> Dict[str, object]:
        return {
            "core": self.core,
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "mode": self.mode,
            "switched": self.switched,
            "outcome": self.outcome,
            "kind": self.kind,
            "abort_reason": self.abort_reason,
            "nacks": self.nacks,
            "wakeups": self.wakeups,
            "overflows": self.overflows,
            "spills": self.spills,
            "priority": self.priority,
            "marks": [list(m) for m in self.marks],
        }


class TimelineBuilder:
    """Folds the telemetry event stream into spans + counter tracks."""

    #: Per-span annotation cap (runaway NACK storms stay bounded).
    MAX_MARKS_PER_SPAN = 64

    def __init__(self, capacity: int = 200_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.spans: List[TxSpan] = []
        #: Instant events outside any span (e.g. plain-access NACKs).
        self.instants: List[Tuple[int, int, str]] = []
        #: (time, live_set_lines, signature_bits_set) samples.
        self.counter_samples: List[Tuple[int, int, int]] = []
        self.dropped = 0
        self._open: Dict[int, TxSpan] = {}
        self._span_seq: Dict[int, int] = {}
        self._machine = None
        self._last_sample_time = -1

    # -- hub plumbing --------------------------------------------------

    def attach(self, machine) -> "TimelineBuilder":
        if self._machine is machine:
            return self
        if self._machine is not None:
            raise RuntimeError("timeline already attached to another machine")
        self._machine = machine
        TelemetryHub.of(machine).subscribe(self.handle)
        return self

    def detach(self) -> None:
        if self._machine is None:
            return
        TelemetryHub.of(self._machine).unsubscribe(self.handle)
        self._machine = None

    # -- event folding -------------------------------------------------

    def _begin(self, ev: TelemetryEvent, mode: str) -> None:
        prev = self._open.pop(ev.core, None)
        if prev is not None:
            # Defensive: a begin with a span still open closes it as-is.
            prev.end = ev.time
        seq = self._span_seq.get(ev.core, 0)
        self._span_seq[ev.core] = seq + 1
        span = TxSpan(ev.core, seq, ev.time, mode)
        self._open[ev.core] = span
        self._record(span)

    def _close(self, ev: TelemetryEvent, outcome: str) -> None:
        span = self._open.pop(ev.core, None)
        if span is None:
            return
        span.end = ev.time
        span.outcome = outcome
        if outcome == "commit":
            span.kind = ev.arg
        else:
            span.abort_reason = ev.arg
        machine = self._machine
        if machine is not None:
            span.priority = machine.memsys.priority_of(ev.core, ev.time)

    def _mark(self, span: TxSpan, time: int, label: str) -> None:
        if len(span.marks) < self.MAX_MARKS_PER_SPAN:
            span.marks.append((time, label))

    def _record(self, span: TxSpan) -> None:
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return
        self.spans.append(span)

    def handle(self, ev: TelemetryEvent) -> None:
        kind = ev.kind
        if kind is TraceEvent.TX_BEGIN:
            self._begin(ev, "htm")
        elif kind is TraceEvent.LOCK_BEGIN:
            self._begin(ev, ev.arg or "lock")
        elif kind is TraceEvent.TX_COMMIT:
            self._close(ev, "commit")
        elif kind is TraceEvent.TX_ABORT:
            self._close(ev, "abort")
        else:
            span = self._open.get(ev.core)
            if kind is TraceEvent.REJECT:
                if span is not None:
                    span.nacks += 1
                    self._mark(span, ev.time, f"nack by core{ev.arg}")
                else:
                    self._instant(ev.time, ev.core, f"nack by core{ev.arg}")
            elif kind is TraceEvent.WAKEUP:
                if span is not None:
                    span.wakeups += int(ev.arg or 0)
                self._instant(ev.time, ev.core, f"wakeup x{ev.arg}")
            elif kind is TraceEvent.OVERFLOW:
                if span is not None:
                    span.overflows += 1
                    self._mark(span, ev.time, f"overflow line={ev.line:#x}")
            elif kind is TraceEvent.SPILL:
                if span is not None:
                    span.spills += 1
                    self._mark(span, ev.time, f"spill line={ev.line:#x}")
            elif kind is TraceEvent.FALLBACK:
                self._instant(ev.time, ev.core, "fallback entry")
            elif kind is TraceEvent.SWITCH_OK:
                if span is not None:
                    span.switched = True
                    span.mode = "htm->stl"
                    self._mark(span, ev.time, "switched to STL")
            elif kind is TraceEvent.SWITCH_ATTEMPT:
                if span is not None:
                    self._mark(span, ev.time, "STL application denied")
        if kind in _SAMPLE_KINDS:
            self._sample(ev.time)

    def _instant(self, time: int, core: int, label: str) -> None:
        if len(self.instants) < self.capacity:
            self.instants.append((time, core, label))
        else:
            self.dropped += 1

    def _sample(self, time: int) -> None:
        machine = self._machine
        if machine is None or time == self._last_sample_time:
            return
        self._last_sample_time = time
        memsys = machine.memsys
        live = sum(
            len(tx.read_set) + len(tx.write_set) for tx in memsys.tx_states
        )
        sig = memsys.of_rd_sig.popcount + memsys.of_wr_sig.popcount
        if len(self.counter_samples) < self.capacity:
            self.counter_samples.append((time, live, sig))

    # -- finalization / queries ----------------------------------------

    def close(self, end_time: Optional[int] = None) -> None:
        """Close any still-open span (truncated or failed runs)."""
        for span in self._open.values():
            span.end = end_time if end_time is not None else span.start
        self._open.clear()

    def spans_for_core(self, core: int) -> List[TxSpan]:
        return [s for s in self.spans if s.core == core]

    def committed(self) -> List[TxSpan]:
        return [s for s in self.spans if s.outcome == "commit"]

    def aborted(self) -> List[TxSpan]:
        return [s for s in self.spans if s.outcome == "abort"]

    def cores(self) -> List[int]:
        return sorted({s.core for s in self.spans})

    def summary(self) -> Dict[str, object]:
        by_outcome: Dict[str, int] = {}
        for s in self.spans:
            by_outcome[s.outcome] = by_outcome.get(s.outcome, 0) + 1
        return {
            "spans": len(self.spans),
            "by_outcome": by_outcome,
            "nacks": sum(s.nacks for s in self.spans),
            "instants": len(self.instants),
            "counter_samples": len(self.counter_samples),
            "dropped": self.dropped,
        }

    def __len__(self) -> int:
        return len(self.spans)
