"""Render timelines as Chrome trace-event JSON (Perfetto-loadable).

Produces the "JSON Array Format" documented by the Chrome trace-event
spec: a ``{"displayTimeUnit": ..., "traceEvents": [...]}`` object whose
events carry ``ph`` (phase), ``ts`` (microsecond timestamp), ``pid``,
``tid``, ``name`` and, for complete events, ``dur``.  We map simulator
cycles 1:1 to microseconds (``displayTimeUnit: "ns"`` keeps Perfetto's
axis labels small) — absolute wall time is meaningless for a simulator,
relative placement is everything.

Track layout: one ``pid`` per machine, one ``tid`` per core (spans +
instant marks), plus counter tracks (``ph: "C"``) for machine-wide
live-set occupancy and overflow-signature fill.

:func:`validate_chrome_trace` is the schema check CI runs against the
emitted artifact; it accepts any document Perfetto would.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.timeline import TimelineBuilder

#: ph values of the trace-event spec that this module emits / accepts.
_KNOWN_PHASES = frozenset("XBEiICMbnesfOND()Pvc,t")


def _meta(pid: int, tid: int, name: str, arg: str) -> Dict[str, object]:
    return {
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "name": name,
        "args": {"name": arg},
    }


def chrome_trace(
    timeline: TimelineBuilder,
    run_label: str = "repro",
    pid: int = 1,
) -> Dict[str, object]:
    """Render a :class:`TimelineBuilder` as a Chrome trace document."""
    events: List[Dict[str, object]] = []
    events.append(_meta(pid, 0, "process_name", run_label))

    for core in timeline.cores():
        events.append(_meta(pid, core + 1, "thread_name", f"core {core}"))
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": core + 1,
                "ts": 0,
                "name": "thread_sort_index",
                "args": {"sort_index": core},
            }
        )

    for span in timeline.spans:
        tid = span.core + 1
        args: Dict[str, object] = {
            "mode": span.mode,
            "outcome": span.outcome,
            "index": span.index,
        }
        if span.kind is not None:
            args["commit_kind"] = span.kind
        if span.abort_reason is not None:
            args["abort_reason"] = span.abort_reason
        if span.priority is not None:
            args["priority"] = span.priority
        if span.nacks:
            args["nacks"] = span.nacks
        if span.wakeups:
            args["wakeups"] = span.wakeups
        if span.overflows:
            args["overflows"] = span.overflows
        if span.spills:
            args["spills"] = span.spills
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": span.start,
                # Perfetto rejects dur=0; clamp zero-length spans to 1.
                "dur": max(span.duration, 1),
                "name": span.label(),
                "cat": f"tx,{span.mode}",
                "args": args,
            }
        )
        for t, label in span.marks:
            events.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": tid,
                    "ts": t,
                    "name": label,
                    "s": "t",
                    "cat": "mark",
                }
            )

    for t, core, label in timeline.instants:
        events.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": core + 1,
                "ts": t,
                "name": label,
                "s": "t",
                "cat": "mark",
            }
        )

    for t, live, sig in timeline.counter_samples:
        events.append(
            {
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": t,
                "name": "live-set lines",
                "args": {"lines": live},
            }
        )
        events.append(
            {
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": t,
                "name": "signature fill",
                "args": {"bits": sig},
            }
        )

    events.sort(key=lambda e: (e["ts"], 0 if e["ph"] == "M" else 1))
    return {"displayTimeUnit": "ns", "traceEvents": events}


def validate_chrome_trace(doc) -> List[str]:
    """Validate a trace document; returns a list of problems (empty=ok).

    Checks the structural contract the Chrome trace-event JSON format
    requires: a ``traceEvents`` array, a ``displayTimeUnit`` of ``ms``
    or ``ns``, and per-event ``ph``/``pid``/``tid``/``ts`` fields with
    ``dur >= 0`` on complete (``X``) events.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    unit = doc.get("displayTimeUnit")
    if unit not in ("ms", "ns"):
        problems.append(f"displayTimeUnit {unit!r} not in ('ms', 'ns')")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["traceEvents missing or not an array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            problems.append(f"{where}: bad ph {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                problems.append(f"{where}: missing int {field}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event with bad dur {dur!r}")
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    return problems


def timeline_summary_lines(
    timeline: TimelineBuilder, limit: Optional[int] = 10
) -> List[str]:
    """Short human-readable digest of a timeline (for CLI stderr)."""
    s = timeline.summary()
    lines = [
        f"spans={s['spans']} outcomes={s['by_outcome']} "
        f"nacks={s['nacks']} samples={s['counter_samples']} "
        f"dropped={s['dropped']}"
    ]
    for span in timeline.spans[: limit or 0]:
        lines.append(
            f"  core{span.core} tx#{span.index} "
            f"[{span.start}, {span.end}] {span.label()}"
            + (f" nacks={span.nacks}" if span.nacks else "")
        )
    if limit is not None and len(timeline.spans) > limit:
        lines.append(f"  ... ({len(timeline.spans)} spans total)")
    return lines
