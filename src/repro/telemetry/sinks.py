"""Telemetry sinks: atomic JSON/JSONL artifact writers.

Mirrors the run-cache discipline (temp file + ``os.replace``; nothing
half-written ever lands under a final name) so telemetry artifacts can
sit next to runcache entries without risking the cache's crash-safety
story.  ``artifact_path`` maps a cell key to its sibling artifact
(``<key>.metrics.json`` / ``<key>.trace.json`` in the entry's shard
directory), which is what ``Sweep.rerun_with_telemetry`` uses.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional

from repro.harness.runcache import RunCache

#: Artifact kind -> filename suffix, used beside a runcache entry.
ARTIFACT_SUFFIXES = {
    "metrics": ".metrics.json",
    "trace": ".trace.json",
    "spans": ".spans.jsonl",
}


def write_json_atomic(path: str, doc, indent: Optional[int] = None) -> str:
    """Serialize ``doc`` to ``path`` atomically; returns ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, indent=indent)
            fh.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error path
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return path


def write_jsonl_atomic(path: str, rows: Iterable[Dict]) -> str:
    """Write one JSON object per line, atomically; returns ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True))
                fh.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error path
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return path


def read_jsonl(path: str) -> Iterable[Dict]:
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def artifact_path(cache: RunCache, key: str, kind: str) -> str:
    """Path of a telemetry artifact next to the cell's runcache entry."""
    try:
        suffix = ARTIFACT_SUFFIXES[kind]
    except KeyError:
        raise ValueError(
            f"unknown artifact kind {kind!r}; "
            f"expected one of {sorted(ARTIFACT_SUFFIXES)}"
        ) from None
    entry = cache.path_for(key)
    base = entry[: -len(".json")] if entry.endswith(".json") else entry
    return base + suffix
