"""The telemetry event bus: one wrap of the machine, many consumers.

``TelemetryHub`` monkey-wires the machine's transaction-lifecycle
callbacks exactly once (the same points :class:`repro.sim.trace.Tracer`
historically wrapped itself) and fans structured
:class:`TelemetryEvent` records out to any number of subscribers — the
tracer, the timeline reconstructor, live metric counters.  Because the
wraps are installed only when the first subscriber arrives and removed
when the last one leaves, an un-instrumented machine carries **zero**
telemetry cost: no wrapper frames, no event objects, no registry calls.
Observation never schedules events or mutates architectural state, so
an instrumented run is cycle-for-cycle identical to a bare one.

The canonical lifecycle-event vocabulary lives here; ``repro.sim.trace``
re-exports it as ``TraceEvent`` for backwards compatibility.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, List, Tuple


class TraceEvent(str, Enum):
    """Machine-level lifecycle events observable on the bus."""

    TX_BEGIN = "tx_begin"
    TX_COMMIT = "tx_commit"
    TX_ABORT = "tx_abort"
    REJECT = "reject"
    WAKEUP = "wakeup"
    FALLBACK = "fallback"
    SWITCH_ATTEMPT = "switch_attempt"
    SWITCH_OK = "switch_ok"
    OVERFLOW = "overflow"
    SPILL = "spill"
    #: An irrevocable (TL/FALLBACK) critical section began executing.
    LOCK_BEGIN = "lock_begin"


class TelemetryEvent:
    """One structured lifecycle record delivered to subscribers.

    ``arg`` is event-specific: the abort reason value (``TX_ABORT``),
    commit kind (``TX_COMMIT``), rejecting holder core (``REJECT``),
    pending-waiter count (``WAKEUP``), ``"granted"``/``"denied"``
    (``SWITCH_*``), or the entered mode (``LOCK_BEGIN``).
    """

    __slots__ = ("time", "kind", "core", "line", "arg")

    def __init__(
        self, time: int, kind: TraceEvent, core: int, line: int = -1, arg=None
    ) -> None:
        self.time = time
        self.kind = kind
        self.core = core
        self.line = line
        self.arg = arg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TelemetryEvent(t={self.time}, {self.kind.value}, "
            f"core={self.core}, line={self.line}, arg={self.arg!r})"
        )


Subscriber = Callable[[TelemetryEvent], None]


class TelemetryHub:
    """Per-machine fan-out of lifecycle events.

    Use :meth:`of` to get the machine's hub (created on first use and
    cached on the machine object).  ``subscribe`` installs the callback
    wraps on first use; ``unsubscribe`` restores every wrapped callback
    once the last subscriber leaves, so attach/detach cycles are safe
    and repeatable.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self._subs: List[Subscriber] = []
        self._wired = False
        #: (owner object, attribute name, original callable) per wrap.
        self._restores: List[Tuple[object, str, Callable]] = []

    @classmethod
    def of(cls, machine) -> "TelemetryHub":
        hub = getattr(machine, "_telemetry_hub", None)
        if hub is None:
            hub = cls(machine)
            machine._telemetry_hub = hub
        return hub

    @property
    def wired(self) -> bool:
        return self._wired

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    def subscribe(self, sub: Subscriber) -> None:
        """Add ``sub``; idempotent for an already-subscribed callback."""
        if sub in self._subs:
            return
        self._subs.append(sub)
        if not self._wired:
            self._wire()

    def unsubscribe(self, sub: Subscriber) -> None:
        """Remove ``sub``; the last removal unwires the machine."""
        if sub in self._subs:
            self._subs.remove(sub)
        if not self._subs and self._wired:
            self._unwire()

    # ------------------------------------------------------------------

    def _emit(
        self, time: int, kind: TraceEvent, core: int, line: int = -1, arg=None
    ) -> None:
        ev = TelemetryEvent(time, kind, core, line, arg)
        for sub in self._subs:
            sub(ev)

    def _wrap(self, owner, attr: str, wrapper_factory) -> None:
        inner = getattr(owner, attr)
        setattr(owner, attr, wrapper_factory(inner))
        self._restores.append((owner, attr, inner))

    def _unwire(self) -> None:
        for owner, attr, original in reversed(self._restores):
            setattr(owner, attr, original)
        self._restores.clear()
        self._wired = False

    def _wire(self) -> None:
        machine = self.machine
        emit = self._emit
        self._wired = True

        # External victim aborts (every conflict loser goes through here).
        def abort_wrapper(inner):
            def wrapped(core, reason, now):
                cpu = machine.cpus[core]
                if cpu.tx.mode.in_transaction and not cpu.tx.aborted:
                    emit(now, TraceEvent.TX_ABORT, core, arg=str(reason.value))
                inner(core, reason, now)

            return wrapped

        self._wrap(machine.memsys, "abort_core", abort_wrapper)

        # The memory access path: rejects (NACKs) and capacity overflows.
        def access_wrapper(inner):
            from repro.coherence.memsys import OVERFLOW, REJECT

            def wrapped(core, addr, is_write, now):
                res = inner(core, addr, is_write, now)
                status = res.status
                if status == REJECT:
                    emit(
                        now,
                        TraceEvent.REJECT,
                        core,
                        line=addr >> 6,
                        arg=res.reject_holder,
                    )
                elif status == OVERFLOW:
                    emit(now, TraceEvent.OVERFLOW, core, line=addr >> 6)
                return res

            return wrapped

        self._wrap(machine.memsys, "access", access_wrapper)

        # HTMLock signature spills (Fig. 5 (2)).
        def spill_wrapper(inner):
            def wrapped(core, line):
                emit(machine.engine.now, TraceEvent.SPILL, core, line=line)
                inner(core, line)

            return wrapped

        self._wrap(machine.memsys, "spill_to_signature", spill_wrapper)

        # Wake-up delivery (recovery mechanism, Fig. 2 (7)/(8)).
        def drain_wrapper(inner):
            def wrapped(holder, now):
                pending = machine.wakeups.pending_for(holder)
                if pending:
                    emit(now, TraceEvent.WAKEUP, holder, arg=pending)
                inner(holder, now)

            return wrapped

        self._wrap(machine, "drain_wakeups", drain_wrapper)

        for cpu in machine.cpus:
            self._wire_cpu(cpu)

    def _wire_cpu(self, cpu) -> None:
        emit = self._emit
        core = cpu.core
        htmlock = cpu.spec.htmlock

        def xbegin_wrapper(inner):
            def wrapped(now):
                emit(now, TraceEvent.TX_BEGIN, core)
                inner(now)

            return wrapped

        self._wrap(cpu, "_xbegin", xbegin_wrapper)

        def commit_wrapper(inner):
            def wrapped(now, cat, kind):
                emit(now, TraceEvent.TX_COMMIT, core, arg=kind)
                inner(now, cat, kind)

            return wrapped

        self._wrap(cpu, "_commit_done", commit_wrapper)

        def local_abort_wrapper(inner):
            def wrapped(now, reason):
                if not cpu.tx.aborted:
                    emit(
                        now, TraceEvent.TX_ABORT, core, arg=str(reason.value)
                    )
                inner(now, reason)

            return wrapped

        self._wrap(cpu, "_local_abort", local_abort_wrapper)

        def fallback_wrapper(inner):
            def wrapped(now):
                emit(now, TraceEvent.FALLBACK, core)
                inner(now)

            return wrapped

        self._wrap(cpu, "_go_fallback", fallback_wrapper)

        def stl_wrapper(inner):
            def wrapped(now, granted, attempt_seq, **kwargs):
                emit(
                    now,
                    TraceEvent.SWITCH_OK
                    if granted
                    else TraceEvent.SWITCH_ATTEMPT,
                    core,
                    arg="granted" if granted else "denied",
                )
                inner(now, granted, attempt_seq, **kwargs)

            return wrapped

        self._wrap(cpu, "_stl_result", stl_wrapper)

        if htmlock:
            # HTMLock systems: the lock holder enters TL via hlbegin.
            def tl_wrapper(inner):
                def wrapped(now, wait_t0):
                    emit(now, TraceEvent.LOCK_BEGIN, core, arg="tl")
                    inner(now, wait_t0)

                return wrapped

            self._wrap(cpu, "_enter_tl", tl_wrapper)
        else:
            # Classic fallback: the critical section starts right after
            # the lock write (which killed every subscriber).
            def fb_locked_wrapper(inner):
                def wrapped(now, wait_t0):
                    emit(now, TraceEvent.LOCK_BEGIN, core, arg="fallback")
                    inner(now, wait_t0)

                return wrapped

            self._wrap(cpu, "_fallback_locked", fb_locked_wrapper)
