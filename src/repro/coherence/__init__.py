"""MESI directory coherence substrate: L1s, inclusive LLC, directory."""

from repro.coherence.states import MESI
from repro.coherence.cachearray import CacheArray, EvictedLine
from repro.coherence.directory import Directory, DirEntry

__all__ = ["MESI", "CacheArray", "EvictedLine", "Directory", "DirEntry"]
