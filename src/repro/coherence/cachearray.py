"""Set-associative cache arrays with LRU replacement — two backends.

Used for both the private L1s and the shared inclusive LLC.  Victim
selection can be steered away from transactionally-marked lines — real
HTM way-selection does the same — via the ``pinned`` predicate; when
every way of a set is pinned the caller gets a pinned victim back and
must treat it as a capacity overflow.

Two interchangeable implementations share the same API and the same
observable behaviour (states, victims, counters — pinned by the
randomized equivalence suite):

* :class:`DictCacheArray` — the dict-of-LRU-lists model and the
  **default** backend (``CacheParams.backend = "reference"``).  Every
  operation it performs (dict probe, ``list.remove`` + ``append`` LRU
  shuffle over <= assoc entries) is already a C-level primitive, which
  is why it measures *faster* under CPython on eviction-light cells —
  see docs/PERFORMANCE.md (PR 8).
* :class:`PackedCacheArray` — the flat-layout alternative, selectable
  via ``CacheParams.backend = "packed"`` for differential testing and
  eviction-heavy experiments.  Way slots live in flat arena lists laid
  out ``base + way`` per set
  (``stride = assoc + 1``: one spare *guard* slot per set kept for
  layout alignment), paired with a ``line -> slot`` index dict so every
  lookup (probe / hit_state / touch / set_state / invalidate) is one
  C-level dict probe — way scans happen only on the insert/evict path,
  where the set's ways must be examined anyway.  Arena blocks are
  allocated on a set's *first insert* (``_base`` maps set -> arena
  base), so construction is O(sets) bookkeeping, not O(capacity) —
  preallocating the LLC's full geometry (hundreds of thousands of
  slots) dominated fresh-Machine construction otherwise.  LRU is a
  monotonic rank per slot: a touch stores the next tick instead of
  shuffling a Python list, and the victim is the smallest-rank way.
  ``reset()`` is O(touched sets) and keeps the arena, so machine-pool
  reuse never pays for geometry either.

Both are constructed through the :func:`CacheArray` factory, which
dispatches on :attr:`repro.common.params.CacheParams.backend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import ProtocolInvariantError
from repro.common.params import CacheParams
from repro.coherence.states import MESI

#: Empty-slot sentinel in the packed line array.  Line addresses are
#: non-negative (``addr >> 6``), so -1 never collides with a real line.
_EMPTY = -1


@dataclass(frozen=True)
class EvictedLine:
    """Result of inserting into a full set."""

    line: int
    state: int
    was_pinned: bool


class PackedCacheArray:
    """Flat arena tag/state/rank slots (``backend="packed"``).

    Geometry is validated once here (the construction-time bounds
    assertion) instead of per call on the hot path; ``_num_sets`` /
    ``_assoc`` / ``_stride`` are the cached geometry every method uses,
    so set-index mapping cannot drift between methods.
    """

    __slots__ = (
        "params",
        "_num_sets",
        "_assoc",
        "_stride",
        "_lines",
        "_states",
        "_ranks",
        "_slot",
        "_base",
        "_occ",
        "_dirty",
        "_dirty_sets",
        "_tick",
        "_len",
        "_empty_ways",
        "_block_lines",
        "_block_states",
        "_block_ranks",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        num_sets = params.num_sets
        assoc = params.assoc
        if num_sets <= 0 or assoc <= 0:
            raise ProtocolInvariantError(
                f"degenerate cache geometry: {num_sets} sets x {assoc} ways"
            )
        self._num_sets = num_sets
        self._assoc = assoc
        #: Slot stride per set: ``assoc`` ways plus one guard slot the
        #: scans preload, making ``list.index`` miss-free.
        self._stride = assoc + 1
        # Arena lists: one stride-sized block appended per set on its
        # first insert (see _base).  Empty at construction.
        self._lines: List[int] = []
        self._states: List[int] = []
        self._ranks: List[int] = []
        #: Resident line -> flat slot index; the O(1) lookup tier.
        self._slot: Dict[int, int] = {}
        #: Set index -> arena base of its block (allocated lazily).
        self._base: Dict[int, int] = {}
        #: Ways in use per set (the set_occupancy fast path).
        self._occ: List[int] = [0] * num_sets
        #: Sets touched since the last reset — reset() and the resident
        #: iterators walk only these, keeping both O(touched).
        self._dirty: List[bool] = [False] * num_sets
        self._dirty_sets: List[int] = []
        self._tick = 0
        self._len = 0
        self._empty_ways = [_EMPTY] * assoc
        # Per-set arena block templates (extend copies the values).
        self._block_lines = [_EMPTY] * self._stride
        self._block_states = [MESI.I] * self._stride
        self._block_ranks = [0] * self._stride
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        """Empty the array and zero its counters (machine-pool reuse).

        The arena blocks (and ``_base``) survive the reset — only the
        dirty sets' ways are emptied, so a pooled machine re-runs
        without re-growing the arena.
        """
        lines = self._lines
        bases = self._base
        empty = self._empty_ways
        assoc = self._assoc
        dirty = self._dirty
        for idx in self._dirty_sets:
            base = bases[idx]
            lines[base:base + assoc] = empty
            self._occ[idx] = 0
            dirty[idx] = False
        self._dirty_sets.clear()
        self._slot.clear()
        self._tick = 0
        self._len = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return self._len

    # -- lookups ---------------------------------------------------------

    def probe(self, line: int) -> int:
        """Current MESI state of ``line`` (I when absent). No LRU update."""
        i = self._slot.get(line)
        if i is None:
            return MESI.I
        return self._states[i]

    def contains(self, line: int) -> bool:
        return line in self._slot

    def hit_state(self, line: int, is_write: bool) -> int:
        """Combined probe + LRU touch for the access fast path.

        Returns the line's state when this access hits with sufficient
        permission (refreshing its LRU position), and ``MESI.I``
        otherwise — absent lines and write-to-S upgrades both take the
        miss path *without* an LRU refresh, exactly like the separate
        ``probe``/``touch`` sequence they replace.
        """
        i = self._slot.get(line)
        if i is None:
            return MESI.I
        st = self._states[i]
        if is_write and st == MESI.S:
            return MESI.I
        self._ranks[i] = self._tick
        self._tick += 1
        return st

    def _find(self, line: int) -> int:
        """Slot of ``line`` or -1 when absent."""
        return self._slot.get(line, -1)

    # -- mutation --------------------------------------------------------

    def touch(self, line: int) -> None:
        """Refresh LRU position after a hit."""
        i = self._find(line)
        if i < 0:
            raise ProtocolInvariantError(f"touch of absent line {line:#x}")
        self._ranks[i] = self._tick
        self._tick += 1

    def set_state(self, line: int, state: int) -> None:
        """Change the state of a resident line (upgrades/downgrades)."""
        i = self._find(line)
        if i < 0:
            raise ProtocolInvariantError(
                f"state change on absent line {line:#x}"
            )
        if state == MESI.I:
            self._lines[i] = _EMPTY
            del self._slot[line]
            self._occ[line % self._num_sets] -= 1
            self._len -= 1
        else:
            self._states[i] = state

    def insert(
        self,
        line: int,
        state: int,
        pinned: Optional[Callable[[int], bool]] = None,
    ) -> Optional[EvictedLine]:
        """Insert ``line`` in ``state``; return the victim if one is evicted.

        Victim choice is LRU among non-pinned lines; if all ways are
        pinned the true LRU line is returned with ``was_pinned=True`` and
        is *not* evicted — the caller decides (overflow handling).
        """
        if state == MESI.I:
            raise ProtocolInvariantError("inserting a line in state I")
        slot = self._slot
        tick = self._tick
        i = slot.get(line)
        if i is not None:
            self._states[i] = state
            self._ranks[i] = tick
            self._tick = tick + 1
            return None
        lines = self._lines
        idx = line % self._num_sets
        base = self._base.get(idx)
        if base is None:
            # First insert into this set: grow the arena by one block.
            base = len(lines)
            self._base[idx] = base
            lines.extend(self._block_lines)
            self._states.extend(self._block_states)
            self._ranks.extend(self._block_ranks)
        assoc = self._assoc
        guard = base + assoc
        ranks = self._ranks
        if self._occ[idx] < assoc:
            if not self._dirty[idx]:
                self._dirty[idx] = True
                self._dirty_sets.append(idx)
            j = lines.index(_EMPTY, base, guard)
            lines[j] = line
            slot[line] = j
            self._states[j] = state
            ranks[j] = tick
            self._tick = tick + 1
            self._occ[idx] += 1
            self._len += 1
            return None
        # Full set: pick the victim in LRU (ascending-rank) order.  Rank
        # order equals the reference backend's list order — both are
        # "time of last insert/touch, oldest first" (see PERFORMANCE.md
        # PR 8 for the determinism argument).
        if pinned is None:
            # min() drives the rank scan in C (the key is a C method).
            chosen = min(range(base, guard), key=ranks.__getitem__)
        else:
            order = sorted(range(base, guard), key=ranks.__getitem__)
            chosen = -1
            for k in order:
                if not pinned(lines[k]):
                    chosen = k
                    break
            if chosen < 0:
                # Every way pinned: report overflow, do not evict.
                k0 = order[0]
                return EvictedLine(lines[k0], self._states[k0], True)
        victim = EvictedLine(lines[chosen], self._states[chosen], False)
        self.evictions += 1
        del slot[victim.line]
        lines[chosen] = line
        slot[line] = chosen
        self._states[chosen] = state
        ranks[chosen] = tick
        self._tick = tick + 1
        return victim

    def invalidate(self, line: int) -> int:
        """Drop ``line``; returns its prior state (I when absent)."""
        i = self._slot.pop(line, -1)
        if i < 0:
            return MESI.I
        self._lines[i] = _EMPTY
        self._occ[line % self._num_sets] -= 1
        self._len -= 1
        return self._states[i]

    # -- victim steering (memsys overflow pre-check) ---------------------

    def find_unpinned_victim(
        self, line: int, pinned: Callable[[int], bool]
    ) -> Optional[int]:
        """First unpinned resident line of ``line``'s set in LRU order."""
        base = self._base.get(line % self._num_sets)
        if base is None:
            return None
        guard = base + self._assoc
        lines = self._lines
        ranks = self._ranks
        for k in sorted(range(base, guard), key=ranks.__getitem__):
            cand = lines[k]
            if cand != _EMPTY and not pinned(cand):
                return cand
        return None

    def lru_line(self, line: int) -> int:
        """Least-recently-used resident line of ``line``'s set."""
        base = self._base.get(line % self._num_sets)
        if base is None:
            raise ProtocolInvariantError(
                f"lru_line on empty set of line {line:#x}"
            )
        guard = base + self._assoc
        lines = self._lines
        ranks = self._ranks
        chosen = -1
        best = None
        for k in range(base, guard):
            if lines[k] != _EMPTY and (best is None or ranks[k] < best):
                best = ranks[k]
                chosen = k
        if chosen < 0:
            raise ProtocolInvariantError(
                f"lru_line on empty set of line {line:#x}"
            )
        return lines[chosen]

    # -- iteration / introspection ---------------------------------------

    def resident_lines(self) -> List[int]:
        return [line for line, _st in self.resident_states()]

    def resident_states(self):
        """(line, MESI state) pairs over resident lines.

        Walks only the dirty sets (set-major, way-minor order); the
        end-of-run validators sweep every resident line of every array,
        so this must not touch the full geometry.
        """
        lines = self._lines
        states = self._states
        bases = self._base
        assoc = self._assoc
        out = []
        for idx in self._dirty_sets:
            base = bases[idx]
            for k in range(base, base + assoc):
                line = lines[k]
                if line != _EMPTY:
                    out.append((line, states[k]))
        return out

    def set_occupancy(self, line: int) -> int:
        """Ways in use in the set that ``line`` maps to."""
        return self._occ[line % self._num_sets]

    def check_invariants(self) -> None:
        """Structural self-check used by tests and debug runs.

        O(touched sets + resident lines), not O(capacity): only dirty
        sets are walked, and the global ``sum(_occ) == len`` check
        catches any clean set whose occupancy count went non-zero
        without being marked dirty.
        """
        lines = self._lines
        bases = self._base
        assoc = self._assoc
        slot = self._slot
        seen = 0
        for idx in self._dirty_sets:
            base = bases[idx]
            occupied = 0
            for k in range(base, base + assoc):
                line = lines[k]
                if line == _EMPTY:
                    continue
                occupied += 1
                if line % self._num_sets != idx:
                    raise ProtocolInvariantError(
                        f"line {line:#x} filed in wrong set {idx}"
                    )
                if self._states[k] == MESI.I:
                    raise ProtocolInvariantError(
                        f"line {line:#x} resident in state I"
                    )
                if slot.get(line) != k:
                    raise ProtocolInvariantError(
                        f"line {line:#x} slot index out of sync"
                    )
            if occupied != self._occ[idx]:
                raise ProtocolInvariantError(
                    f"set {idx} occupancy {self._occ[idx]} vs "
                    f"{occupied} filled ways"
                )
            if not self._dirty[idx]:
                raise ProtocolInvariantError(
                    f"set {idx} in dirty list but not marked dirty"
                )
            seen += occupied
        if seen != self._len:
            raise ProtocolInvariantError(
                f"{self._len} counted lines vs {seen} filled ways"
            )
        if sum(self._occ) != self._len:
            raise ProtocolInvariantError(
                "occupancy counts out of sync with resident total"
            )
        if len(slot) != self._len:
            raise ProtocolInvariantError(
                f"slot index holds {len(slot)} lines vs {self._len} resident"
            )
        if len(lines) != len(bases) * self._stride:
            raise ProtocolInvariantError(
                f"arena holds {len(lines)} slots vs "
                f"{len(bases)} allocated sets"
            )


class DictCacheArray:
    """Dict-of-lists backend (``backend="reference"``, the default).

    Lookup is a dict probe (O(1)); each set keeps its lines in LRU
    order (most recent last).  The LRU shuffle is ``list.remove`` +
    ``append`` over at most ``assoc`` entries — all C-level, which is
    why this measures faster than the packed layout on eviction-light
    cells.  Also the differential-testing reference for
    :class:`PackedCacheArray`.
    """

    __slots__ = (
        "params",
        "_state",
        "_sets",
        "_num_sets",
        "_assoc",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        # Cached geometry: set_index is the hottest call in the simulator
        # and the dataclass properties re-derive it per call.
        self._num_sets = params.num_sets
        self._assoc = params.assoc
        if self._num_sets <= 0 or self._assoc <= 0:
            raise ProtocolInvariantError(
                f"degenerate cache geometry: "
                f"{self._num_sets} sets x {self._assoc} ways"
            )
        self._state: Dict[int, int] = {}
        self._sets: Dict[int, List[int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        """Empty the array and zero its counters (machine-pool reuse)."""
        self._state.clear()
        self._sets.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._state)

    def probe(self, line: int) -> int:
        """Current MESI state of ``line`` (I when absent). No LRU update."""
        return self._state.get(line, MESI.I)

    def contains(self, line: int) -> bool:
        return line in self._state

    def hit_state(self, line: int, is_write: bool) -> int:
        """Combined probe + LRU touch for the access fast path."""
        st = self._state.get(line, MESI.I)
        if st == MESI.I or (is_write and st == MESI.S):
            return MESI.I
        s = self._sets[line % self._num_sets]
        if s[-1] != line:
            s.remove(line)
            s.append(line)
        return st

    def touch(self, line: int) -> None:
        """Refresh LRU position after a hit."""
        if line not in self._state:
            raise ProtocolInvariantError(f"touch of absent line {line:#x}")
        s = self._sets[line % self._num_sets]
        if s[-1] != line:
            s.remove(line)
            s.append(line)

    def set_state(self, line: int, state: int) -> None:
        """Change the state of a resident line (upgrades/downgrades)."""
        if line not in self._state:
            raise ProtocolInvariantError(
                f"state change on absent line {line:#x}"
            )
        if state == MESI.I:
            self.invalidate(line)
        else:
            self._state[line] = state

    def insert(
        self,
        line: int,
        state: int,
        pinned: Optional[Callable[[int], bool]] = None,
    ) -> Optional[EvictedLine]:
        """Insert ``line`` in ``state``; return the victim if one is evicted."""
        if state == MESI.I:
            raise ProtocolInvariantError("inserting a line in state I")
        if line in self._state:
            self._state[line] = state
            self.touch(line)
            return None
        idx = line % self._num_sets
        ways = self._sets.setdefault(idx, [])
        victim: Optional[EvictedLine] = None
        if len(ways) >= self._assoc:
            chosen = None
            if pinned is None:
                chosen = ways[0]
            else:
                for cand in ways:  # LRU order: oldest first
                    if not pinned(cand):
                        chosen = cand
                        break
            if chosen is None:
                # Every way pinned: report overflow, do not evict.
                return EvictedLine(ways[0], self._state[ways[0]], True)
            victim = EvictedLine(chosen, self._state[chosen], False)
            ways.remove(chosen)
            del self._state[chosen]
            self.evictions += 1
        ways.append(line)
        self._state[line] = state
        return victim

    def invalidate(self, line: int) -> int:
        """Drop ``line``; returns its prior state (I when absent)."""
        prior = self._state.pop(line, MESI.I)
        if prior != MESI.I:
            self._sets[line % self._num_sets].remove(line)
        return prior

    def find_unpinned_victim(
        self, line: int, pinned: Callable[[int], bool]
    ) -> Optional[int]:
        """First unpinned resident line of ``line``'s set in LRU order."""
        for cand in self._sets.get(line % self._num_sets, ()):
            if not pinned(cand):
                return cand
        return None

    def lru_line(self, line: int) -> int:
        """Least-recently-used resident line of ``line``'s set."""
        return self._sets[line % self._num_sets][0]

    def resident_lines(self):
        return self._state.keys()

    def resident_states(self):
        """(line, MESI state) view over resident lines — one dict walk."""
        return self._state.items()

    def set_occupancy(self, line: int) -> int:
        """Ways in use in the set that ``line`` maps to."""
        return len(self._sets.get(line % self._num_sets, ()))

    def check_invariants(self) -> None:
        """Structural self-check used by tests and debug runs."""
        seen = 0
        for idx, ways in self._sets.items():
            if len(ways) > self._assoc:
                raise ProtocolInvariantError(
                    f"set {idx} holds {len(ways)} > {self._assoc} ways"
                )
            for line in ways:
                if line % self._num_sets != idx:
                    raise ProtocolInvariantError(
                        f"line {line:#x} filed in wrong set {idx}"
                    )
                if line not in self._state:
                    raise ProtocolInvariantError(
                        f"line {line:#x} in set list but stateless"
                    )
                seen += 1
        if seen != len(self._state):
            raise ProtocolInvariantError(
                f"{len(self._state)} states vs {seen} set entries"
            )


#: Backend registry for the factory (and the equivalence suite).
BACKENDS = {
    "packed": PackedCacheArray,
    "reference": DictCacheArray,
}


def CacheArray(params: CacheParams):  # noqa: N802 - factory keeps the old name
    """Build the cache-array backend selected by ``params.backend``."""
    try:
        cls = BACKENDS[params.backend]
    except KeyError:
        raise ProtocolInvariantError(
            f"unknown cache backend {params.backend!r}; "
            f"expected one of {sorted(BACKENDS)}"
        ) from None
    return cls(params)
