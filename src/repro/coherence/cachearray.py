"""Set-associative cache array with LRU replacement.

Used for both the private L1s and the shared inclusive LLC.  Lookup is a
dict probe (O(1)); each set keeps its lines in LRU order (most recent
last).  Victim selection can be steered away from transactionally-marked
lines — real HTM way-selection does the same — via the ``pinned``
predicate; when every way of a set is pinned the caller gets a pinned
victim back and must treat it as a capacity overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import ProtocolInvariantError
from repro.common.params import CacheParams
from repro.coherence.states import MESI


@dataclass(frozen=True)
class EvictedLine:
    """Result of inserting into a full set."""

    line: int
    state: int
    was_pinned: bool


class CacheArray:
    """One cache's tag/state array."""

    __slots__ = (
        "params",
        "_state",
        "_sets",
        "_num_sets",
        "_assoc",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        # Cached geometry: set_index is the hottest call in the simulator
        # and the dataclass properties re-derive it per call.
        self._num_sets = params.num_sets
        self._assoc = params.assoc
        self._state: Dict[int, int] = {}
        self._sets: Dict[int, List[int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        """Empty the array and zero its counters (machine-pool reuse)."""
        self._state.clear()
        self._sets.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._state)

    def probe(self, line: int) -> int:
        """Current MESI state of ``line`` (I when absent). No LRU update."""
        return self._state.get(line, MESI.I)

    def contains(self, line: int) -> bool:
        return line in self._state

    def hit_state(self, line: int, is_write: bool) -> int:
        """Combined probe + LRU touch for the access fast path.

        Returns the line's state when this access hits with sufficient
        permission (refreshing its LRU position), and ``MESI.I``
        otherwise — absent lines and write-to-S upgrades both take the
        miss path *without* an LRU refresh, exactly like the separate
        ``probe``/``touch`` sequence they replace.
        """
        st = self._state.get(line, MESI.I)
        if st == MESI.I or (is_write and st == MESI.S):
            return MESI.I
        s = self._sets[line % self._num_sets]
        if s[-1] != line:
            s.remove(line)
            s.append(line)
        return st

    def touch(self, line: int) -> None:
        """Refresh LRU position after a hit."""
        if line not in self._state:
            raise ProtocolInvariantError(f"touch of absent line {line:#x}")
        s = self._sets[line % self._num_sets]
        if s[-1] != line:
            s.remove(line)
            s.append(line)

    def set_state(self, line: int, state: int) -> None:
        """Change the state of a resident line (upgrades/downgrades)."""
        if line not in self._state:
            raise ProtocolInvariantError(
                f"state change on absent line {line:#x}"
            )
        if state == MESI.I:
            self.invalidate(line)
        else:
            self._state[line] = state

    def insert(
        self,
        line: int,
        state: int,
        pinned: Optional[Callable[[int], bool]] = None,
    ) -> Optional[EvictedLine]:
        """Insert ``line`` in ``state``; return the victim if one is evicted.

        Victim choice is LRU among non-pinned lines; if all ways are
        pinned the true LRU line is returned with ``was_pinned=True`` and
        is *not* evicted — the caller decides (overflow handling).
        """
        if state == MESI.I:
            raise ProtocolInvariantError("inserting a line in state I")
        if line in self._state:
            self._state[line] = state
            self.touch(line)
            return None
        idx = line % self._num_sets
        ways = self._sets.setdefault(idx, [])
        victim: Optional[EvictedLine] = None
        if len(ways) >= self._assoc:
            chosen = None
            if pinned is None:
                chosen = ways[0]
            else:
                for cand in ways:  # LRU order: oldest first
                    if not pinned(cand):
                        chosen = cand
                        break
            if chosen is None:
                # Every way pinned: report overflow, do not evict.
                return EvictedLine(ways[0], self._state[ways[0]], True)
            victim = EvictedLine(chosen, self._state[chosen], False)
            ways.remove(chosen)
            del self._state[chosen]
            self.evictions += 1
        ways.append(line)
        self._state[line] = state
        return victim

    def invalidate(self, line: int) -> int:
        """Drop ``line``; returns its prior state (I when absent)."""
        prior = self._state.pop(line, MESI.I)
        if prior != MESI.I:
            self._sets[line % self._num_sets].remove(line)
        return prior

    def resident_lines(self):
        return self._state.keys()

    def resident_states(self):
        """(line, MESI state) view over resident lines — one dict walk.

        The end-of-run validators sweep every resident line of every
        array; iterating the items view directly beats a
        ``resident_lines()`` walk with a ``probe()`` lookup per line.
        """
        return self._state.items()

    def set_occupancy(self, line: int) -> int:
        """Ways in use in the set that ``line`` maps to."""
        return len(self._sets.get(line % self._num_sets, ()))

    def check_invariants(self) -> None:
        """Structural self-check used by tests and debug runs."""
        seen = 0
        for idx, ways in self._sets.items():
            if len(ways) > self.params.assoc:
                raise ProtocolInvariantError(
                    f"set {idx} holds {len(ways)} > {self.params.assoc} ways"
                )
            for line in ways:
                if self.params.set_index(line) != idx:
                    raise ProtocolInvariantError(
                        f"line {line:#x} filed in wrong set {idx}"
                    )
                if line not in self._state:
                    raise ProtocolInvariantError(
                        f"line {line:#x} in set list but stateless"
                    )
                seen += 1
        if seen != len(self._state):
            raise ProtocolInvariantError(
                f"{len(self._state)} states vs {seen} set entries"
            )
