"""Directory state for the shared, inclusive LLC.

One :class:`DirEntry` per line records the owner (a core holding E/M) or
the sharer set (cores holding S), plus ``busy_until`` — the end of the
line's current protocol transaction, which serializes the blocking
directory exactly like SLICC transient states do: a request arriving
while the line is busy starts service only at ``busy_until``.

The Single-Writer-Multiple-Readers invariant is checked structurally by
:meth:`Directory.check_swmr` against the actual L1 arrays.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.common.errors import ProtocolInvariantError
from repro.coherence.states import MESI


class DirEntry:
    __slots__ = ("owner", "sharers", "busy_until")

    def __init__(self) -> None:
        self.owner: int = -1
        self.sharers: Set[int] = set()
        self.busy_until: int = 0

    def copies(self) -> Set[int]:
        if self.owner >= 0:
            return {self.owner}
        return set(self.sharers)

    @property
    def is_idle(self) -> bool:
        return self.owner < 0 and not self.sharers


class Directory:
    """Full-map directory over all lines ever touched."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, DirEntry] = {}

    def reset(self) -> None:
        """Forget every line (machine-pool reuse)."""
        self._entries.clear()

    def entry(self, line: int) -> DirEntry:
        e = self._entries.get(line)
        if e is None:
            e = DirEntry()
            self._entries[line] = e
        return e

    def peek(self, line: int) -> Optional[DirEntry]:
        return self._entries.get(line)

    def __len__(self) -> int:
        return len(self._entries)

    # -- ownership transitions ------------------------------------------

    def set_exclusive(self, line: int, core: int) -> None:
        e = self.entry(line)
        e.owner = core
        e.sharers.clear()

    def add_sharer(self, line: int, core: int) -> None:
        e = self.entry(line)
        if e.owner == core:
            return  # already exclusive; keep stronger state
        if e.owner >= 0:
            raise ProtocolInvariantError(
                f"adding sharer {core} to owned line {line:#x}"
            )
        e.sharers.add(core)

    def demote_owner_to_sharer(self, line: int) -> None:
        e = self.entry(line)
        if e.owner < 0:
            raise ProtocolInvariantError(f"no owner to demote on {line:#x}")
        e.sharers.add(e.owner)
        e.owner = -1

    def remove_copy(self, line: int, core: int) -> None:
        e = self._entries.get(line)
        if e is None:
            return
        if e.owner == core:
            e.owner = -1
        e.sharers.discard(core)

    def copies(self, line: int) -> Set[int]:
        e = self._entries.get(line)
        return e.copies() if e is not None else set()

    def other_copies(self, line: int, core: int) -> Set[int]:
        return {c for c in self.copies(line) if c != core}

    def has_other_copies(self, line: int, core: int) -> bool:
        """Allocation-free truthiness of :meth:`other_copies`.

        The access fast path only needs *whether* another core holds the
        line, not the set itself.
        """
        e = self._entries.get(line)
        if e is None:
            return False
        owner = e.owner
        if owner >= 0:
            return owner != core
        sharers = e.sharers
        if not sharers:
            return False
        return core not in sharers or len(sharers) > 1

    def owner_of(self, line: int) -> int:
        e = self._entries.get(line)
        return e.owner if e is not None else -1

    # -- validation ------------------------------------------------------

    def check_swmr(self, l1_arrays: List) -> None:
        """Assert SWMR + directory/L1 agreement (tests & debug mode).

        * at most one core in E/M per line, and then no sharers;
        * every L1 copy is recorded at the directory and vice versa.
        """
        for line, e in self._entries.items():
            if e.owner >= 0 and e.sharers - {e.owner}:
                raise ProtocolInvariantError(
                    f"line {line:#x}: owner {e.owner} plus sharers "
                    f"{sorted(e.sharers)}"
                )
        per_line_owners: Dict[int, List[int]] = {}
        E, M = MESI.E, MESI.M
        entries = self._entries
        for core, arr in enumerate(l1_arrays):
            for line, st in arr.resident_states():
                recorded = entries.get(line)
                if recorded is None:
                    raise ProtocolInvariantError(
                        f"L1[{core}] holds untracked line {line:#x}"
                    )
                if st == E or st == M:
                    per_line_owners.setdefault(line, []).append(core)
                    if recorded.owner != core:
                        raise ProtocolInvariantError(
                            f"L1[{core}] has {line:#x} in "
                            f"{MESI.name(st)} but directory owner is "
                            f"{recorded.owner}"
                        )
                elif st == MESI.S:
                    if core not in recorded.sharers and recorded.owner != core:
                        raise ProtocolInvariantError(
                            f"L1[{core}] shares {line:#x} unknown to "
                            "directory"
                        )
        for line, owners in per_line_owners.items():
            if len(owners) > 1:
                raise ProtocolInvariantError(
                    f"SWMR violated on {line:#x}: owners {owners}"
                )

    def lines(self) -> Iterable[int]:
        return self._entries.keys()
