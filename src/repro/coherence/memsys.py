"""The memory subsystem: private L1s, shared inclusive LLC + directory,
transactional conflict detection, and the LockillerTM mechanisms.

Every memory access resolves *event-atomically* at its issue event: the
directory lookup, conflict resolution, state transitions and victim
aborts all happen at once, and the caller receives the total latency to
schedule its continuation.  Because the event engine totally orders
events, this preserves the blocking-directory semantics (per-line
``busy_until`` models the transient-state window) while keeping the
simulator fast.

Conflict detection is eager (on the request path), exactly like the
modeled best-effort HTM: the global ``tx_readers`` / ``tx_writers`` maps
index which cores hold each line transactionally, and the two LLC
overflow signatures cover the HTMLock-mode transaction's spilled lines.

The tracking maps store **core bitmasks** (one int per line, bit
``1 << core``), mirroring how limited-set HTMs keep per-line sharer
metadata as compact bit vectors: the conflict pre-check is two dict
probes and an integer compare, membership updates are bit ops with no
set allocation, and holder enumeration walks the set bits in ascending
core order — which equals the CPython small-int set iteration order the
previous representation exposed for the modeled core counts (see
docs/PERFORMANCE.md PR 8 for the determinism argument).  The conflict
manager's :class:`~repro.core.conflict.Resolution` API still receives
materialized :class:`HolderInfo` records, so ``repro.core.conflict`` is
untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import ProtocolInvariantError
from repro.common.params import SystemParams
from repro.common.stats import AbortReason, CoreStats
from repro.coherence.cachearray import CacheArray
from repro.coherence.directory import Directory
from repro.coherence.states import MESI
from repro.core.conflict import (
    ConflictManager,
    HolderInfo,
    RequesterInfo,
    Resolution,
)
from repro.core.signatures import BloomSignature
from repro.htm.txstate import TxMode, TxState
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology

# Access outcome statuses.
GRANT = 0
REJECT = 1
OVERFLOW = 2

#: Modes whose accesses are tracked in read/write sets (hot-path const).
_TRACK_MODES = (TxMode.HTM, TxMode.TL, TxMode.STL)


class AccessResult:
    __slots__ = (
        "status",
        "latency",
        "hit",
        "reject_holder",
        "reject_by_lock",
    )

    def __init__(
        self,
        status: int,
        latency: int,
        hit: bool = False,
        reject_holder: int = -1,
        reject_by_lock: bool = False,
    ) -> None:
        self.status = status
        self.latency = latency
        self.hit = hit
        self.reject_holder = reject_holder
        self.reject_by_lock = reject_by_lock


class MemorySystem:
    """All caches plus the functional memory image."""

    def __init__(
        self,
        params: SystemParams,
        topology: MeshTopology,
        network: NetworkModel,
        manager: ConflictManager,
        core_stats: List[CoreStats],
        tile_of_core: Callable[[int], int],
    ) -> None:
        self.params = params
        self.topology = topology
        self.network = network
        self.manager = manager
        self.core_stats = core_stats
        self.tile_of_core = tile_of_core
        n = params.num_cores
        #: Hot-path constants: core->tile map and tile count, lifted out
        #: of the per-access method calls on the directory miss path.
        self._tile_of = [tile_of_core(c) for c in range(n)]
        self._n_tiles = topology.num_tiles
        #: Per-core pinned-line predicates, cached against the identity
        #: of the TxState's read set (the sets are cleared in place, so
        #: one closure per TxState lifetime suffices).
        self._pinned_preds: Dict[int, tuple] = {}
        self.l1s: List[CacheArray] = [CacheArray(params.l1) for _ in range(n)]
        #: MESI-Three-Level-HTM mode (§IV-A): a private middle cache per
        #: core maintains the transactional data.  None = two-level.
        self.l2s: Optional[List[CacheArray]] = (
            [CacheArray(params.l2private) for _ in range(n)]
            if params.l2private is not None
            else None
        )
        self.llc = CacheArray(params.llc)
        #: Hot-path constant: the L1 hit latency, lifted out of the
        #: nested frozen-dataclass attribute chain.
        self._l1_hit_latency = params.l1.hit_latency
        self.directory = Directory()
        #: Committed functional memory image (word address -> value).
        self.memory: Dict[int, int] = {}
        #: line -> bitmask of cores holding it in a transactional read
        #: set (bit ``1 << core``); absent line == empty mask.
        self.tx_readers: Dict[int, int] = {}
        self.tx_writers: Dict[int, int] = {}
        #: Registered per-core transactional state (wired by Machine).
        self.tx_states: List[TxState] = []
        #: HTMLock overflow signatures; valid while ``sig_owner >= 0``.
        self.of_rd_sig = BloomSignature(
            params.htm.signature_bits, params.htm.signature_hashes, seed=1
        )
        self.of_wr_sig = BloomSignature(
            params.htm.signature_bits, params.htm.signature_hashes, seed=2
        )
        self.sig_owner: int = -1
        #: Victim-abort callback, wired by Machine:
        #: abort_core(core, reason, now).
        self.abort_core: Callable[[int, AbortReason, int], None] = (
            self._unwired_abort
        )
        #: Debug mode: run SWMR checks after every access (slow).
        self.paranoid = False
        self.signature_spills = 0
        self.signature_rejects = 0
        #: Fault injector (reject storm), wired by the Machine when a
        #: FaultPlan is armed; None = no injection, zero overhead.
        self.chaos = None

    @staticmethod
    def _unwired_abort(core: int, reason: AbortReason, now: int) -> None:
        raise ProtocolInvariantError("abort callback not wired")

    def reset(self, core_stats: List[CoreStats]) -> None:
        """Return to the just-constructed state (machine-pool reuse).

        Caches, directory, functional memory, tracking maps, signatures
        and counters all start over; the caller re-wires ``tx_states``
        after rebuilding its CPUs.
        """
        self.core_stats = core_stats
        for l1 in self.l1s:
            l1.reset()
        if self.l2s is not None:
            for l2 in self.l2s:
                l2.reset()
        self.llc.reset()
        self.directory.reset()
        self.memory.clear()
        self.tx_readers.clear()
        self.tx_writers.clear()
        self.tx_states = []
        self._pinned_preds.clear()
        self.of_rd_sig.clear()
        self.of_wr_sig.clear()
        self.sig_owner = -1
        self.paranoid = False
        self.signature_spills = 0
        self.signature_rejects = 0
        self.chaos = None

    # ------------------------------------------------------------------
    # Functional value plane
    # ------------------------------------------------------------------

    def functional_load(self, core: int, addr: int) -> int:
        tx = self.tx_states[core]
        val = self.memory.get(addr, 0)
        if tx.mode is TxMode.HTM:
            val += tx.write_buffer.get(addr, 0)
        return val

    def functional_store(self, core: int, addr: int, delta: int) -> None:
        tx = self.tx_states[core]
        if tx.mode is TxMode.HTM:
            tx.buffer_store(addr, delta)
        else:
            # Lock modes (TL/STL/FALLBACK) and plain accesses write
            # through: they are irrevocable.
            if delta:
                self.memory[addr] = self.memory.get(addr, 0) + delta

    def publish(self, tx: TxState) -> None:
        """Commit: apply the speculative write buffer to memory."""
        mem = self.memory
        for addr, delta in tx.write_buffer.items():
            if delta:
                mem[addr] = mem.get(addr, 0) + delta
        tx.write_buffer.clear()

    # ------------------------------------------------------------------
    # Transactional tracking
    # ------------------------------------------------------------------

    def _track(self, core: int, line: int, is_write: bool, tx: TxState) -> None:
        if is_write:
            tx.write_set.add(line)
            holders = self.tx_writers
            holders[line] = holders.get(line, 0) | (1 << core)
        else:
            tx.read_set.add(line)
            holders = self.tx_readers
            holders[line] = holders.get(line, 0) | (1 << core)

    def discard_tx(self, core: int) -> None:
        """Drop all transactional tracking for ``core`` (abort path).

        The abort flash-clears every speculatively-accessed line from the
        L1 — written lines hold discarded data, and the modeled gem5
        MESI-HTM protocols flush read-marked lines as well (§IV-A notes
        the ARM protocol invalidates L1 transactional data wholesale), so
        an aborted attempt gives its retry no L1 warm-up.  HTMLock
        signatures are cleared if this core owned them.
        """
        tx = self.tx_states[core]
        tx.last_write_count = len(tx.write_set)
        readers = self.tx_readers
        writers = self.tx_writers
        directory = self.directory
        nbit = ~(1 << core)
        for line in tx.read_set:
            m = readers.get(line)
            if m is not None:
                m &= nbit
                if m:
                    readers[line] = m
                else:
                    del readers[line]
            self._purge_private(core, line)
            directory.remove_copy(line, core)
        for line in tx.write_set:
            m = writers.get(line)
            if m is not None:
                m &= nbit
                if m:
                    writers[line] = m
                else:
                    del writers[line]
            self._purge_private(core, line)
            directory.remove_copy(line, core)
        tx.read_set.clear()
        tx.write_set.clear()
        if self.sig_owner == core:
            self.clear_signatures(core)

    def retire_tx(self, core: int) -> None:
        """Commit: clear tracking, keeping cache lines (now committed)."""
        tx = self.tx_states[core]
        readers = self.tx_readers
        writers = self.tx_writers
        nbit = ~(1 << core)
        for line in tx.read_set:
            m = readers.get(line)
            if m is not None:
                m &= nbit
                if m:
                    readers[line] = m
                else:
                    del readers[line]
        for line in tx.write_set:
            m = writers.get(line)
            if m is not None:
                m &= nbit
                if m:
                    writers[line] = m
                else:
                    del writers[line]
        tx.read_set.clear()
        tx.write_set.clear()
        if self.sig_owner == core:
            self.clear_signatures(core)

    def clear_signatures(self, core: int) -> None:
        if self.sig_owner != core:
            raise ProtocolInvariantError(
                f"core {core} clearing signatures owned by {self.sig_owner}"
            )
        self.of_rd_sig.clear()
        self.of_wr_sig.clear()
        self.sig_owner = -1

    def spill_to_signature(self, core: int, line: int) -> None:
        """HTMLock overflow (Fig. 5 ②): move a set entry to the LLC sigs."""
        tx = self.tx_states[core]
        if not tx.mode.is_lock_mode:
            raise ProtocolInvariantError(
                f"core {core} spilling in mode {tx.mode}"
            )
        if self.sig_owner not in (-1, core):
            raise ProtocolInvariantError(
                f"signatures already owned by {self.sig_owner}"
            )
        self.sig_owner = core
        spilled = False
        nbit = ~(1 << core)
        if line in tx.write_set:
            self.of_wr_sig.insert(line)
            tx.write_set.discard(line)
            m = self.tx_writers.get(line)
            if m is not None:
                m &= nbit
                if m:
                    self.tx_writers[line] = m
                else:
                    del self.tx_writers[line]
            spilled = True
        if line in tx.read_set:
            self.of_rd_sig.insert(line)
            tx.read_set.discard(line)
            m = self.tx_readers.get(line)
            if m is not None:
                m &= nbit
                if m:
                    self.tx_readers[line] = m
                else:
                    del self.tx_readers[line]
            spilled = True
        if not spilled:
            raise ProtocolInvariantError(
                f"core {core} spilling untracked line {line:#x}"
            )
        self._purge_private(core, line)
        self.directory.remove_copy(line, core)
        self.signature_spills += 1

    # ------------------------------------------------------------------
    # The access path
    # ------------------------------------------------------------------

    def priority_of(self, core: int, now: int) -> int:
        return self.manager.priority_provider.priority_of(
            self.tx_states[core], now
        )

    def _pinned_pred(
        self, core: int, tx: TxState
    ) -> Optional[Callable[[int], bool]]:
        # Identity checks instead of the in_transaction enum property:
        # this runs on every private-cache insert.
        mode = tx.mode
        if mode is TxMode.NONE or mode is TxMode.FALLBACK:
            return None
        rs, ws = tx.read_set, tx.write_set
        if not rs and not ws:
            # Nothing tracked yet: an always-false predicate selects the
            # same LRU victim as no predicate, without the closure.
            return None
        # The sets are cleared in place across transactions, so one
        # closure per TxState lifetime suffices; the identity check
        # invalidates the cache if the TxState is ever swapped out.
        cached = self._pinned_preds.get(core)
        if cached is not None and cached[0] is rs:
            return cached[1]
        pred = lambda line: line in rs or line in ws  # noqa: E731
        self._pinned_preds[core] = (rs, pred)
        return pred

    def _collect_holders(
        self, core: int, line: int, is_write: bool, now: int
    ) -> List[HolderInfo]:
        holders: List[HolderInfo] = []
        provider = self.manager.priority_provider
        own_bit = 1 << core
        wmask = self.tx_writers.get(line, 0)
        m = wmask & ~own_bit
        while m:
            low = m & -m
            m -= low
            c = low.bit_length() - 1
            tx = self.tx_states[c]
            holders.append(
                HolderInfo(
                    c,
                    tx.mode,
                    provider.priority_of(tx, now),
                    holds_as_writer=True,
                )
            )
        if is_write:
            # Readers not already reported as writers, ascending core id.
            m = self.tx_readers.get(line, 0) & ~own_bit & ~wmask
            while m:
                low = m & -m
                m -= low
                c = low.bit_length() - 1
                tx = self.tx_states[c]
                holders.append(
                    HolderInfo(
                        c,
                        tx.mode,
                        provider.priority_of(tx, now),
                        holds_as_writer=False,
                    )
                )
        # HTMLock overflow signatures (§III-B): checked at the LLC while
        # an HTMLock-mode transaction is live.
        sig_owner = self.sig_owner
        if sig_owner >= 0 and sig_owner != core:
            if not any(h.core == sig_owner for h in holders):
                conflict = False
                as_writer = False
                if self.of_wr_sig.test(line):
                    conflict, as_writer = True, True
                elif self.of_rd_sig.test(line):
                    if is_write:
                        conflict = True
                    elif not self.directory.has_other_copies(line, core):
                        # Granting exclusive data would let the requester
                        # store silently; the paper rejects this case.
                        conflict = True
                if conflict:
                    tx = self.tx_states[sig_owner]
                    holders.append(
                        HolderInfo(
                            sig_owner,
                            tx.mode,
                            provider.priority_of(tx, now),
                            holds_as_writer=as_writer,
                            via_signature=True,
                        )
                    )
                    self.signature_rejects += 1
        return holders

    def access(
        self, core: int, addr: int, is_write: bool, now: int
    ) -> AccessResult:
        """Resolve one load/store; returns status + total latency."""
        line = addr >> 6
        tx = self.tx_states[core]
        l1 = self.l1s[core]
        stats = self.core_stats[core]

        # -- L1 hit with sufficient permission --------------------------
        st = l1.hit_state(line, is_write)
        if st != MESI.I:
            if is_write and st == MESI.E:
                l1.set_state(line, MESI.M)  # silent E->M upgrade
                if self.l2s is not None:
                    self.l2s[core].insert(line, MESI.M)  # keep inclusion
            stats.l1_hits += 1
            if tx.mode in _TRACK_MODES:
                self._track(core, line, is_write, tx)
            return AccessResult(GRANT, self._l1_hit_latency, hit=True)

        p = self.params
        stats.l1_misses += 1

        # -- Private middle cache (MESI-Three-Level-HTM mode) ------------
        if self.l2s is not None:
            l2 = self.l2s[core]
            st2 = l2.probe(line)
            if st2 != MESI.I and (not is_write or st2 in (MESI.E, MESI.M)):
                l2.touch(line)
                new_state = st2
                if is_write and st2 == MESI.E:
                    new_state = MESI.M
                    l2.set_state(line, MESI.M)
                elif is_write:
                    new_state = MESI.M
                # Promote into the L1; its victim silently drops back
                # (the copy remains in the inclusive middle cache).
                l1.insert(line, new_state, pinned=None)
                stats.l2_hits += 1
                if tx.mode in _TRACK_MODES:
                    self._track(core, line, is_write, tx)
                return AccessResult(
                    GRANT,
                    p.l1.hit_latency + p.l2private.hit_latency,
                    hit=True,
                )

        # -- Overflow pre-check (Fig. 6): need a way, all ways pinned ----
        # Transactional data is maintained at the outermost private
        # level: the L1 in two-level mode, the middle cache in
        # three-level mode (which is exactly why the ARM protocol added
        # it, §IV-A).
        outer = l1 if self.l2s is None else self.l2s[core]
        outer_params = p.l1 if self.l2s is None else p.l2private
        needs_insert = outer.probe(line) == MESI.I
        pinned = None
        if needs_insert:
            pinned = self._pinned_pred(core, tx)
            if (
                pinned is not None
                and outer.set_occupancy(line) >= outer_params.assoc
            ):
                victim = outer.find_unpinned_victim(line, pinned)
                if victim is None:
                    if tx.mode.is_lock_mode:
                        # HTMLock mode survives overflow: spill the LRU
                        # set entry into the LLC signatures and continue.
                        spill_line = outer.lru_line(line)
                        self.spill_to_signature(core, spill_line)
                        # charge the notification to the LLC (Fig. 5 (2))
                        extra = self.network.control_latency(
                            self.tile_of_core(core),
                            self.topology.home_tile(spill_line),
                        )
                        res = self.access(core, addr, is_write, now)
                        res.latency += extra
                        return res
                    return AccessResult(OVERFLOW, p.l1.hit_latency)

        # -- Miss path: to the home directory ----------------------------
        # Fused round-trip pricing: with stateless pricing and no chaos
        # hook armed, every message on this directory transaction is a
        # pure (class, hops) table lookup and the NoC counters are
        # order-insensitive sums — so all legs are priced inline from
        # the PR 5 latency tables and the counters flushed once per
        # access.  Chaos or link-contention modeling falls back to the
        # legacy per-message calls, preserving RNG draw order and link
        # reservation order exactly.  Modeled latencies, message counts
        # and orderings are identical either way.
        net = self.network
        home = line % self._n_tiles
        my_tile = self._tile_of[core]
        fused = net.chaos is None and net._stateless
        if fused:
            n_tiles = self._n_tiles
            hops_tbl = net._hops_table
            hops_rh = hops_tbl[my_tile * n_tiles + home]
            req_lat = p.l1.hit_latency + net._ctrl_by_hops[hops_rh]
            f_msgs = 1
            f_flits = net._ctrl_tail + 1
            f_hops = hops_rh
        else:
            req_lat = p.l1.hit_latency + net.control_latency(my_tile, home)
        entry = self.directory.entry(line)
        arrive = now + req_lat
        start = arrive if arrive > entry.busy_until else entry.busy_until

        # -- Fault injection: adversarial reject storm -------------------
        # The directory NACKs the speculative request outright, exactly
        # as if a higher-priority holder had won; the requester's policy
        # machinery (SelfAbort / RetryLater / WaitWakeup) must absorb it.
        if (
            self.chaos is not None
            and tx.mode is TxMode.HTM
            and len(self.core_stats) > 1
            and self.chaos.storm_reject()
        ):
            entry.busy_until = start + p.llc.hit_latency
            if fused:
                back = net._ctrl_by_hops[hops_rh]
                net.messages_sent += f_msgs + 1
                net.flits_sent += f_flits + net._ctrl_tail + 1
                net.hops_traversed += f_hops + hops_rh
            else:
                back = net.control_latency(home, my_tile)
            stats.rejects_received += 1
            phantom = (core + 1) % len(self.core_stats)
            self.core_stats[phantom].rejects_issued += 1
            return AccessResult(
                REJECT,
                (start - now) + p.llc.hit_latency + back,
                reject_holder=phantom,
            )

        # No-conflict pre-check: on the overwhelmingly common
        # conflict-free miss the full holder/priority/resolution
        # machinery allocates three objects just to conclude "granted,
        # no victims" — detect that case directly from the tracking
        # masks (two dict probes + integer compares).  Any other core's
        # bit, or live overflow signatures, takes the full resolution
        # path (which also owns the signature_rejects accounting).
        own_bit = 1 << core
        writers = self.tx_writers.get(line)
        conflict_free = not writers or writers == own_bit
        if conflict_free and is_write:
            readers = self.tx_readers.get(line)
            conflict_free = not readers or readers == own_bit
        if conflict_free and self.sig_owner >= 0 and self.sig_owner != core:
            conflict_free = False

        if conflict_free:
            self.manager.grants += 1
            victim_cores = ()
        else:
            holders = self._collect_holders(core, line, is_write, now)
            req = RequesterInfo(
                core,
                tx.mode,
                self.manager.priority_provider.priority_of(tx, now),
                is_write,
            )
            resolution: Resolution = self.manager.resolve(req, holders)

            if not resolution.granted:
                entry.busy_until = start + p.llc.hit_latency
                if fused:
                    back = net._ctrl_by_hops[hops_rh]
                    net.messages_sent += f_msgs + 1
                    net.flits_sent += f_flits + net._ctrl_tail + 1
                    net.hops_traversed += f_hops + hops_rh
                else:
                    back = net.control_latency(home, my_tile)
                latency = (start - now) + p.llc.hit_latency + back
                stats.rejects_received += 1
                self.core_stats[resolution.reject_holder].rejects_issued += 1
                return AccessResult(
                    REJECT,
                    latency,
                    reject_holder=resolution.reject_holder,
                    reject_by_lock=resolution.reject_by_lock,
                )

            # -- Granted: abort victims before moving data ---------------
            victim_cores = set()
            for vcore, reason in resolution.victims:
                victim_cores.add(vcore)
                self.abort_core(vcore, reason, now)

        owner_before = entry.owner
        llc_hit = self.llc.contains(line)
        data_lat = p.llc.hit_latency + (0 if llc_hit else p.memory.latency)

        if owner_before >= 0 and owner_before != core:
            owner_tile = self._tile_of[owner_before]
            if owner_before in victim_cores:
                # Fig. 3 NACK path: the aborting owner invalidated
                # itself; the directory sources the data.
                if fused:
                    hops_ho = hops_tbl[home * n_tiles + owner_tile]
                    data_lat += (
                        2 * net._ctrl_by_hops[hops_ho]
                        + net._data_by_hops[hops_rh]
                    )
                    f_msgs += 3
                    f_flits += 2 * (net._ctrl_tail + 1) + net._data_tail + 1
                    f_hops += 2 * hops_ho + hops_rh
                else:
                    data_lat += (
                        net.control_latency(home, owner_tile)
                        + net.control_latency(owner_tile, home)
                        + net.data_latency(home, my_tile)
                    )
            else:
                # Normal cache-to-cache forward.
                if fused:
                    hops_ho = hops_tbl[home * n_tiles + owner_tile]
                    hops_om = hops_tbl[owner_tile * n_tiles + my_tile]
                    data_lat += (
                        net._ctrl_by_hops[hops_ho]
                        + net._data_by_hops[hops_om]
                    )
                    f_msgs += 2
                    f_flits += net._ctrl_tail + net._data_tail + 2
                    f_hops += hops_ho + hops_om
                else:
                    data_lat += net.control_latency(
                        home, owner_tile
                    ) + net.data_latency(owner_tile, my_tile)
                if is_write:
                    self._purge_private(owner_before, line)
                    self.directory.remove_copy(line, owner_before)
                else:
                    self._demote_private(owner_before, line)
                    self.directory.demote_owner_to_sharer(line)
        else:
            if fused:
                data_lat += net._data_by_hops[hops_rh]
                f_msgs += 1
                f_flits += net._data_tail + 1
                f_hops += hops_rh
            else:
                data_lat += net.data_latency(home, my_tile)

        if is_write:
            # Inline directory.copies()/remove_copy() on the held entry
            # (set/list churn otherwise; entries are never replaced, so
            # the reference stays current across the nested calls above).
            owner_now = entry.owner
            if owner_now >= 0:
                if owner_now != core:
                    self._purge_private(owner_now, line)
                    entry.owner = -1
                    entry.sharers.discard(owner_now)
            elif entry.sharers:
                for c in [c for c in entry.sharers if c != core]:
                    self._purge_private(c, line)
                    entry.sharers.discard(c)

        # Inclusive LLC fill (may back-invalidate on eviction).
        if not llc_hit:
            llc_victim = self.llc.insert(line, MESI.M)
            if llc_victim is not None:
                self._back_invalidate(llc_victim.line, now)

        # Private fill / upgrade + directory stable state.
        if needs_insert:
            if is_write:
                new_state = MESI.M
            else:
                # Inline directory.has_other_copies on the held entry.
                owner_now = entry.owner
                if owner_now >= 0:
                    other = owner_now != core
                else:
                    sh = entry.sharers
                    other = bool(sh) and (core not in sh or len(sh) > 1)
                new_state = MESI.S if other else MESI.E
            victim = outer.insert(line, new_state, pinned)
            if victim is not None:
                if victim.was_pinned:
                    raise ProtocolInvariantError(
                        "pinned victim after overflow pre-check"
                    )
                if self.l2s is not None and l1.probe(victim.line) != MESI.I:
                    l1.invalidate(victim.line)  # inclusion
                self.directory.remove_copy(victim.line, core)
            if self.l2s is not None:
                # Fill the L1 too; its victim stays in the middle cache.
                l1.insert(line, new_state, pinned=None)
        else:
            new_state = MESI.M if is_write else outer.probe(line)
            outer.set_state(line, new_state)
            outer.touch(line)
            if self.l2s is not None:
                if l1.probe(line) != MESI.I:
                    l1.set_state(line, new_state)
                    l1.touch(line)
                else:
                    l1.insert(line, new_state, pinned=None)

        if is_write or new_state == MESI.E:
            # Inline directory.set_exclusive on the held entry.
            entry.owner = core
            entry.sharers.clear()
        elif entry.owner != core:
            # Inline directory.add_sharer on the held entry.
            if entry.owner >= 0:
                raise ProtocolInvariantError(
                    f"adding sharer {core} to owned line {line:#x}"
                )
            entry.sharers.add(core)

        # Blocking directory: the line stays in its transient state until
        # the requester's unblock arrives — i.e. the whole data path.
        entry.busy_until = start + data_lat
        if tx.mode in _TRACK_MODES and not tx.aborted:
            self._track(core, line, is_write, tx)

        if fused:
            net.messages_sent += f_msgs
            net.flits_sent += f_flits
            net.hops_traversed += f_hops
        latency = (start - now) + data_lat
        if self.paranoid:
            self.directory.check_swmr(
                self.l2s if self.l2s is not None else self.l1s
            )
        return AccessResult(GRANT, latency)

    # ------------------------------------------------------------------

    def _purge_private(self, core: int, line: int) -> None:
        """Invalidate a line from every private level of ``core``."""
        if self.l1s[core].probe(line) != MESI.I:
            self.l1s[core].invalidate(line)
        if self.l2s is not None and self.l2s[core].probe(line) != MESI.I:
            self.l2s[core].invalidate(line)

    def _demote_private(self, core: int, line: int) -> None:
        """Downgrade an owner to shared.

        Two-level: the L1 copy simply turns S.  Three-level reproduces
        the gem5 protocol's odd behaviour §IV-A criticizes: the L1 copy
        is *flushed to the middle cache* (invalidated) even though the
        remote request was only a load, leaving the middle-cache copy in
        S — subsequent local reads pay the L2 latency again.
        """
        if self.l2s is None:
            if self.l1s[core].probe(line) != MESI.I:
                self.l1s[core].set_state(line, MESI.S)
            return
        if self.l1s[core].probe(line) != MESI.I:
            self.l1s[core].invalidate(line)
        if self.l2s[core].probe(line) != MESI.I:
            self.l2s[core].set_state(line, MESI.S)
        else:  # pragma: no cover - inclusion guarantees presence
            self.l2s[core].insert(line, MESI.S)

    def _back_invalidate(self, line: int, now: int) -> None:
        """Inclusion victim: purge upstream copies; tx holders overflow."""
        # Read the held entry directly instead of materializing a set
        # copy per call; the snapshot list is still needed because the
        # purge/spill/abort calls below mutate the sharer set.
        e = self.directory.peek(line)
        if e is None:
            return
        if e.owner >= 0:
            cores = (e.owner,)
        elif e.sharers:
            cores = list(e.sharers)
        else:
            return
        for c in cores:
            tx = self.tx_states[c]
            in_tx_set = line in tx.read_set or line in tx.write_set
            if in_tx_set:
                if tx.mode.is_lock_mode:
                    self.spill_to_signature(c, line)
                    continue
                if tx.mode is TxMode.HTM and not tx.aborted:
                    self.abort_core(c, AbortReason.OVERFLOW, now)
                    continue  # abort path invalidated the written lines
            self._purge_private(c, line)
            self.directory.remove_copy(line, c)

    # ------------------------------------------------------------------
    # Validation helpers (tests, end-of-run sanity)
    # ------------------------------------------------------------------

    def publish_telemetry(self, registry) -> None:
        """Publish memory-system state under ``mem.*``/``dir.*``/``htm.*``.

        Pull-model: a census over current directory/cache state plus the
        cumulative counters the protocol already maintains — the access
        hot path carries no metric calls.
        """
        mem = registry.scope("mem")
        mem.set("memory_words", len(self.memory))
        # len(array) is O(1) on both backends; resident_lines() would
        # materialize a list per array on the packed one.
        mem.set("llc_lines", len(self.llc))
        for i, l1 in enumerate(self.l1s):
            mem.set(f"l1.{i}.lines", len(l1))
        if self.l2s is not None:
            for i, l2 in enumerate(self.l2s):
                mem.set(f"l2.{i}.lines", len(l2))

        # Directory bank census (address-interleaved home tiles).
        dir_scope = registry.scope("dir")
        dir_scope.set("entries", len(self.directory))
        per_bank: Dict[int, List[int]] = {}
        for line in self.directory.lines():
            entry = self.directory.peek(line)
            if entry is None or entry.is_idle:
                continue
            bank = self.topology.home_tile(line)
            stats = per_bank.setdefault(bank, [0, 0])
            stats[0] += 1
            stats[1] += len(entry.sharers)
        for bank, (lines, sharers) in sorted(per_bank.items()):
            bank_scope = dir_scope.scope(f"bank.{bank}")
            bank_scope.set("lines", lines)
            bank_scope.set("sharers", sharers)

        htm = registry.scope("htm")
        htm.set("tx_read_lines", len(self.tx_readers))
        htm.set("tx_write_lines", len(self.tx_writers))
        sig = htm.scope("signature")
        sig.set("spills", self.signature_spills)
        sig.set("rejects", self.signature_rejects)
        sig.set("owner", self.sig_owner)
        sig.set("rd_fill_bits", self.of_rd_sig.popcount)
        sig.set("wr_fill_bits", self.of_wr_sig.popcount)
        sig.set("rd_fp_rate", self.of_rd_sig.false_positive_rate())
        sig.set("wr_fp_rate", self.of_wr_sig.false_positive_rate())

    def check_quiescent(self) -> List[str]:
        """Invariants that must hold when no transaction is running."""
        problems: List[str] = []
        if self.tx_readers:
            problems.append(f"stale tx_readers: {len(self.tx_readers)} lines")
        if self.tx_writers:
            problems.append(f"stale tx_writers: {len(self.tx_writers)} lines")
        if self.sig_owner >= 0:
            problems.append(f"signatures still owned by {self.sig_owner}")
        if not self.of_rd_sig.empty or not self.of_wr_sig.empty:
            problems.append("signatures not cleared")
        try:
            # SWMR is checked at the outermost private level; in
            # three-level mode the L1s are strict subsets of the middle
            # caches (inclusion, checked below).
            self.directory.check_swmr(
                self.l2s if self.l2s is not None else self.l1s
            )
        except ProtocolInvariantError as exc:
            problems.append(str(exc))
        for i, l1 in enumerate(self.l1s):
            try:
                l1.check_invariants()
            except ProtocolInvariantError as exc:
                problems.append(f"L1[{i}]: {exc}")
        if self.l2s is not None:
            for i, l2 in enumerate(self.l2s):
                try:
                    l2.check_invariants()
                except ProtocolInvariantError as exc:
                    problems.append(f"L2[{i}]: {exc}")
                for line in list(self.l1s[i].resident_lines()):
                    if l2.probe(line) == MESI.I:
                        problems.append(
                            f"inclusion violated: L1[{i}] holds "
                            f"{line:#x} absent from its middle cache"
                        )
                        break
        return problems
