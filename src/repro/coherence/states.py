"""MESI stable states as cheap int constants.

Transient states of the blocking directory protocol are modeled by the
per-line ``busy_until`` serialization window in :class:`~repro.coherence.
directory.Directory` — while a line's transaction is in flight the
directory is "in a transient state" and later requests for the same line
queue behind it, exactly the effect the SLICC transient states produce.
"""

from __future__ import annotations


class MESI:
    """Stable cache-line states (per private L1)."""

    I = 0  # noqa: E741 - canonical protocol letter
    S = 1
    E = 2
    M = 3

    NAMES = {0: "I", 1: "S", 2: "E", 3: "M"}

    @staticmethod
    def name(state: int) -> str:
        return MESI.NAMES[state]

    @staticmethod
    def can_read(state: int) -> bool:
        return state != MESI.I

    @staticmethod
    def can_write(state: int) -> bool:
        return state in (MESI.E, MESI.M)

    @staticmethod
    def is_owner_state(state: int) -> bool:
        return state in (MESI.E, MESI.M)
