"""Minimal deterministic discrete-event engine.

Events are totally ordered by ``(time, vtime, seq)``:

* ``time`` — the cycle the event fires;
* ``vtime`` — the event's *virtual allocation time*: for ordinary
  events the cycle it was scheduled at, equal for every entry a single
  callback schedules, so same-cycle events fire in schedule order and
  runs are bit-reproducible regardless of hash seeds;
* ``seq`` — a monotonically increasing sequence number breaking the
  remaining ties by call order.

``vtime`` exists for **compute-burst coalescing** (repro.sim.cpu): when
a chain of per-op continuations is folded into one event, the surviving
event passes the time its *last elided predecessor* would have been
scheduled at as ``vtime``.  Same-cycle ordering against other cores'
events then matches the uncoalesced event chain exactly, because for
ordinary events sorting by (vtime, seq) *is* sorting by seq (alloc time
is monotone in seq).  Callbacks receive the current time; the vtime of
the event being processed is exposed as :attr:`SimEngine.now_vtime`.

Two storage tiers share that order (the hot-path layout):

* a **near-future bucket ring** (a calendar queue of
  :data:`RING_SPAN` slots, overridable per engine) holds events whose
  delay from ``now`` is under the span — the vast majority in a
  cycle-accurate CMP model (cache latencies, directory round trips,
  per-burst continuations, wake-ups).  Insertion is a plain
  ``list.append``; a bucket is sorted once when its cycle is drained
  (almost always already in order — Timsort makes that a linear scan)
  and walked with no heap sifting.  "Earliest non-empty slot >= t" is
  a plain slot walk — the dominant chained-dispatch path short-circuits
  it with an inline ``t + 1`` probe, so actual scans are rare (a
  per-slot occupancy bitmask was tried and lost; see
  :meth:`SimEngine._scan_ring_next`).
* a binary **heap** keeps the long-delay tail (back-off, timeouts).
  When the heap holds events for the cycle being drained they are
  spilled into the bucket first, so one sorted walk covers both tiers.

Both tiers carry **slab event records**: recycled 5-slot field arrays
``[time, vtime, seq, token, fn]`` drawn from a freelist, so the
``schedule_after_nocancel`` fast path allocates nothing at steady state
— a fired record goes back on the freelist and the next schedule reuses
it in place.  Records compare elementwise exactly like the tuples they
replace (``seq`` is globally unique, so a comparison never reaches the
token field), which keeps heap ordering and the bucket sort bit-exact.

A bucket is single-epoch by construction: an entry lands in slot
``when & (span - 1)`` only while ``now <= when < now + span``, and the
engine never advances past a pending ring event, so a slot never mixes
entries for two different cycles.

Cancellation uses the standard lazy-invalidate idiom (events carry a
token that can be voided).  Tokens report their cancellation back to
the engine so it can (a) keep an exact count of *live* events — see
:meth:`SimEngine.pending` — and (b) compact the heap when cancellation
storms leave it dominated by dead entries.  A token is consumed when
its event fires, making a late ``cancel()`` a harmless no-op instead of
an accounting leak.  Events that are never cancelled can skip the
per-event token allocation entirely via the ``*_nocancel`` scheduling
variants, which share one immortal token.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.common.errors import EventBudgetError, SimulationError

EventFn = Callable[[int], None]

#: Default ring geometry: delays in ``[0, RING_SPAN)`` are bucketed;
#: power of two so the slot index is a mask away.  64 is the measured
#: end-to-end winner of the 64/128/256 sweep (benchmarks/
#: bench_ring_span.py; numbers in docs/PERFORMANCE.md PR 8): although
#: ~80% of e2e events carry directory-round-trip delays past 64 cycles
#: and route via the heap, heapq's C push/pop on the resulting small
#: heap beats the wider ring's longer empty-slot scans — the "ring
#: sized for the common case" worry measured as a non-problem.
RING_SPAN = 64

#: Sentinel "infinitely far" time for empty-tier comparisons.
_NEVER = float("inf")

#: Heap compaction policy: rebuild when at least this many cancelled
#: entries are resident *and* they are the majority of the heap.
_COMPACT_MIN = 256


class EventToken:
    """Handle allowing a scheduled event to be cancelled lazily."""

    __slots__ = ("cancelled", "_engine")

    def __init__(self, engine: Optional["SimEngine"] = None) -> None:
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        # Consumed (already-fired) tokens have cancelled == True, so a
        # late cancel falls through without corrupting the live count.
        if not self.cancelled:
            self.cancelled = True
            eng = self._engine
            if eng is not None:
                eng._note_cancel()


#: Shared token for events that are never cancelled (the no-allocation
#: ``*_nocancel`` fast paths).  Deliberately not connected to any engine
#: and never consumed on fire.
_IMMORTAL = EventToken()

#: Slab record layout: [time, vtime, seq, token, fn].
_TOK = 3
_FN = 4


class SimEngine:
    """Calendar-queue + heap event scheduler in whole cycles."""

    __slots__ = (
        "_heap",
        "_ring",
        "_ring_count",
        "_ring_next",
        "_span",
        "_mask",
        "_free",
        "_seq",
        "now",
        "now_vtime",
        "events_processed",
        "_max_events",
        "_live",
        "_cancelled_resident",
        "heap_compactions",
        "ring_events",
        "heap_events",
    )

    def __init__(
        self, max_events: int = 200_000_000, ring_span: int = RING_SPAN
    ) -> None:
        if ring_span <= 0 or ring_span & (ring_span - 1):
            raise SimulationError(
                f"ring_span must be a positive power of two, got {ring_span}"
            )
        self._span = ring_span
        self._mask = ring_span - 1
        #: Long-delay tier of slab records [time, vtime, seq, token, fn].
        self._heap: List[list] = []
        #: Near-future tier: ``ring_span`` buckets of slab records.
        self._ring: List[list] = [[] for _ in range(ring_span)]
        self._ring_count = 0
        #: Earliest cycle holding a ring entry (``_NEVER`` when empty).
        self._ring_next = _NEVER
        #: Recycled slab records (freelist reuse — no per-event
        #: allocation at steady state).
        self._free: List[list] = []
        self._seq = 0
        self.now = 0
        #: vtime of the event currently being processed.
        self.now_vtime = 0
        self.events_processed = 0
        self._max_events = max_events
        #: Scheduled, not yet fired, not cancelled.
        self._live = 0
        #: Cancelled entries still physically resident.
        self._cancelled_resident = 0
        self.heap_compactions = 0
        #: Tier routing counters (profiling attribution).
        self.ring_events = 0
        self.heap_events = 0

    @property
    def ring_span(self) -> int:
        return self._span

    def reset(self) -> None:
        """Return to the just-constructed state (machine-pool reuse).

        Everything observable — clock, sequence counter, both storage
        tiers, live/cancelled accounting, telemetry counters — starts
        over, so a run on a reset engine is bit-identical to a run on a
        fresh one.  The slab freelist is deliberately *kept*: recycled
        records carry no observable state (token/fn are cleared on
        recycle) and reusing them across runs is the point of pooling.
        """
        self._heap.clear()
        for bucket in self._ring:
            bucket.clear()
        self._ring_count = 0
        self._ring_next = _NEVER
        self._seq = 0
        self.now = 0
        self.now_vtime = 0
        self.events_processed = 0
        self._live = 0
        self._cancelled_resident = 0
        self.heap_compactions = 0
        self.ring_events = 0
        self.heap_events = 0

    def trim_slab(self) -> None:
        """Drop the recycled-record freelist (parked-machine slimming)."""
        self._free.clear()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _insert(self, when: int, vtime: int, token: EventToken, fn: EventFn) -> None:
        free = self._free
        if free:
            rec = free.pop()
            rec[0] = when
            rec[1] = vtime
            rec[2] = self._seq
            rec[3] = token
            rec[4] = fn
        else:
            rec = [when, vtime, self._seq, token, fn]
        if when - self.now < self._span:
            self._ring[when & self._mask].append(rec)
            self._ring_count += 1
            self.ring_events += 1
            if when < self._ring_next:
                self._ring_next = when
        else:
            heapq.heappush(self._heap, rec)
            self.heap_events += 1
        self._seq += 1
        self._live += 1

    def schedule(self, when: int, fn: EventFn) -> EventToken:
        """Schedule ``fn`` to fire at absolute cycle ``when``."""
        if when < self.now:
            raise SimulationError(
                f"scheduling into the past: {when} < now {self.now}"
            )
        token = EventToken(self)
        self._insert(when, self.now, token, fn)
        return token

    def schedule_after(self, delay: int, fn: EventFn) -> EventToken:
        # Hottest cancellable entry point — inlines _insert (a relative
        # delay >= 0 can never land in the past, so no bounds re-check).
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        token = EventToken(self)
        now = self.now
        when = now + delay
        free = self._free
        if free:
            rec = free.pop()
            rec[0] = when
            rec[1] = now
            rec[2] = self._seq
            rec[3] = token
            rec[4] = fn
        else:
            rec = [when, now, self._seq, token, fn]
        if delay < self._span:
            self._ring[when & self._mask].append(rec)
            self._ring_count += 1
            self.ring_events += 1
            if when < self._ring_next:
                self._ring_next = when
        else:
            heapq.heappush(self._heap, rec)
            self.heap_events += 1
        self._seq += 1
        self._live += 1
        return token

    def schedule_after_nocancel(self, delay: int, fn: EventFn) -> None:
        """No-allocation ``schedule_after`` for never-cancelled events.

        The entry shares one immortal token and reuses a recycled slab
        record, so nothing is allocated and nothing is returned.  Use
        only when no code path can want to cancel the event; the event
        budget and the ``(time, vtime, seq)`` total order apply exactly
        as for the token path.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        now = self.now
        when = now + delay
        free = self._free
        if free:
            rec = free.pop()
            rec[0] = when
            rec[1] = now
            rec[2] = self._seq
            rec[3] = _IMMORTAL
            rec[4] = fn
        else:
            rec = [when, now, self._seq, _IMMORTAL, fn]
        if delay < self._span:
            self._ring[when & self._mask].append(rec)
            self._ring_count += 1
            self.ring_events += 1
            if when < self._ring_next:
                self._ring_next = when
        else:
            heapq.heappush(self._heap, rec)
            self.heap_events += 1
        self._seq += 1
        self._live += 1

    def schedule_after_virtual(
        self, delay: int, fn: EventFn, vdelay: int
    ) -> EventToken:
        """Schedule with an explicit virtual allocation time.

        The event fires at ``now + delay`` but orders against same-cycle
        events as if it had been scheduled at ``now + vdelay`` — the
        burst-coalescing hook (``vdelay`` is the offset of the last
        elided continuation; it may be negative for abort checkpoints
        replaying an already-past allocation point).  ``vdelay`` must
        not exceed ``delay``: an event cannot be allocated after it
        fires.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if vdelay > delay:
            raise SimulationError(f"vdelay {vdelay} > delay {delay}")
        token = EventToken(self)
        self._insert(self.now + delay, self.now + vdelay, token, fn)
        return token

    def schedule_after_virtual_nocancel(
        self, delay: int, fn: EventFn, vdelay: int
    ) -> None:
        """:meth:`schedule_after_virtual` on the shared immortal token."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if vdelay > delay:
            raise SimulationError(f"vdelay {vdelay} > delay {delay}")
        self._insert(self.now + delay, self.now + vdelay, _IMMORTAL, fn)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def pending(self) -> int:
        """Number of *live* (not-yet-fired, not-cancelled) events.

        Cancelled-but-resident entries are excluded — cancellation
        storms used to make this overcount until the corpses happened
        to be popped.
        """
        return self._live

    def resident(self) -> int:
        """Entries physically resident in heap + ring (live or dead)."""
        return len(self._heap) + self._ring_count

    # ------------------------------------------------------------------
    # Cancellation accounting & heap compaction
    # ------------------------------------------------------------------

    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled_resident += 1
        if (
            self._cancelled_resident >= _COMPACT_MIN
            and self._cancelled_resident * 2 >= len(self._heap)
        ):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop cancelled entries from the heap and re-heapify.

        Ring corpses are left alone: they drain within the ring span
        anyway.  Compaction preserves the (time, vtime, seq) order of
        live events, so it is invisible to the simulation.  Dropped
        records are recycled onto the slab freelist.
        """
        heap = self._heap
        free = self._free
        kept = []
        for rec in heap:
            if rec[_TOK].cancelled:
                rec[_TOK] = None
                rec[_FN] = None
                free.append(rec)
            else:
                kept.append(rec)
        removed = len(heap) - len(kept)
        if removed:
            heapq.heapify(kept)
            self._heap = kept
            self._cancelled_resident -= removed
            self.heap_compactions += 1
        # No removals: the corpses must stay where they are (they were
        # appended to `free` only when dropped, so nothing to undo).

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _scan_ring_next(self, start: int) -> None:
        """Recompute ``_ring_next``: earliest ring cycle >= ``start``.

        A plain slot walk.  An occupancy bitmask (bit per slot, rotate
        + lowest-set-bit probe) was tried here and *lost*: its
        per-event set/clear upkeep taxes the dominant chained-dispatch
        path, which never scans at all (the inline ``t + 1`` probe in
        the drain loop short-circuits it), while actual scans are rare
        and short — every resident entry fires within the span of its
        scheduling cycle, so the walk stops at the first non-empty
        slot.
        """
        if self._ring_count == 0:
            self._ring_next = _NEVER
            return
        ring = self._ring
        mask = self._mask
        for d in range(self._span):
            t = start + d
            if ring[t & mask]:
                self._ring_next = t
                return
        self._ring_next = _NEVER  # pragma: no cover - count/ring desync

    def _merge_heap_into_bucket(self, t: int, bucket: list) -> None:
        """Spill heap entries firing at cycle ``t`` into ``t``'s bucket.

        The bucket is then sorted once, giving the (vtime, seq) walk
        order across both tiers (records are [time, vtime, seq, ...]
        and time is uniform within a bucket, so list comparison orders
        by (vtime, seq) exactly).  ``_ring_next`` is pulled back to
        ``t`` so an exception unwind mid-drain leaves the unfired
        remainder discoverable.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] == t:
            bucket.append(pop(heap))
            self._ring_count += 1
        self._ring_next = t

    def run(self, until: Optional[int] = None) -> int:
        """Drain events (optionally stopping after cycle ``until``).

        With ``until``, every event up to and including cycle ``until``
        fires and the clock then *advances to exactly* ``until`` — a
        truncated run ends at the truncation point, not at the time of
        whatever event happened to fire last, so callers report the
        cycle they asked for and a subsequent :meth:`schedule_after` is
        anchored at the cutoff rather than a stale ``now``.  Returns
        ``self.now``.
        """
        # Hot loop: bind heap/ring/freelist and the budget to locals;
        # mirror the processed count back on every exit path (events
        # fired inside a callback raising included).  Cycles holding
        # exactly one event — the overwhelming case in a sparse
        # cycle-accurate model — take dedicated fast paths that skip the
        # spill/sort/rescan machinery; ordering is trivially exact
        # because there is nothing to order against.  Records are
        # recycled the moment their fields are read: a consumed bucket
        # position is never re-read, so a callback reusing the record
        # for a new event cannot alias a pending one.
        heap = self._heap
        ring = self._ring
        free = self._free
        mask = self._mask
        heappop = heapq.heappop
        budget = self._max_events
        processed = self.events_processed
        try:
            while True:
                t_ring = self._ring_next
                if heap:
                    t_heap = heap[0][0]
                    t = t_ring if t_ring <= t_heap else t_heap
                elif t_ring is not _NEVER:
                    t = t_ring
                else:
                    break
                if until is not None and t > until:
                    break

                bucket = ring[t & mask]
                if heap and heap[0][0] == t:
                    if not bucket and (
                        len(heap) == 1
                        or (
                            heap[1][0] != t
                            and (len(heap) < 3 or heap[2][0] != t)
                        )
                    ):
                        # Lone heap event this cycle: fire it in place.
                        # The ring is untouched (zero-delay events fn
                        # schedules min-update _ring_next themselves),
                        # so no bucket spill and no slot rescan.
                        rec = heappop(heap)
                        vtime = rec[1]
                        token = rec[3]
                        fn = rec[4]
                        free.append(rec)
                        if token.cancelled:
                            self._cancelled_resident -= 1
                            continue
                        if token is not _IMMORTAL:
                            token.cancelled = True  # consumed
                        self.now = t
                        self.now_vtime = vtime
                        self._live -= 1
                        processed += 1
                        if processed > budget:
                            raise EventBudgetError(budget, t)
                        fn(t)
                        if self._heap is not heap:
                            heap = self._heap
                        continue
                    self._merge_heap_into_bucket(t, bucket)
                if len(bucket) == 1:
                    # Lone ring entry: pop + fire, then recompute the
                    # next ring cycle from the occupancy mask.
                    rec = bucket.pop()
                    self._ring_count -= 1
                    vtime = rec[1]
                    token = rec[3]
                    fn = rec[4]
                    free.append(rec)
                    if token.cancelled:
                        self._cancelled_resident -= 1
                    else:
                        if token is not _IMMORTAL:
                            token.cancelled = True  # consumed
                        self.now = t
                        self.now_vtime = vtime
                        self._live -= 1
                        processed += 1
                        if processed > budget:
                            raise EventBudgetError(budget, t)
                        fn(t)
                    if bucket:
                        # fn appended zero-delay events for this cycle.
                        self._ring_next = t
                    elif self._ring_count == 0:
                        self._ring_next = _NEVER
                    elif ring[(t + 1) & mask]:
                        # Inline probe of the next cycle: chained
                        # delay-1 events (bursts) skip the mask scan.
                        self._ring_next = t + 1
                    else:
                        self._scan_ring_next(t + 2)
                    if self._heap is not heap:
                        heap = self._heap
                    continue
                if len(bucket) > 1:
                    # Near-sorted in the common case (alloc order), so
                    # this is a linear verification scan, not a sort.
                    bucket.sort()
                i = 0
                try:
                    # Walk by index: zero-delay events appended
                    # mid-drain extend this same list and are picked up
                    # in schedule order.
                    while i < len(bucket):
                        rec = bucket[i]
                        i += 1
                        vtime = rec[1]
                        token = rec[3]
                        fn = rec[4]
                        free.append(rec)
                        if token.cancelled:
                            self._cancelled_resident -= 1
                            continue
                        if token is not _IMMORTAL:
                            token.cancelled = True  # consumed
                        self.now = t
                        self.now_vtime = vtime
                        self._live -= 1
                        processed += 1
                        if processed > budget:
                            raise EventBudgetError(budget, t)
                        fn(t)
                finally:
                    # Keep unfired entries on an exception unwind so a
                    # resumed engine does not re-fire processed ones.
                    del bucket[:i]
                    self._ring_count -= i
                self._scan_ring_next(t + 1)
                if self._heap is not heap:
                    heap = self._heap  # compaction swapped the list
        finally:
            self.events_processed = processed
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Process exactly one live event; False when none are pending.

        Enforces the same event budget as :meth:`run` — a stepped
        simulation must not be allowed to livelock forever either.
        """
        while True:
            heap = self._heap
            t_ring = self._ring_next
            if heap:
                t_heap = heap[0][0]
                t = t_ring if t_ring <= t_heap else t_heap
            elif t_ring is not _NEVER:
                t = t_ring
            else:
                return False
            bucket = self._ring[t & self._mask]
            if heap and heap[0][0] == t:
                self._merge_heap_into_bucket(t, bucket)
            if len(bucket) > 1:
                bucket.sort()
            rec = bucket.pop(0)
            self._ring_count -= 1
            vtime = rec[1]
            token = rec[3]
            fn = rec[4]
            self._free.append(rec)
            if not bucket:
                self._scan_ring_next(t + 1)
            if token.cancelled:
                self._cancelled_resident -= 1
                continue
            if token is not _IMMORTAL:
                token.cancelled = True  # consumed
            self.now = t
            self.now_vtime = vtime
            self._live -= 1
            self.events_processed += 1
            if self.events_processed > self._max_events:
                raise EventBudgetError(self._max_events, self.now)
            fn(t)
            return True

    # ------------------------------------------------------------------

    def publish_telemetry(self, registry) -> None:
        """Publish scheduler counters under ``sim.*`` (pull-model)."""
        sim = registry.scope("sim")
        sim.set("now", self.now)
        sim.set("events_processed", self.events_processed)
        sim.set("events_pending", self.pending())
        sim.set("events_resident", self.resident())
        sim.set("ring_events", self.ring_events)
        sim.set("heap_events", self.heap_events)
        sim.set("heap_compactions", self.heap_compactions)
        sim.set("ring_span", self._span)
        sim.set("slab_free_records", len(self._free))
