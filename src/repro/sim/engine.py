"""Minimal deterministic discrete-event engine.

A binary heap of ``(time, seq, callback)`` with a monotonically
increasing sequence number as tie-breaker, so same-cycle events fire in
schedule order and runs are bit-reproducible regardless of hash seeds.
Callbacks receive the current time.  Cancellation is handled with the
standard lazy-invalidate idiom (events carry a token that can be voided)
to keep the heap allocation-light.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.errors import EventBudgetError, SimulationError

EventFn = Callable[[int], None]


class EventToken:
    """Handle allowing a scheduled event to be cancelled lazily."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimEngine:
    """Priority-queue event scheduler in whole cycles."""

    __slots__ = ("_heap", "_seq", "now", "events_processed", "_max_events")

    def __init__(self, max_events: int = 200_000_000) -> None:
        self._heap: List[Tuple[int, int, EventToken, EventFn]] = []
        self._seq = 0
        self.now = 0
        self.events_processed = 0
        self._max_events = max_events

    def schedule(self, when: int, fn: EventFn) -> EventToken:
        """Schedule ``fn`` to fire at absolute cycle ``when``."""
        if when < self.now:
            raise SimulationError(
                f"scheduling into the past: {when} < now {self.now}"
            )
        token = EventToken()
        heapq.heappush(self._heap, (when, self._seq, token, fn))
        self._seq += 1
        return token

    def schedule_after(self, delay: int, fn: EventFn) -> EventToken:
        # Hottest scheduler entry point — inlines schedule() (a relative
        # delay >= 0 can never land in the past, so no bounds re-check).
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        token = EventToken()
        heapq.heappush(self._heap, (self.now + delay, self._seq, token, fn))
        self._seq += 1
        return token

    def pending(self) -> int:
        """Number of not-yet-fired (possibly cancelled) events."""
        return len(self._heap)

    def run(self, until: Optional[int] = None) -> int:
        """Drain events (optionally stopping after cycle ``until``).

        With ``until``, every event up to and including cycle ``until``
        fires and the clock then *advances to exactly* ``until`` — a
        truncated run ends at the truncation point, not at the time of
        whatever event happened to fire last, so callers report the
        cycle they asked for and a subsequent :meth:`schedule_after` is
        anchored at the cutoff rather than a stale ``now``.  Returns
        ``self.now``.
        """
        # Hot loop: bind the heap, pop and budget to locals; mirror the
        # processed count back on every exit path (events fired inside a
        # callback raising included).
        heap = self._heap
        pop = heapq.heappop
        budget = self._max_events
        processed = self.events_processed
        try:
            if until is None:
                while heap:
                    when, _, token, fn = pop(heap)
                    if token.cancelled:
                        continue
                    self.now = when
                    processed += 1
                    if processed > budget:
                        raise EventBudgetError(budget, when)
                    fn(when)
            else:
                while heap and heap[0][0] <= until:
                    when, _, token, fn = pop(heap)
                    if token.cancelled:
                        continue
                    self.now = when
                    processed += 1
                    if processed > budget:
                        raise EventBudgetError(budget, when)
                    fn(when)
                if until > self.now:
                    self.now = until
        finally:
            self.events_processed = processed
        return self.now

    def publish_telemetry(self, registry) -> None:
        """Publish scheduler counters under ``sim.*`` (pull-model)."""
        sim = registry.scope("sim")
        sim.set("now", self.now)
        sim.set("events_processed", self.events_processed)
        sim.set("events_pending", self.pending())

    def step(self) -> bool:
        """Process exactly one live event; False when the heap is empty.

        Enforces the same event budget as :meth:`run` — a stepped
        simulation must not be allowed to livelock forever either.
        """
        heap = self._heap
        while heap:
            when, _, token, fn = heapq.heappop(heap)
            if token.cancelled:
                continue
            self.now = when
            self.events_processed += 1
            if self.events_processed > self._max_events:
                raise EventBudgetError(self._max_events, self.now)
            fn(when)
            return True
        return False
