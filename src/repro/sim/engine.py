"""Minimal deterministic discrete-event engine.

Events are totally ordered by ``(time, vtime, seq)``:

* ``time`` — the cycle the event fires;
* ``vtime`` — the event's *virtual allocation time*: for ordinary
  events the cycle it was scheduled at, equal for every entry a single
  callback schedules, so same-cycle events fire in schedule order and
  runs are bit-reproducible regardless of hash seeds;
* ``seq`` — a monotonically increasing sequence number breaking the
  remaining ties by call order.

``vtime`` exists for **compute-burst coalescing** (repro.sim.cpu): when
a chain of per-op continuations is folded into one event, the surviving
event passes the time its *last elided predecessor* would have been
scheduled at as ``vtime``.  Same-cycle ordering against other cores'
events then matches the uncoalesced event chain exactly, because for
ordinary events sorting by (vtime, seq) *is* sorting by seq (alloc time
is monotone in seq).  Callbacks receive the current time; the vtime of
the event being processed is exposed as :attr:`SimEngine.now_vtime`.

Two storage tiers share that order (the hot-path layout):

* a **near-future bucket ring** (a 64-slot calendar queue) holds events
  whose delay from ``now`` is under :data:`RING_SPAN` cycles — the vast
  majority in a cycle-accurate CMP model (cache latencies, per-burst
  continuations, wake-ups).  Insertion is a plain ``list.append``; a
  bucket is sorted once when its cycle is drained (almost always
  already in order — Timsort makes that a linear scan) and walked with
  no heap sifting.
* a binary **heap** of ``(time, vtime, seq, token, fn)`` keeps the
  long-delay tail (back-off, timeouts).  When the heap holds events for
  the cycle being drained they are spilled into the bucket first, so
  one sorted walk covers both tiers.

A bucket is single-epoch by construction: an entry lands in slot
``when & 63`` only while ``now <= when < now + RING_SPAN``, and the
engine never advances past a pending ring event, so a slot never mixes
entries for two different cycles.

Cancellation uses the standard lazy-invalidate idiom (events carry a
token that can be voided).  Tokens report their cancellation back to
the engine so it can (a) keep an exact count of *live* events — see
:meth:`SimEngine.pending` — and (b) compact the heap when cancellation
storms leave it dominated by dead entries.  A token is consumed when
its event fires, making a late ``cancel()`` a harmless no-op instead of
an accounting leak.  Events that are never cancelled can skip the
per-event token allocation entirely via the ``*_nocancel`` scheduling
variants, which share one immortal token.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.common.errors import EventBudgetError, SimulationError

EventFn = Callable[[int], None]

#: Ring geometry: delays in ``[0, RING_SPAN)`` are bucketed; power of
#: two so the slot index is a mask away.
RING_SPAN = 64
_RING_MASK = RING_SPAN - 1

#: Sentinel "infinitely far" time for empty-tier comparisons.
_NEVER = float("inf")

#: Heap compaction policy: rebuild when at least this many cancelled
#: entries are resident *and* they are the majority of the heap.
_COMPACT_MIN = 256


class EventToken:
    """Handle allowing a scheduled event to be cancelled lazily."""

    __slots__ = ("cancelled", "_engine")

    def __init__(self, engine: Optional["SimEngine"] = None) -> None:
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        # Consumed (already-fired) tokens have cancelled == True, so a
        # late cancel falls through without corrupting the live count.
        if not self.cancelled:
            self.cancelled = True
            eng = self._engine
            if eng is not None:
                eng._note_cancel()


#: Shared token for events that are never cancelled (the no-allocation
#: ``*_nocancel`` fast paths).  Deliberately not connected to any engine
#: and never consumed on fire.
_IMMORTAL = EventToken()


class SimEngine:
    """Calendar-queue + heap event scheduler in whole cycles."""

    __slots__ = (
        "_heap",
        "_ring",
        "_ring_count",
        "_ring_next",
        "_seq",
        "now",
        "now_vtime",
        "events_processed",
        "_max_events",
        "_live",
        "_cancelled_resident",
        "heap_compactions",
        "ring_events",
        "heap_events",
    )

    def __init__(self, max_events: int = 200_000_000) -> None:
        #: Long-delay tier: (time, vtime, seq, token, fn).
        self._heap: List[Tuple[int, int, int, EventToken, EventFn]] = []
        #: Near-future tier: 64 buckets of (vtime, seq, token, fn).
        self._ring: List[list] = [[] for _ in range(RING_SPAN)]
        self._ring_count = 0
        #: Earliest cycle holding a ring entry (``_NEVER`` when empty).
        self._ring_next = _NEVER
        self._seq = 0
        self.now = 0
        #: vtime of the event currently being processed.
        self.now_vtime = 0
        self.events_processed = 0
        self._max_events = max_events
        #: Scheduled, not yet fired, not cancelled.
        self._live = 0
        #: Cancelled entries still physically resident.
        self._cancelled_resident = 0
        self.heap_compactions = 0
        #: Tier routing counters (profiling attribution).
        self.ring_events = 0
        self.heap_events = 0

    def reset(self) -> None:
        """Return to the just-constructed state (machine-pool reuse).

        Everything observable — clock, sequence counter, both storage
        tiers, live/cancelled accounting, telemetry counters — starts
        over, so a run on a reset engine is bit-identical to a run on a
        fresh one.
        """
        self._heap.clear()
        for bucket in self._ring:
            bucket.clear()
        self._ring_count = 0
        self._ring_next = _NEVER
        self._seq = 0
        self.now = 0
        self.now_vtime = 0
        self.events_processed = 0
        self._live = 0
        self._cancelled_resident = 0
        self.heap_compactions = 0
        self.ring_events = 0
        self.heap_events = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _insert(self, when: int, vtime: int, token: EventToken, fn: EventFn) -> None:
        if when - self.now < RING_SPAN:
            self._ring[when & _RING_MASK].append((vtime, self._seq, token, fn))
            self._ring_count += 1
            self.ring_events += 1
            if when < self._ring_next:
                self._ring_next = when
        else:
            heapq.heappush(self._heap, (when, vtime, self._seq, token, fn))
            self.heap_events += 1
        self._seq += 1
        self._live += 1

    def schedule(self, when: int, fn: EventFn) -> EventToken:
        """Schedule ``fn`` to fire at absolute cycle ``when``."""
        if when < self.now:
            raise SimulationError(
                f"scheduling into the past: {when} < now {self.now}"
            )
        token = EventToken(self)
        self._insert(when, self.now, token, fn)
        return token

    def schedule_after(self, delay: int, fn: EventFn) -> EventToken:
        # Hottest cancellable entry point — inlines _insert (a relative
        # delay >= 0 can never land in the past, so no bounds re-check).
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        token = EventToken(self)
        now = self.now
        if delay < RING_SPAN:
            when = now + delay
            self._ring[when & _RING_MASK].append((now, self._seq, token, fn))
            self._ring_count += 1
            self.ring_events += 1
            if when < self._ring_next:
                self._ring_next = when
        else:
            heapq.heappush(self._heap, (now + delay, now, self._seq, token, fn))
            self.heap_events += 1
        self._seq += 1
        self._live += 1
        return token

    def schedule_after_nocancel(self, delay: int, fn: EventFn) -> None:
        """No-allocation ``schedule_after`` for never-cancelled events.

        The entry shares one immortal token, so no :class:`EventToken`
        is allocated and nothing is returned.  Use only when no code
        path can want to cancel the event; the event budget and the
        ``(time, vtime, seq)`` total order apply exactly as for the
        token path.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        now = self.now
        if delay < RING_SPAN:
            when = now + delay
            self._ring[when & _RING_MASK].append((now, self._seq, _IMMORTAL, fn))
            self._ring_count += 1
            self.ring_events += 1
            if when < self._ring_next:
                self._ring_next = when
        else:
            heapq.heappush(
                self._heap, (now + delay, now, self._seq, _IMMORTAL, fn)
            )
            self.heap_events += 1
        self._seq += 1
        self._live += 1

    def schedule_after_virtual(
        self, delay: int, fn: EventFn, vdelay: int
    ) -> EventToken:
        """Schedule with an explicit virtual allocation time.

        The event fires at ``now + delay`` but orders against same-cycle
        events as if it had been scheduled at ``now + vdelay`` — the
        burst-coalescing hook (``vdelay`` is the offset of the last
        elided continuation; it may be negative for abort checkpoints
        replaying an already-past allocation point).  ``vdelay`` must
        not exceed ``delay``: an event cannot be allocated after it
        fires.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if vdelay > delay:
            raise SimulationError(f"vdelay {vdelay} > delay {delay}")
        token = EventToken(self)
        self._insert(self.now + delay, self.now + vdelay, token, fn)
        return token

    def schedule_after_virtual_nocancel(
        self, delay: int, fn: EventFn, vdelay: int
    ) -> None:
        """:meth:`schedule_after_virtual` on the shared immortal token."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if vdelay > delay:
            raise SimulationError(f"vdelay {vdelay} > delay {delay}")
        self._insert(self.now + delay, self.now + vdelay, _IMMORTAL, fn)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def pending(self) -> int:
        """Number of *live* (not-yet-fired, not-cancelled) events.

        Cancelled-but-resident entries are excluded — cancellation
        storms used to make this overcount until the corpses happened
        to be popped.
        """
        return self._live

    def resident(self) -> int:
        """Entries physically resident in heap + ring (live or dead)."""
        return len(self._heap) + self._ring_count

    # ------------------------------------------------------------------
    # Cancellation accounting & heap compaction
    # ------------------------------------------------------------------

    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled_resident += 1
        if (
            self._cancelled_resident >= _COMPACT_MIN
            and self._cancelled_resident * 2 >= len(self._heap)
        ):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop cancelled entries from the heap and re-heapify.

        Ring corpses are left alone: they drain within RING_SPAN cycles
        anyway.  Compaction preserves the (time, vtime, seq) order of
        live events, so it is invisible to the simulation.
        """
        heap = self._heap
        kept = [e for e in heap if not e[3].cancelled]
        removed = len(heap) - len(kept)
        if removed:
            heapq.heapify(kept)
            self._heap = kept
            self._cancelled_resident -= removed
            self.heap_compactions += 1

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _scan_ring_next(self, start: int) -> None:
        """Recompute ``_ring_next``: earliest ring cycle >= ``start``."""
        if self._ring_count == 0:
            self._ring_next = _NEVER
            return
        ring = self._ring
        for d in range(RING_SPAN):
            t = start + d
            if ring[t & _RING_MASK]:
                self._ring_next = t
                return
        self._ring_next = _NEVER  # pragma: no cover - count/ring desync

    def _merge_heap_into_bucket(self, t: int, bucket: list) -> None:
        """Spill heap entries firing at cycle ``t`` into ``t``'s bucket.

        The bucket is then sorted once, giving the (vtime, seq) walk
        order across both tiers.  ``_ring_next`` is pulled back to ``t``
        so an exception unwind mid-drain leaves the unfired remainder
        discoverable.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] == t:
            _, vtime, seq, token, fn = pop(heap)
            bucket.append((vtime, seq, token, fn))
            self._ring_count += 1
        self._ring_next = t

    def run(self, until: Optional[int] = None) -> int:
        """Drain events (optionally stopping after cycle ``until``).

        With ``until``, every event up to and including cycle ``until``
        fires and the clock then *advances to exactly* ``until`` — a
        truncated run ends at the truncation point, not at the time of
        whatever event happened to fire last, so callers report the
        cycle they asked for and a subsequent :meth:`schedule_after` is
        anchored at the cutoff rather than a stale ``now``.  Returns
        ``self.now``.
        """
        # Hot loop: bind heap/ring and the budget to locals; mirror the
        # processed count back on every exit path (events fired inside a
        # callback raising included).  Cycles holding exactly one event —
        # the overwhelming case in a sparse cycle-accurate model — take
        # dedicated fast paths that skip the spill/sort/rescan machinery;
        # ordering is trivially exact because there is nothing to order
        # against.
        heap = self._heap
        ring = self._ring
        heappop = heapq.heappop
        budget = self._max_events
        processed = self.events_processed
        try:
            while True:
                t_ring = self._ring_next
                if heap:
                    t_heap = heap[0][0]
                    t = t_ring if t_ring <= t_heap else t_heap
                elif t_ring is not _NEVER:
                    t = t_ring
                else:
                    break
                if until is not None and t > until:
                    break

                bucket = ring[t & _RING_MASK]
                if heap and heap[0][0] == t:
                    if not bucket and (
                        len(heap) == 1
                        or (
                            heap[1][0] != t
                            and (len(heap) < 3 or heap[2][0] != t)
                        )
                    ):
                        # Lone heap event this cycle: fire it in place.
                        # The ring is untouched (zero-delay events fn
                        # schedules min-update _ring_next themselves),
                        # so no bucket spill and no slot rescan.
                        _, vtime, _s, token, fn = heappop(heap)
                        if token.cancelled:
                            self._cancelled_resident -= 1
                            continue
                        if token is not _IMMORTAL:
                            token.cancelled = True  # consumed
                        self.now = t
                        self.now_vtime = vtime
                        self._live -= 1
                        processed += 1
                        if processed > budget:
                            raise EventBudgetError(budget, t)
                        fn(t)
                        if self._heap is not heap:
                            heap = self._heap
                        continue
                    self._merge_heap_into_bucket(t, bucket)
                if len(bucket) == 1:
                    # Lone ring entry: pop + fire, then recompute the
                    # next ring cycle with one inline probe (the scan
                    # method is the fallback, not the common case).
                    vtime, _s, token, fn = bucket.pop()
                    self._ring_count -= 1
                    if token.cancelled:
                        self._cancelled_resident -= 1
                    else:
                        if token is not _IMMORTAL:
                            token.cancelled = True  # consumed
                        self.now = t
                        self.now_vtime = vtime
                        self._live -= 1
                        processed += 1
                        if processed > budget:
                            raise EventBudgetError(budget, t)
                        fn(t)
                    if bucket:
                        # fn appended zero-delay events for this cycle.
                        self._ring_next = t
                    elif self._ring_count == 0:
                        self._ring_next = _NEVER
                    elif ring[(t + 1) & _RING_MASK]:
                        self._ring_next = t + 1
                    else:
                        # Slots t and t+1 are known empty; every resident
                        # entry fires within RING_SPAN - 1 cycles of its
                        # scheduling time <= t, so scanning from t + 2
                        # still covers the whole window.
                        self._scan_ring_next(t + 2)
                    if self._heap is not heap:
                        heap = self._heap
                    continue
                if len(bucket) > 1:
                    # Near-sorted in the common case (alloc order), so
                    # this is a linear verification scan, not a sort.
                    bucket.sort()
                i = 0
                try:
                    # Walk by index: zero-delay events appended
                    # mid-drain extend this same list and are picked up
                    # in schedule order.
                    while i < len(bucket):
                        vtime, _, token, fn = bucket[i]
                        i += 1
                        if token.cancelled:
                            self._cancelled_resident -= 1
                            continue
                        if token is not _IMMORTAL:
                            token.cancelled = True  # consumed
                        self.now = t
                        self.now_vtime = vtime
                        self._live -= 1
                        processed += 1
                        if processed > budget:
                            raise EventBudgetError(budget, t)
                        fn(t)
                finally:
                    # Keep unfired entries on an exception unwind so a
                    # resumed engine does not re-fire processed ones.
                    del bucket[:i]
                    self._ring_count -= i
                self._scan_ring_next(t + 1)
                if self._heap is not heap:
                    heap = self._heap  # compaction swapped the list
        finally:
            self.events_processed = processed
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Process exactly one live event; False when none are pending.

        Enforces the same event budget as :meth:`run` — a stepped
        simulation must not be allowed to livelock forever either.
        """
        while True:
            heap = self._heap
            t_ring = self._ring_next
            if heap:
                t_heap = heap[0][0]
                t = t_ring if t_ring <= t_heap else t_heap
            elif t_ring is not _NEVER:
                t = t_ring
            else:
                return False
            bucket = self._ring[t & _RING_MASK]
            if heap and heap[0][0] == t:
                self._merge_heap_into_bucket(t, bucket)
            if len(bucket) > 1:
                bucket.sort()
            vtime, _, token, fn = bucket.pop(0)
            self._ring_count -= 1
            if not bucket:
                self._scan_ring_next(t + 1)
            if token.cancelled:
                self._cancelled_resident -= 1
                continue
            if token is not _IMMORTAL:
                token.cancelled = True  # consumed
            self.now = t
            self.now_vtime = vtime
            self._live -= 1
            self.events_processed += 1
            if self.events_processed > self._max_events:
                raise EventBudgetError(self._max_events, self.now)
            fn(t)
            return True

    # ------------------------------------------------------------------

    def publish_telemetry(self, registry) -> None:
        """Publish scheduler counters under ``sim.*`` (pull-model)."""
        sim = registry.scope("sim")
        sim.set("now", self.now)
        sim.set("events_processed", self.events_processed)
        sim.set("events_pending", self.pending())
        sim.set("events_resident", self.resident())
        sim.set("ring_events", self.ring_events)
        sim.set("heap_events", self.heap_events)
        sim.set("heap_compactions", self.heap_compactions)
