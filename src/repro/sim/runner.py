"""Run orchestration: (workload, system, machine params) -> RunStats.

Every run ends with sanity checks unless disabled: the functional
memory image must equal the workload's interleaving-independent
expectation (atomicity/durability of every transaction), and the
coherence layer must be quiescent with SWMR intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.common.errors import SimulationError
from repro.common.params import SystemParams, typical_params
from repro.common.stats import RunStats
from repro.core.policies import SystemSpec
from repro.sim.machine import Machine
from repro.workloads.base import Workload, WorkloadBuild


@dataclass
class RunConfig:
    """Everything needed to reproduce one simulation run."""

    spec: SystemSpec
    threads: int = 2
    scale: float = 1.0
    seed: int = 0
    params: SystemParams = field(default_factory=typical_params)
    check: bool = True
    max_cycles: Optional[int] = None
    #: Optional resilience knobs (repro.resilience): a FaultPlan to arm
    #: deterministic fault injection and/or a WatchdogConfig for the
    #: forward-progress watchdog.  Both default off (zero overhead).
    fault_plan: Optional[object] = None
    watchdog: Optional[object] = None
    #: Compute-burst coalescing in the CPU model (bit-identical results;
    #: False selects the reference per-op interpreter, mainly for the
    #: equivalence tests and interpreter debugging).
    coalesce: bool = True
    #: Optional observability session (repro.telemetry.Telemetry).
    #: None (the default) leaves the machine completely unwrapped —
    #: telemetry-off runs are bit-identical to the seed goldens.
    telemetry: Optional[object] = None
    #: Share WorkloadBuilds through the process-wide build cache: the
    #: generator RNG stream runs once per distinct (workload, threads,
    #: scale, seed) instead of once per run.  Builds are pure and never
    #: mutated, so results are bit-identical (pinned by the shared-vs-
    #: fresh golden test); False forces a fresh build.
    share_build: bool = True
    #: Machine reuse (repro.sim.pool): ``None`` (the default) acquires
    #: from the process-global pool and returns the machine after a
    #: clean run; ``False`` always constructs fresh; a MachinePool
    #: instance uses that pool.  Pooled runs are bit-identical to fresh
    #: ones (pinned by the pooled-vs-fresh equivalence suite).  The
    #: pool is bypassed when a fault plan is armed — the injector
    #: monkey-wires chaos hooks across components, so those runs build
    #: fresh machines.
    machine_pool: Optional[object] = None
    #: Cache tag/state array backend for every level: ``None`` keeps
    #: whatever ``params`` carries (the reference default), "packed" /
    #: "reference" force it via
    #: :meth:`~repro.common.params.SystemParams.with_cache_backend`.
    #: The differential suite pins both backends bit-identical.
    cache_backend: Optional[str] = None


def run_workload(
    workload: Union[Workload, WorkloadBuild],
    config: RunConfig,
) -> RunStats:
    """Build the machine, execute the workload, verify, return stats."""
    if isinstance(workload, WorkloadBuild):
        build = workload
        if len(build.programs) != config.threads:
            raise SimulationError(
                f"prebuilt workload has {len(build.programs)} programs, "
                f"config wants {config.threads} threads"
            )
    elif config.share_build:
        from repro.workloads.buildcache import shared_builds

        build = shared_builds().get(
            workload, config.threads, config.scale, config.seed
        )
    else:
        build = workload.build(config.threads, config.scale, config.seed)
    params = config.params
    if config.cache_backend is not None:
        params = params.with_cache_backend(config.cache_backend)
    pool = config.machine_pool
    if config.fault_plan is not None or pool is False:
        pool = None
    elif pool is None:
        from repro.sim.pool import global_pool

        pool = global_pool()
    if pool is not None:
        machine = pool.acquire(
            params,
            config.spec,
            build.programs,
            seed=config.seed,
            watchdog=config.watchdog,
            coalesce=config.coalesce,
        )
    else:
        machine = Machine(
            params,
            config.spec,
            build.programs,
            seed=config.seed,
            fault_plan=config.fault_plan,
            watchdog=config.watchdog,
            coalesce=config.coalesce,
        )
    telemetry = config.telemetry
    if telemetry is not None:
        telemetry.attach(machine)
    try:
        cycles = machine.run(max_cycles=config.max_cycles)
    except BaseException:
        # Pull metrics / close the timeline even on failed runs —
        # livelock diagnosis is telemetry's best customer — then
        # restore the wrapped callbacks.
        if telemetry is not None:
            telemetry.finalize(
                RunStats(
                    execution_cycles=machine.engine.now,
                    cores=machine.core_stats,
                ),
                build,
            )
            telemetry.detach()
        raise
    stats = RunStats(execution_cycles=cycles, cores=machine.core_stats)
    if telemetry is not None:
        telemetry.finalize(stats, build)
        telemetry.detach()
    if config.check:
        failures = build.verify(machine.memsys.memory)
        failures.extend(machine.memsys.check_quiescent())
        if machine.fallback_lock.held:
            failures.append(
                f"lock still held by core {machine.fallback_lock.holder}"
            )
        if machine.hl_arbiter.busy:
            failures.append(
                f"HTMLock mode still owned by core {machine.hl_arbiter.owner}"
            )
        stats.sanity_failures = failures
        if failures:
            raise SimulationError(
                f"run failed sanity checks ({build.name} on "
                f"{config.spec.name}, {config.threads} threads): "
                + "; ".join(failures[:5])
            )
    # Only a machine whose run (and checks) completed cleanly goes back
    # to the pool; any raise above drops it — its state is unknown.
    if pool is not None:
        pool.release(machine)
    return stats
