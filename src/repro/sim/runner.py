"""Run orchestration: (workload, system, machine params) -> RunStats.

Every run ends with sanity checks unless disabled: the functional
memory image must equal the workload's interleaving-independent
expectation (atomicity/durability of every transaction), and the
coherence layer must be quiescent with SWMR intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.common.errors import SimulationError
from repro.common.params import SystemParams, typical_params
from repro.common.stats import RunStats
from repro.core.policies import SystemSpec
from repro.sim.machine import Machine
from repro.workloads.base import Workload, WorkloadBuild


@dataclass
class RunConfig:
    """Everything needed to reproduce one simulation run."""

    spec: SystemSpec
    threads: int = 2
    scale: float = 1.0
    seed: int = 0
    params: SystemParams = field(default_factory=typical_params)
    check: bool = True
    max_cycles: Optional[int] = None
    #: Optional resilience knobs (repro.resilience): a FaultPlan to arm
    #: deterministic fault injection and/or a WatchdogConfig for the
    #: forward-progress watchdog.  Both default off (zero overhead).
    fault_plan: Optional[object] = None
    watchdog: Optional[object] = None
    #: Compute-burst coalescing in the CPU model (bit-identical results;
    #: False selects the reference per-op interpreter, mainly for the
    #: equivalence tests and interpreter debugging).
    coalesce: bool = True
    #: Optional observability session (repro.telemetry.Telemetry).
    #: None (the default) leaves the machine completely unwrapped —
    #: telemetry-off runs are bit-identical to the seed goldens.
    telemetry: Optional[object] = None


def run_workload(
    workload: Union[Workload, WorkloadBuild],
    config: RunConfig,
) -> RunStats:
    """Build the machine, execute the workload, verify, return stats."""
    if isinstance(workload, WorkloadBuild):
        build = workload
        if len(build.programs) != config.threads:
            raise SimulationError(
                f"prebuilt workload has {len(build.programs)} programs, "
                f"config wants {config.threads} threads"
            )
    else:
        build = workload.build(config.threads, config.scale, config.seed)
    machine = Machine(
        config.params,
        config.spec,
        build.programs,
        seed=config.seed,
        fault_plan=config.fault_plan,
        watchdog=config.watchdog,
        coalesce=config.coalesce,
    )
    telemetry = config.telemetry
    if telemetry is not None:
        telemetry.attach(machine)
    try:
        cycles = machine.run(max_cycles=config.max_cycles)
    except BaseException:
        # Pull metrics / close the timeline even on failed runs —
        # livelock diagnosis is telemetry's best customer — then
        # restore the wrapped callbacks.
        if telemetry is not None:
            telemetry.finalize(
                RunStats(
                    execution_cycles=machine.engine.now,
                    cores=machine.core_stats,
                ),
                build,
            )
            telemetry.detach()
        raise
    stats = RunStats(execution_cycles=cycles, cores=machine.core_stats)
    if telemetry is not None:
        telemetry.finalize(stats, build)
        telemetry.detach()
    if config.check:
        failures = build.verify(machine.memsys.memory)
        failures.extend(machine.memsys.check_quiescent())
        if machine.fallback_lock.held:
            failures.append(
                f"lock still held by core {machine.fallback_lock.holder}"
            )
        if machine.hl_arbiter.busy:
            failures.append(
                f"HTMLock mode still owned by core {machine.hl_arbiter.owner}"
            )
        stats.sanity_failures = failures
        if failures:
            raise SimulationError(
                f"run failed sanity checks ({build.name} on "
                f"{config.spec.name}, {config.threads} threads): "
                + "; ".join(failures[:5])
            )
    return stats
