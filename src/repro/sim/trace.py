"""Execution tracing and contention profiling.

Real simulator releases live or die by their observability; this module
provides an opt-in trace recorder for the machine's transaction
lifecycle and conflict events, plus a per-line contention profile.  The
recorder is **off by default** and costs nothing when disabled.

Since the introduction of :mod:`repro.telemetry`, the tracer no longer
wraps machine callbacks itself: it subscribes to the machine's
:class:`~repro.telemetry.events.TelemetryHub`, which installs one set
of wraps shared by every consumer (tracer, timeline, metrics).  That
makes :meth:`Tracer.attach` idempotent — attaching twice to the same
machine is a no-op — and gives :meth:`Tracer.detach` exact restore
semantics: when the last hub subscriber leaves, the original callbacks
are put back and the machine is wrap-free again.

Typical use::

    machine = Machine(params, spec, programs)
    tracer = Tracer(capacity=50_000)
    tracer.attach(machine)
    machine.run()
    print(tracer.render_tail(20))
    hot = tracer.contention_profile().hottest(5)
    tracer.detach()   # machine callbacks restored
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.telemetry.events import TelemetryEvent, TelemetryHub, TraceEvent

__all__ = [
    "ContentionProfile",
    "TraceEvent",
    "TraceRecord",
    "Tracer",
]


@dataclass(frozen=True)
class TraceRecord:
    time: int
    event: TraceEvent
    core: int
    detail: str = ""
    line: int = -1

    def render(self) -> str:
        extra = f" line={self.line:#x}" if self.line >= 0 else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time:>10d}] core{self.core:<2d} {self.event.value}{extra}{detail}"


@dataclass
class ContentionProfile:
    """Per-line conflict counts gathered from reject/abort events."""

    conflicts: Counter

    def hottest(self, n: int = 10) -> List[Tuple[int, int]]:
        return self.conflicts.most_common(n)

    @property
    def total(self) -> int:
        return sum(self.conflicts.values())


def _detail_for(ev: TelemetryEvent) -> str:
    """Human-readable detail string, matching the classic tracer output."""
    kind = ev.kind
    if kind is TraceEvent.REJECT:
        return f"by core{ev.arg}"
    if kind is TraceEvent.WAKEUP:
        return f"{ev.arg} waiter(s)"
    if ev.arg is None:
        return ""
    return str(ev.arg)


class Tracer:
    """Bounded in-memory trace of machine-level events."""

    def __init__(
        self,
        capacity: int = 100_000,
        events: Optional[set] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.filter = events  # None = record everything
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._line_conflicts: Counter = Counter()
        self._machine = None

    # ------------------------------------------------------------------

    def record(
        self,
        time: int,
        event: TraceEvent,
        core: int,
        detail: str = "",
        line: int = -1,
    ) -> None:
        if self.filter is not None and event not in self.filter:
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, event, core, detail, line))

    def note_conflict(self, line: int) -> None:
        self._line_conflicts[line] += 1

    def _on_event(self, ev: TelemetryEvent) -> None:
        if ev.kind is TraceEvent.REJECT and ev.line >= 0:
            self.note_conflict(ev.line)
        self.record(ev.time, ev.kind, ev.core, _detail_for(ev), ev.line)

    # ------------------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._machine is not None

    def attach(self, machine) -> "Tracer":
        """Wire this tracer into a machine (before ``machine.run()``).

        Idempotent: attaching again to the *same* machine is a no-op.
        Attaching to a different machine while attached raises — one
        tracer buffers one machine's history; detach first.
        """
        if self._machine is machine:
            return self
        if self._machine is not None:
            raise RuntimeError("tracer already attached")
        self._machine = machine
        TelemetryHub.of(machine).subscribe(self._on_event)
        return self

    def detach(self) -> None:
        """Unsubscribe; the hub restores wrapped callbacks when the
        last subscriber leaves.  Safe to call when not attached.
        Recorded history is kept."""
        if self._machine is None:
            return
        TelemetryHub.of(self._machine).unsubscribe(self._on_event)
        self._machine = None

    # ------------------------------------------------------------------

    def contention_profile(self) -> ContentionProfile:
        return ContentionProfile(Counter(self._line_conflicts))

    def counts(self) -> Dict[TraceEvent, int]:
        out: Counter = Counter(r.event for r in self.records)
        return dict(out)

    def events_for_core(self, core: int) -> List[TraceRecord]:
        return [r for r in self.records if r.core == core]

    def between(self, start: int, end: int) -> List[TraceRecord]:
        return [r for r in self.records if start <= r.time <= end]

    def render_tail(self, n: int = 50) -> str:
        tail = self.records[-n:]
        lines = [r.render() for r in tail]
        if self.dropped:
            lines.append(f"... ({self.dropped} records dropped at capacity)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)
