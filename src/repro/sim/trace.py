"""Execution tracing and contention profiling.

Real simulator releases live or die by their observability; this module
provides an opt-in trace recorder that hooks the machine's transaction
lifecycle and conflict events, plus a per-line contention profile.  The
recorder is **off by default** and costs nothing when disabled: the
Machine only calls into it through :func:`attach`, which monkey-wires
the relevant callbacks.

Typical use::

    machine = Machine(params, spec, programs)
    tracer = Tracer(capacity=50_000)
    tracer.attach(machine)
    machine.run()
    print(tracer.render_tail(20))
    hot = tracer.contention_profile().hottest(5)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple


class TraceEvent(str, Enum):
    TX_BEGIN = "tx_begin"
    TX_COMMIT = "tx_commit"
    TX_ABORT = "tx_abort"
    REJECT = "reject"
    WAKEUP = "wakeup"
    FALLBACK = "fallback"
    SWITCH_ATTEMPT = "switch_attempt"
    SWITCH_OK = "switch_ok"
    OVERFLOW = "overflow"
    SPILL = "spill"


@dataclass(frozen=True)
class TraceRecord:
    time: int
    event: TraceEvent
    core: int
    detail: str = ""
    line: int = -1

    def render(self) -> str:
        extra = f" line={self.line:#x}" if self.line >= 0 else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.time:>10d}] core{self.core:<2d} {self.event.value}{extra}{detail}"


@dataclass
class ContentionProfile:
    """Per-line conflict counts gathered from reject/abort events."""

    conflicts: Counter

    def hottest(self, n: int = 10) -> List[Tuple[int, int]]:
        return self.conflicts.most_common(n)

    @property
    def total(self) -> int:
        return sum(self.conflicts.values())


class Tracer:
    """Bounded in-memory trace of machine-level events."""

    def __init__(
        self,
        capacity: int = 100_000,
        events: Optional[set] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.filter = events  # None = record everything
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._line_conflicts: Counter = Counter()
        self._machine = None

    # ------------------------------------------------------------------

    def record(
        self,
        time: int,
        event: TraceEvent,
        core: int,
        detail: str = "",
        line: int = -1,
    ) -> None:
        if self.filter is not None and event not in self.filter:
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, event, core, detail, line))

    def note_conflict(self, line: int) -> None:
        self._line_conflicts[line] += 1

    # ------------------------------------------------------------------

    def attach(self, machine) -> None:
        """Wire this tracer into a machine (before ``machine.run()``)."""
        if self._machine is not None:
            raise RuntimeError("tracer already attached")
        self._machine = machine
        tracer = self

        # Wrap the victim-abort callback (covers every external abort).
        inner_abort = machine.memsys.abort_core

        def traced_abort(core, reason, now):
            cpu = machine.cpus[core]
            if cpu.tx.mode.in_transaction and not cpu.tx.aborted:
                tracer.record(
                    now, TraceEvent.TX_ABORT, core, detail=str(reason.value)
                )
            inner_abort(core, reason, now)

        machine.memsys.abort_core = traced_abort

        # Wrap the memory access path for rejects/overflows.
        memsys = machine.memsys
        inner_access = memsys.access

        def traced_access(core, addr, is_write, now):
            res = inner_access(core, addr, is_write, now)
            from repro.coherence.memsys import OVERFLOW, REJECT

            if res.status == REJECT:
                tracer.record(
                    now,
                    TraceEvent.REJECT,
                    core,
                    detail=f"by core{res.reject_holder}",
                    line=addr >> 6,
                )
                tracer.note_conflict(addr >> 6)
            elif res.status == OVERFLOW:
                tracer.record(
                    now, TraceEvent.OVERFLOW, core, line=addr >> 6
                )
            return res

        memsys.access = traced_access

        # Wrap wakeup delivery.
        inner_drain = machine.drain_wakeups

        def traced_drain(holder, now):
            pending = machine.wakeups.pending_for(holder)
            if pending:
                tracer.record(
                    now,
                    TraceEvent.WAKEUP,
                    holder,
                    detail=f"{pending} waiter(s)",
                )
            inner_drain(holder, now)

        machine.drain_wakeups = traced_drain

        # Per-CPU lifecycle hooks.
        for cpu in machine.cpus:
            self._wrap_cpu(cpu)

    def _wrap_cpu(self, cpu) -> None:
        tracer = self

        inner_xbegin = cpu._xbegin

        def traced_xbegin(now):
            tracer.record(now, TraceEvent.TX_BEGIN, cpu.core)
            inner_xbegin(now)

        cpu._xbegin = traced_xbegin

        inner_commit_done = cpu._commit_done

        def traced_commit_done(now, cat, kind):
            tracer.record(
                now, TraceEvent.TX_COMMIT, cpu.core, detail=kind
            )
            inner_commit_done(now, cat, kind)

        cpu._commit_done = traced_commit_done

        inner_local_abort = cpu._local_abort

        def traced_local_abort(now, reason):
            if not cpu.tx.aborted:
                tracer.record(
                    now, TraceEvent.TX_ABORT, cpu.core, detail=str(reason.value)
                )
            inner_local_abort(now, reason)

        cpu._local_abort = traced_local_abort

        inner_fallback = cpu._go_fallback

        def traced_fallback(now):
            tracer.record(now, TraceEvent.FALLBACK, cpu.core)
            inner_fallback(now)

        cpu._go_fallback = traced_fallback

        inner_stl = cpu._stl_result

        def traced_stl(now, granted, attempt_seq, **kwargs):
            tracer.record(
                now,
                TraceEvent.SWITCH_OK if granted else TraceEvent.SWITCH_ATTEMPT,
                cpu.core,
                detail="granted" if granted else "denied",
            )
            inner_stl(now, granted, attempt_seq, **kwargs)

        cpu._stl_result = traced_stl

    # ------------------------------------------------------------------

    def contention_profile(self) -> ContentionProfile:
        return ContentionProfile(Counter(self._line_conflicts))

    def counts(self) -> Dict[TraceEvent, int]:
        out: Counter = Counter(r.event for r in self.records)
        return dict(out)

    def events_for_core(self, core: int) -> List[TraceRecord]:
        return [r for r in self.records if r.core == core]

    def between(self, start: int, end: int) -> List[TraceRecord]:
        return [r for r in self.records if start <= r.time <= end]

    def render_tail(self, n: int = 50) -> str:
        tail = self.records[-n:]
        lines = [r.render() for r in tail]
        if self.dropped:
            lines.append(f"... ({self.dropped} records dropped at capacity)")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)
