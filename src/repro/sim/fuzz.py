"""Random-program fuzzing of the full simulator stack.

Complements the hypothesis property tests: generates seedable random
multi-threaded programs over a small hot address space (worst case for
the conflict machinery), runs them on a set of systems — optionally with
tiny caches to force overflows and paranoid SWMR checking — and verifies
the functional expectation on every run.  Any counterexample is reported
with its exact (seed, case) coordinates for replay.

Used by ``python -m repro.harness.cli fuzz`` and the stress test in
``tests/test_fuzz.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.params import CacheParams, SystemParams
from repro.common.rng import substream
from repro.harness.systems import get_system
from repro.htm.isa import Plain, Segment, Txn, compute, fault, load, store
from repro.sim.machine import Machine
from repro.workloads.base import expected_final_memory

DEFAULT_SYSTEMS = (
    "CGL",
    "Baseline",
    "LosaTM-SAFU",
    "LockillerTM-RAI",
    "LockillerTM-RRI",
    "LockillerTM-RWI",
    "LockillerTM-RWL",
    "LockillerTM-RWIL",
    "LockillerTM",
)


def fuzz_params(num_cores: int = 4) -> SystemParams:
    """Tiny overflow-prone machine for fuzzing."""
    return SystemParams(
        num_cores=num_cores,
        l1=CacheParams(4 * 64, 2, 2),
        llc=CacheParams(512 * 64, 16, 12),
    )


def random_programs(
    rng: np.random.Generator,
    max_threads: int = 4,
    max_segments: int = 5,
    max_ops: int = 8,
    n_lines: int = 6,
    fault_prob: float = 0.08,
) -> List[List[Segment]]:
    """One random program per thread over ``n_lines`` hot lines."""
    programs: List[List[Segment]] = []
    for _ in range(int(rng.integers(1, max_threads + 1))):
        segments: List[Segment] = []
        for _ in range(int(rng.integers(1, max_segments + 1))):
            ops = [compute(int(rng.integers(1, 12)))]
            for _ in range(int(rng.integers(1, max_ops + 1))):
                kind = int(rng.integers(0, 3))
                addr = int(rng.integers(0, n_lines)) * 64
                if kind == 0:
                    ops.append(load(addr))
                elif kind == 1:
                    ops.append(store(addr, int(rng.integers(1, 4))))
                else:
                    ops.append(compute(int(rng.integers(1, 6))))
            if rng.random() < 0.5:
                if rng.random() < fault_prob:
                    ops.insert(
                        1, fault(persistent=bool(rng.integers(0, 2)))
                    )
                segments.append(Txn(ops))
            else:
                segments.append(
                    Plain([op for op in ops if op[0] != 3])  # no plain faults
                )
        programs.append(segments)
    return programs


@dataclass
class FuzzFailure:
    case: int
    system: str
    seed: int
    detail: str


@dataclass
class FuzzReport:
    cases: int
    runs: int
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.cases} cases x systems = {self.runs} runs, "
            f"{len(self.failures)} failure(s)"
        ]
        for f in self.failures[:10]:
            lines.append(
                f"  case {f.case} on {f.system} (seed {f.seed}): {f.detail}"
            )
        return "\n".join(lines)


def run_fuzz(
    cases: int = 25,
    seed: int = 0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    paranoid: bool = False,
    params: Optional[SystemParams] = None,
) -> FuzzReport:
    report = FuzzReport(cases=cases, runs=0)
    for case in range(cases):
        rng = substream(seed, "fuzz", case)
        progs = random_programs(rng)
        expected = expected_final_memory(progs)
        n_txns = sum(
            1 for p in progs for s in p if isinstance(s, Txn)
        )
        for system in systems:
            report.runs += 1
            try:
                machine = Machine(
                    params or fuzz_params(max(4, len(progs))),
                    get_system(system),
                    progs,
                    seed=seed + case,
                )
                if paranoid:
                    machine.memsys.paranoid = True
                machine.run()
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                report.failures.append(
                    FuzzFailure(case, system, seed, f"crash: {exc!r}")
                )
                continue
            got: Dict[int, int] = {
                a: v for a, v in machine.memsys.memory.items() if v != 0
            }
            if got != expected:
                report.failures.append(
                    FuzzFailure(case, system, seed, "memory image mismatch")
                )
            commits = sum(cs.commits for cs in machine.core_stats)
            if commits != n_txns:
                report.failures.append(
                    FuzzFailure(
                        case,
                        system,
                        seed,
                        f"{commits} commits for {n_txns} transactions",
                    )
                )
            problems = machine.memsys.check_quiescent()
            if problems:
                report.failures.append(
                    FuzzFailure(case, system, seed, "; ".join(problems[:2]))
                )
    return report
