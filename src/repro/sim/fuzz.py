"""Random-program fuzzing of the full simulator stack.

Complements the hypothesis property tests: generates seedable random
multi-threaded programs over a small hot address space (worst case for
the conflict machinery), runs them on a set of systems — optionally with
tiny caches to force overflows and paranoid SWMR checking — and verifies
the functional expectation on every run.  Any counterexample is reported
with its exact (seed, case) coordinates for replay.

Used by ``python -m repro.harness.cli fuzz`` and the stress test in
``tests/test_fuzz.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.params import CacheParams, SystemParams
from repro.common.rng import substream
from repro.harness.systems import get_system
from repro.htm.isa import Plain, Segment, Txn, compute, fault, load, store
from repro.sim.machine import Machine
from repro.workloads.base import expected_final_memory

DEFAULT_SYSTEMS = (
    "CGL",
    "Baseline",
    "LosaTM-SAFU",
    "LockillerTM-RAI",
    "LockillerTM-RRI",
    "LockillerTM-RWI",
    "LockillerTM-RWL",
    "LockillerTM-RWIL",
    "LockillerTM",
)


def fuzz_params(num_cores: int = 4) -> SystemParams:
    """Tiny overflow-prone machine for fuzzing."""
    return SystemParams(
        num_cores=num_cores,
        l1=CacheParams(4 * 64, 2, 2),
        llc=CacheParams(512 * 64, 16, 12),
    )


def random_programs(
    rng: np.random.Generator,
    max_threads: int = 4,
    max_segments: int = 5,
    max_ops: int = 8,
    n_lines: int = 6,
    fault_prob: float = 0.08,
) -> List[List[Segment]]:
    """One random program per thread over ``n_lines`` hot lines."""
    programs: List[List[Segment]] = []
    for _ in range(int(rng.integers(1, max_threads + 1))):
        segments: List[Segment] = []
        for _ in range(int(rng.integers(1, max_segments + 1))):
            ops = [compute(int(rng.integers(1, 12)))]
            for _ in range(int(rng.integers(1, max_ops + 1))):
                kind = int(rng.integers(0, 3))
                addr = int(rng.integers(0, n_lines)) * 64
                if kind == 0:
                    ops.append(load(addr))
                elif kind == 1:
                    ops.append(store(addr, int(rng.integers(1, 4))))
                else:
                    ops.append(compute(int(rng.integers(1, 6))))
            if rng.random() < 0.5:
                if rng.random() < fault_prob:
                    ops.insert(
                        1, fault(persistent=bool(rng.integers(0, 2)))
                    )
                segments.append(Txn(ops))
            else:
                segments.append(
                    Plain([op for op in ops if op[0] != 3])  # no plain faults
                )
        programs.append(segments)
    return programs


@dataclass
class FuzzFailure:
    """One counterexample with its *complete* replay coordinates.

    ``seed`` is the campaign seed; ``machine_seed`` is the exact seed
    the failing :class:`Machine` was built with (``seed + case`` — the
    value :func:`replay_case` needs).  ``plan`` names the fault plan in
    force, if any.
    """

    case: int
    system: str
    seed: int
    detail: str
    machine_seed: int = 0
    plan: Optional[str] = None

    def replay_coords(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "case": self.case,
            "system": self.system,
            "machine_seed": self.machine_seed,
            "plan": self.plan,
        }


@dataclass
class FuzzReport:
    cases: int
    runs: int
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.cases} cases x systems = {self.runs} runs, "
            f"{len(self.failures)} failure(s)"
        ]
        for f in self.failures[:10]:
            where = f"case {f.case} on {f.system}"
            if f.plan:
                where += f" under plan {f.plan}"
            lines.append(
                f"  {where} (machine seed {f.machine_seed}): {f.detail}"
            )
        return "\n".join(lines)


def case_programs(seed: int, case: int) -> List[List[Segment]]:
    """The deterministic programs of fuzz case ``(seed, case)``."""
    return random_programs(substream(seed, "fuzz", case))


def _build_machine(
    progs: List[List[Segment]],
    system: str,
    seed: int,
    case: int,
    paranoid: bool,
    params: Optional[SystemParams],
    plan,
    watchdog,
) -> Machine:
    machine = Machine(
        params or fuzz_params(max(4, len(progs))),
        get_system(system),
        progs,
        seed=seed + case,
        fault_plan=plan,
        watchdog=watchdog,
    )
    machine.replay_info["case"] = case
    machine.replay_info["campaign_seed"] = seed
    if paranoid:
        machine.memsys.paranoid = True
    return machine


def _check_run(machine: Machine, expected, n_txns: int) -> List[str]:
    """Functional-oracle checks; returns failure details (empty = ok)."""
    details: List[str] = []
    got: Dict[int, int] = {
        a: v for a, v in machine.memsys.memory.items() if v != 0
    }
    if got != expected:
        details.append("memory image mismatch")
    commits = sum(cs.commits for cs in machine.core_stats)
    if commits != n_txns:
        details.append(f"{commits} commits for {n_txns} transactions")
    problems = machine.memsys.check_quiescent()
    if problems:
        details.append("; ".join(problems[:2]))
    return details


def replay_case(
    seed: int,
    case: int,
    system: str,
    plan=None,
    paranoid: bool = False,
    params: Optional[SystemParams] = None,
    watchdog=None,
) -> Machine:
    """Re-run one fuzz case bit-for-bit and return the finished machine.

    Takes the coordinates a :class:`FuzzFailure` records (campaign seed,
    case, system, plan) and rebuilds the exact same run — same programs,
    same machine seed, same injection schedule — for debugging.
    """
    progs = case_programs(seed, case)
    machine = _build_machine(
        progs, system, seed, case, paranoid, params, plan, watchdog
    )
    machine.run()
    return machine


def run_fuzz(
    cases: int = 25,
    seed: int = 0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    paranoid: bool = False,
    params: Optional[SystemParams] = None,
    plans: Sequence = (None,),
    watchdog=None,
) -> FuzzReport:
    """Fuzz campaign: ``cases`` random programs x ``systems`` x ``plans``.

    ``plans`` is a sequence of fault plans (``None`` = clean run); the
    functional oracle must hold under every one of them.
    """
    report = FuzzReport(cases=cases, runs=0)
    for case in range(cases):
        progs = case_programs(seed, case)
        expected = expected_final_memory(progs)
        n_txns = sum(1 for p in progs for s in p if isinstance(s, Txn))
        for system in systems:
            for plan in plans:
                plan_name = plan.name if plan is not None else None
                report.runs += 1

                def fail(detail: str) -> None:
                    report.failures.append(
                        FuzzFailure(
                            case,
                            system,
                            seed,
                            detail,
                            machine_seed=seed + case,
                            plan=plan_name,
                        )
                    )

                try:
                    machine = _build_machine(
                        progs, system, seed, case, paranoid, params,
                        plan, watchdog,
                    )
                    machine.run()
                except Exception as exc:  # noqa: BLE001 - report, don't crash
                    fail(f"crash: {exc!r}")
                    continue
                for detail in _check_run(machine, expected, n_txns):
                    fail(detail)
    return report


def run_chaos_fuzz(
    cases: int = 25,
    seed: int = 0,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    paranoid: bool = False,
    params: Optional[SystemParams] = None,
    plans: Optional[Sequence] = None,
    watchdog=None,
) -> FuzzReport:
    """Chaos mode: the fuzz oracle under the default fault campaign.

    Every run is armed with a fault plan and the forward-progress
    watchdog, so a genuine livelock surfaces as a structured
    :class:`~repro.common.errors.LivelockError` crash failure rather
    than a hung process.
    """
    from repro.resilience.faults import default_campaign
    from repro.resilience.watchdog import WatchdogConfig

    if plans is None:
        plans = default_campaign()
    if watchdog is None:
        watchdog = WatchdogConfig(horizon=2_000_000)
    return run_fuzz(
        cases=cases,
        seed=seed,
        systems=systems,
        paranoid=paranoid,
        params=params,
        plans=plans,
        watchdog=watchdog,
    )
