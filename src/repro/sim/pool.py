"""Reusable machine pool: amortize construction across runs.

Building a :class:`~repro.sim.machine.Machine` allocates the event
engine, the mesh/network model, per-core caches, the directory and all
of the HTM mechanism objects.  For a single run that cost is noise; for
a sweep executing thousands of cells per worker process it is pure
overhead, because every component now supports an explicit ``reset()``
contract returning it to its just-constructed state.

The pool keys machines by ``(spec, params)`` — both frozen dataclasses —
so a reused machine always has the exact geometry and policy wiring the
run needs; only the programs, seed and per-run knobs are re-wired by
:meth:`Machine.reset`.  Determinism is load-bearing and pinned by the
pooled-vs-fresh equivalence suite: a run on a pooled machine is
bit-identical to a run on a fresh one.

Machines are only returned to the pool after a *successful* run
(:func:`repro.sim.runner.run_workload` drops the machine on any error,
since a half-run machine's state is unknown), and fault-injected runs
never use the pool at all — the injector monkey-wires chaos hooks
across components.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.params import SystemParams
from repro.core.policies import SystemSpec
from repro.sim.machine import Machine


class MachinePool:
    """LIFO free-lists of reset-able machines, keyed by (spec, params)."""

    def __init__(self, max_per_key: int = 4) -> None:
        self.max_per_key = max_per_key
        self._free: Dict[Tuple[SystemSpec, SystemParams], List[Machine]] = {}
        self.builds = 0
        self.reuses = 0
        self.releases = 0

    def acquire(
        self,
        params: SystemParams,
        spec: SystemSpec,
        programs: List[list],
        seed: int = 0,
        watchdog=None,
        coalesce: bool = True,
    ) -> Machine:
        """A machine ready to run ``programs`` — reused when possible."""
        free = self._free.get((spec, params))
        if free:
            machine = free.pop()
            machine.reset(
                programs, seed=seed, watchdog=watchdog, coalesce=coalesce
            )
            self.reuses += 1
            return machine
        self.builds += 1
        return Machine(
            params,
            spec,
            programs,
            seed=seed,
            watchdog=watchdog,
            coalesce=coalesce,
        )

    def release(self, machine: Machine) -> None:
        """Return a machine whose run completed cleanly."""
        key = (machine.spec, machine.params)
        free = self._free.setdefault(key, [])
        if len(free) < self.max_per_key:
            # Drop the bulk run state now (event queues, caches,
            # directory, functional memory, CPUs) so parked machines
            # stay small; acquire() still runs the full reset()
            # contract before handing the machine out again.
            machine.engine.reset()
            machine.engine.trim_slab()
            machine.memsys.reset([])
            machine.cpus = []
            free.append(machine)
        self.releases += 1

    def clear(self) -> None:
        self._free.clear()


#: Process-wide pool used by the sweep cell runner; one per worker
#: process, so no cross-process state is ever shared.
_GLOBAL_POOL: MachinePool = MachinePool()


def global_pool() -> MachinePool:
    return _GLOBAL_POOL
