"""The tiled CMP machine: cores + memory subsystem + mechanisms, wired.

``Machine`` owns the event engine and every architectural component and
provides the cross-component operations the paper's mechanisms need:
external victim aborts, the subscribe-lock broadcast kill (classic
fallback), and wake-up delivery for the recovery mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import (
    ConfigError,
    DeadlockError,
    EventBudgetError,
    LivelockError,
    SimulationError,
)
from repro.common.params import SystemParams
from repro.common.stats import AbortReason, CoreStats
from repro.coherence.memsys import MemorySystem
from repro.core.conflict import build_conflict_manager
from repro.core.hlarbiter import HLArbiter
from repro.core.policies import SystemSpec
from repro.core.wakeup import WakeupTable
from repro.htm.fallback import LockManager
from repro.htm.txstate import TxMode
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology
from repro.sim.cpu import CPU
from repro.sim.engine import SimEngine

#: Lock variables live far outside any workload's address space.
_LOCK_LINE = 1 << 40


class Machine:
    """One simulated run's worth of hardware."""

    def __init__(
        self,
        params: SystemParams,
        spec: SystemSpec,
        programs: List[list],
        seed: int = 0,
        fault_plan=None,
        watchdog=None,
        coalesce: bool = True,
        ring_span: Optional[int] = None,
    ) -> None:
        if len(programs) > params.num_cores:
            raise ConfigError(
                f"{len(programs)} threads > {params.num_cores} cores"
            )
        self.params = params
        self.spec = spec
        self.seed = seed
        #: Compute-burst coalescing for the CPU stepping loops; results
        #: are bit-identical either way (the equivalence tests pin it) —
        #: False restores the reference one-event-per-op interpreter.
        self.coalesce = coalesce
        #: Forward-progress watchdog config (repro.resilience.watchdog.
        #: WatchdogConfig or None); armed in run().
        self.watchdog = watchdog
        #: Replay coordinates carried on structured errors; harnesses
        #: (fuzz, sweeps) add their own keys (case, workload, ...).
        self.replay_info: Dict[str, object] = {
            "seed": seed,
            "system": spec.name,
            "fault_plan": fault_plan.name if fault_plan is not None else None,
        }
        #: Near-future ring geometry override (power of two); None uses
        #: the engine default.  Exists for the ring-span sweep bench.
        self.engine = (
            SimEngine() if ring_span is None else SimEngine(ring_span=ring_span)
        )
        self.topology = MeshTopology(params.network)
        self.network = NetworkModel(self.topology, params.network)
        if params.network.model_contention:
            self.network.clock = lambda: self.engine.now
        self.core_stats = [CoreStats() for _ in range(len(programs))]
        self.manager = build_conflict_manager(spec)
        self.memsys = MemorySystem(
            params,
            self.topology,
            self.network,
            self.manager,
            self.core_stats,
            self.tile_of_core,
        )
        self.wakeups = WakeupTable()
        self.hl_arbiter = HLArbiter(
            self.engine, self.network, self.tile_of_core, arbiter_tile=0
        )
        lock_home = self.topology.home_tile(_LOCK_LINE)
        self.fallback_lock = LockManager(
            "fallback" if spec.use_htm else "cgl",
            _LOCK_LINE,
            lock_home,
            self.engine,
            self.network,
            self.tile_of_core,
        )
        #: CGL and the fallback path serialize on the same variable — the
        #: paper compares "coarse-grained locking with the same
        #: granularity of transactions".
        self.global_lock = self.fallback_lock

        #: Deterministic fault injector (repro.resilience.faults); None
        #: when no plan — or an *empty* plan — is armed, so default runs
        #: pay nothing and time identically.
        self.injector = None
        if fault_plan is not None and not fault_plan.empty:
            self.injector = fault_plan.injector(seed)
            self.injector.wire(self)

        self.cpus: List[CPU] = [
            CPU(i, self.tile_of_core(i), self, prog, seed)
            for i, prog in enumerate(programs)
        ]
        self.memsys.tx_states = [cpu.tx for cpu in self.cpus]
        self.memsys.abort_core = self.abort_externally
        self._finished = 0
        self.finish_times: List[Optional[int]] = [None] * len(programs)

    # ------------------------------------------------------------------

    def reset(
        self,
        programs: List[list],
        seed: int = 0,
        watchdog=None,
        coalesce: bool = True,
    ) -> None:
        """Rewire this machine for a fresh run (machine-pool reuse).

        Every component returns to its just-constructed state via its
        ``reset()`` contract; only the CPUs and per-core stats — whose
        objects escape into the returned :class:`RunStats` — are rebuilt.
        A reset machine must be bit-identical to a freshly constructed
        one (pinned by the pooled-vs-fresh equivalence suite).  Fault
        plans are deliberately unsupported here: the injector monkey-
        wires chaos hooks across components, so fault-injected runs
        always build fresh machines.
        """
        if len(programs) > self.params.num_cores:
            raise ConfigError(
                f"{len(programs)} threads > {self.params.num_cores} cores"
            )
        self.seed = seed
        self.coalesce = coalesce
        self.watchdog = watchdog
        self.replay_info = {
            "seed": seed,
            "system": self.spec.name,
            "fault_plan": None,
        }
        self.engine.reset()
        self.network.reset()
        self.core_stats = [CoreStats() for _ in range(len(programs))]
        self.manager.reset()
        self.memsys.reset(self.core_stats)
        self.wakeups.reset()
        self.hl_arbiter.reset()
        self.fallback_lock.reset()
        self.injector = None
        self.cpus = [
            CPU(i, self.tile_of_core(i), self, prog, seed)
            for i, prog in enumerate(programs)
        ]
        self.memsys.tx_states = [cpu.tx for cpu in self.cpus]
        self._finished = 0
        self.finish_times = [None] * len(programs)

    # ------------------------------------------------------------------

    def tile_of_core(self, core: int) -> int:
        return core  # one core per tile, identity placement

    # ------------------------------------------------------------------
    # Cross-component operations
    # ------------------------------------------------------------------

    def abort_externally(self, core: int, reason: AbortReason, now: int) -> None:
        """Kill ``core``'s speculative transaction (conflict loser)."""
        cpu = self.cpus[core]
        tx = cpu.tx
        if tx.mode.is_lock_mode:
            raise SimulationError(
                f"attempt to abort irrevocable core {core} in {tx.mode}"
            )
        if tx.mode is not TxMode.HTM or tx.aborted:
            return
        tx.mark_aborted(reason)
        self.memsys.discard_tx(core)
        self.drain_wakeups(core, now)
        self.wakeups.discard_waiter(core)
        cpu.force_unpark(now)
        # If not parked, the CPU's in-flight continuation observes the
        # abort flag at its next event; a coalesced compute burst may
        # need that observation point re-materialized.
        cpu.note_external_abort(now)

    def abort_all_htm(self, reason: AbortReason, exclude: int) -> None:
        """The classic fallback lock acquisition: every subscriber dies."""
        now = self.engine.now
        for cpu in self.cpus:
            if cpu.core != exclude and cpu.tx.mode is TxMode.HTM:
                self.abort_externally(cpu.core, reason, now)

    def drain_wakeups(self, holder: int, now: int) -> None:
        """Commit/abort-time flush of the holder's wake-up table entry."""
        waiters = self.wakeups.drain(holder)
        if not waiters:
            return
        self.core_stats[holder].wakeups_sent += len(waiters)
        holder_tile = self.tile_of_core(holder)
        for w in waiters:
            latency = self.network.control_latency(
                holder_tile, self.tile_of_core(w.core)
            )
            self.engine.schedule_after(max(1, latency), w.resume)

    def core_finished(self, core: int, now: int) -> None:
        self.finish_times[core] = now
        self._finished += 1

    # ------------------------------------------------------------------

    @property
    def all_done(self) -> bool:
        return self._finished == len(self.cpus)

    # ------------------------------------------------------------------
    # Telemetry (repro.telemetry) — pull-model metric publication
    # ------------------------------------------------------------------

    def publish_telemetry(self, registry) -> None:
        """Publish every component's counters into ``registry``.

        Called by :meth:`repro.telemetry.session.Telemetry.finalize`;
        safe at any point (during or after a run) and has no effect on
        machine state, so it can also drive live mid-run snapshots.
        """
        self.engine.publish_telemetry(registry)
        self.network.publish_telemetry(registry)
        self.memsys.publish_telemetry(registry)
        self.wakeups.publish_telemetry(registry)
        self.hl_arbiter.publish_telemetry(registry)
        self.fallback_lock.publish_telemetry(registry)
        nack = registry.scope("htm.nack")
        total_received = 0
        total_issued = 0
        for core, cs in enumerate(self.core_stats):
            cs.publish_telemetry(registry.scope(f"core.{core}"))
            nack.set(f"received.core.{core}", cs.rejects_received)
            nack.set(f"issued.core.{core}", cs.rejects_issued)
            total_received += cs.rejects_received
            total_issued += cs.rejects_issued
        nack.set("received.total", total_received)
        nack.set("issued.total", total_issued)
        run = registry.scope("run")
        run.set("cores", len(self.cpus))
        run.set("system", self.spec.name)
        run.set("seed", self.seed)
        run.set("finished_cores", self._finished)

    # ------------------------------------------------------------------
    # Forward-progress watchdog (repro.resilience.watchdog)
    # ------------------------------------------------------------------

    def diagnose(self) -> list:
        """Per-core progress snapshot (for LivelockError and debugging)."""
        from repro.resilience.watchdog import diagnose_machine

        return diagnose_machine(self)

    def _livelock(self, reason: str) -> LivelockError:
        return LivelockError(
            reason,
            now=self.engine.now,
            cores=self.diagnose(),
            replay=self.replay_info,
            pending_events=self.engine.pending(),
        )

    def _watchdog_tick(self, now: int) -> None:
        if self.all_done:
            return  # stop rescheduling; let the heap drain
        commits = sum(cs.commits for cs in self.core_stats)
        if commits > self._wd_commits:
            self._wd_commits = commits
            self._wd_stall_t0 = now
        elif now - self._wd_stall_t0 >= self.watchdog.horizon:
            raise self._livelock(
                f"no commit progress for {now - self._wd_stall_t0} cycles "
                f"(stall horizon {self.watchdog.horizon})"
            )
        self.engine.schedule_after(self.watchdog.period, self._watchdog_tick)

    def run(self, max_cycles: Optional[int] = None) -> int:
        """Execute to completion; returns total execution cycles."""
        for cpu in self.cpus:
            cpu.start()
        if self.watchdog is not None:
            self._wd_commits = -1
            self._wd_stall_t0 = 0
            self.engine.schedule(self.watchdog.period, self._watchdog_tick)
        try:
            self.engine.run(until=max_cycles)
        except EventBudgetError as exc:
            raise self._livelock(
                f"event budget exceeded ({exc.max_events} events)"
            ) from exc
        if not self.all_done:
            stuck = [c.core for c in self.cpus if not c.done]
            raise DeadlockError(
                f"cores {stuck} never finished "
                f"(t={self.engine.now}, pending={self.engine.pending()})"
            )
        end = max(t for t in self.finish_times if t is not None)
        # Barrier: early finishers idle until the last thread arrives.
        from repro.common.stats import TimeCat

        for core, t in enumerate(self.finish_times):
            if t is not None and end > t:
                self.core_stats[core].add_time(TimeCat.NON_TRAN, end - t)
        return end
