"""In-order core model executing micro-op programs.

One :class:`CPU` per hardware thread.  Each instruction is an event:
computes advance the clock by their cycle count, memory ops go through
:class:`~repro.coherence.memsys.MemorySystem` and schedule their
continuation after the returned latency.  Critical sections run under
one of four regimes, selected by the machine's :class:`SystemSpec`:

* **CGL** — acquire the global lock, execute non-speculatively, release.
* **best-effort HTM** (Listing 1) — speculative attempts with the
  requester-wins or recovery conflict manager; the fallback path takes
  the lock and (without HTMLock) kills every running transaction.
* **HTMLock** (Listing 1 greyed lines) — the fallback path enters TL
  mode: irrevocable but set-tracked, coexisting with HTM transactions.
* **switchingMode** (Listing 2 / Fig. 6) — an HTM transaction hitting a
  capacity overflow may switch to STL mode via LLC arbitration.

Execution-time billing follows the paper's categories; see
:mod:`repro.common.stats`.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.common.errors import SimulationError
from repro.common.rng import SplitMix64, derive_seed
from repro.common.stats import AbortReason, CoreStats, TimeCat
from repro.coherence.memsys import GRANT, OVERFLOW, REJECT, AccessResult
from repro.core.policies import RequesterPolicy
from repro.htm.isa import (
    OP_COMPUTE,
    OP_FAULT,
    OP_STORE,
    Plain,
    Txn,
    segment_bursts,
)
from repro.htm.txstate import TxMode, TxState


class CPU:
    """One in-order, single-issue core.

    Two stepping strategies share all control-flow machinery (entry,
    retry, abort, fallback, commit):

    * **per-op** (``coalesce=False``) — one engine event per micro-op,
      the reference semantics;
    * **burst** (``coalesce=True``, default) — runs of OP_COMPUTE are
      folded into the delay of the following memop's continuation
      (:func:`~repro.htm.isa.segment_bursts`), cutting event volume
      roughly in half on compute-heavy programs.  Bit-identity with
      per-op stepping is preserved by (a) passing the elided chain's
      last allocation point as the event's virtual time (engine
      ``vtime`` ordering), (b) billing elided instructions lazily via
      ``TxState.insts_at``, and (c) re-materializing the elided abort
      observation boundary in :meth:`note_external_abort`.
    """

    def __init__(self, core: int, tile: int, machine, program, seed: int) -> None:
        self.core = core
        self.tile = tile
        self.machine = machine
        self.engine = machine.engine
        self.memsys = machine.memsys
        self.spec = machine.spec
        self.htm_params = machine.params.htm
        self.program = program
        self.stats: CoreStats = machine.core_stats[core]
        self.tx = TxState(core)
        self.rng = SplitMix64(derive_seed(seed, "cpu", core))

        self.seg_idx = 0
        self.op_idx = 0
        self.done = False
        self.finish_time: Optional[int] = None

        self.retries_left = 0
        self.capacity_retries_left = 0
        self.attempts_this_txn = 0
        self.rejects_this_txn = 0
        self._attempt_t0 = 0
        #: Fault injector (repro.resilience.faults.FaultInjector) or
        #: None; built by the Machine before CPUs are constructed.
        self._chaos = machine.injector
        #: (attempt_seq, park_seq) while parked on a wake-up, else None.
        self._parked: Optional[Tuple[int, int]] = None
        self._park_seq = 0
        #: Fault ops already taken once (page mapped after first trip).
        self._faults_taken: Set[Tuple[int, int]] = set()

        #: Burst-coalesced stepping (see class docstring).  ``op_idx``
        #: indexes bursts instead of ops in this mode.
        self.coalesce: bool = machine.coalesce
        if self.coalesce:
            self._bursts = [segment_bursts(seg) for seg in program]
            self._step_fn = self._tx_step_burst
        else:
            self._bursts = None
            self._step_fn = self._tx_step
        #: Cancellable token of the in-flight burst continuation (only
        #: set while elided compute boundaries exist to checkpoint).
        self._burst_token = None
        #: Time the in-flight burst's chain was allocated (the vtime of
        #: its first elided boundary).
        self._burst_alloc = 0

    # ------------------------------------------------------------------
    # Billing helpers
    # ------------------------------------------------------------------

    def _bill(self, cat: TimeCat, cycles: int) -> None:
        if cycles > 0:
            self.stats.add_time(cat, cycles)

    # ------------------------------------------------------------------
    # Top-level program driver
    # ------------------------------------------------------------------

    def start(self) -> None:
        self.engine.schedule(0, self._advance)

    def _advance(self, now: int) -> None:
        if self.done:
            return
        if self.seg_idx >= len(self.program):
            self.done = True
            self.finish_time = now
            self.machine.core_finished(self.core, now)
            return
        seg = self.program[self.seg_idx]
        if isinstance(seg, Txn):
            self._txn_entry(now)
        elif self.coalesce:
            self._plain_entry(now)
        else:
            self.op_idx = 0
            self._plain_step(now, now)

    def _segment_done(self, now: int) -> None:
        self.seg_idx += 1
        self.op_idx = 0
        if self._chaos is not None:
            stall = self._chaos.stall()
            if stall > 0:
                # Transient core stall (noisy neighbour, DVFS glitch):
                # billed as plain time, outside any critical section.
                self._bill(TimeCat.NON_TRAN, stall)
                self.engine.schedule_after(stall, self._advance)
                return
        self._advance(now)

    # ------------------------------------------------------------------
    # Plain (non-transactional) segments
    # ------------------------------------------------------------------

    def _plain_step(self, now: int, span_t0: int) -> None:
        seg = self.program[self.seg_idx]
        ops = seg.ops
        if self.op_idx >= len(ops):
            self._bill(TimeCat.NON_TRAN, now - span_t0)
            self._segment_done(now)
            return
        op = ops[self.op_idx]
        kind = op[0]
        if kind == OP_COMPUTE:
            self.op_idx += 1
            self.engine.schedule_after(
                op[1], lambda t: self._plain_step(t, span_t0)
            )
        elif kind == OP_FAULT:
            self.op_idx += 1
            self.engine.schedule_after(
                self.htm_params.trap_latency,
                lambda t: self._plain_step(t, span_t0),
            )
        else:
            is_write = kind == OP_STORE
            res = self.memsys.access(self.core, op[1], is_write, now)
            if res.status == GRANT:
                self._apply_functional(op, is_write)
                self.op_idx += 1
                self.engine.schedule_after(
                    res.latency, lambda t: self._plain_step(t, span_t0)
                )
            elif res.status == REJECT:
                # Plain access bounced off an HTMLock-mode transaction:
                # hardware retry after a pause.
                delay = res.latency + self.htm_params.plain_retry_delay
                self.engine.schedule_after(
                    delay, lambda t: self._plain_step(t, span_t0)
                )
            else:  # pragma: no cover - plain accesses cannot overflow
                raise SimulationError("plain access reported overflow")

    def _apply_functional(self, op, is_write: bool) -> None:
        if is_write:
            self.stats.stores += 1
            self.memsys.functional_store(self.core, op[1], op[2])
        else:
            self.stats.loads += 1

    # -- coalesced plain stepping ------------------------------------------

    def _plain_entry(self, now: int) -> None:
        self.op_idx = 0
        bursts = self._bursts[self.seg_idx]
        if bursts and bursts[0][0]:
            c, _steps, _op, c_last = bursts[0]
            self.engine.schedule_after_virtual_nocancel(
                c, lambda t: self._plain_burst(t, now), c - c_last
            )
        else:
            # Leading memop (or empty segment): issue in this event,
            # exactly as per-op stepping does.
            self._plain_burst(now, now)

    def _plain_advance(self, now: int, lat: int, span_t0: int) -> None:
        """Schedule the next burst's terminal ``lat`` + computes away."""
        bursts = self._bursts[self.seg_idx]
        idx = self.op_idx
        if idx < len(bursts):
            c, _steps, _op, c_last = bursts[idx]
        else:
            c = 0
            c_last = 0
        self.engine.schedule_after_virtual_nocancel(
            lat + c,
            lambda t: self._plain_burst(t, span_t0),
            lat + c - c_last,
        )

    def _plain_burst(self, now: int, span_t0: int) -> None:
        bursts = self._bursts[self.seg_idx]
        if self.op_idx >= len(bursts):
            self._bill(TimeCat.NON_TRAN, now - span_t0)
            self._segment_done(now)
            return
        _c, _steps, op, _c_last = bursts[self.op_idx]
        if op is None:
            # Trailing compute-only burst: its cycles elapsed getting
            # here; the segment is done in this same event.
            self.op_idx += 1
            self._bill(TimeCat.NON_TRAN, now - span_t0)
            self._segment_done(now)
            return
        kind = op[0]
        if kind == OP_FAULT:
            self.op_idx += 1
            self._plain_advance(now, self.htm_params.trap_latency, span_t0)
            return
        is_write = kind == OP_STORE
        res = self.memsys.access(self.core, op[1], is_write, now)
        if res.status == GRANT:
            self._apply_functional(op, is_write)
            self.op_idx += 1
            self._plain_advance(now, res.latency, span_t0)
        elif res.status == REJECT:
            delay = res.latency + self.htm_params.plain_retry_delay
            self.engine.schedule_after_nocancel(
                delay, lambda t: self._plain_burst(t, span_t0)
            )
        else:  # pragma: no cover - plain accesses cannot overflow
            raise SimulationError("plain access reported overflow")

    # ------------------------------------------------------------------
    # Critical-section entry
    # ------------------------------------------------------------------

    def _txn_entry(self, now: int) -> None:
        if self.spec.is_cgl:
            self._cgl_start(now)
            return
        self.retries_left = self.htm_params.max_retries
        self.capacity_retries_left = self.htm_params.capacity_retries
        self.attempts_this_txn = 0
        self.rejects_this_txn = 0
        self._tx_try(now)

    # -- CGL -------------------------------------------------------------

    def _cgl_start(self, now: int) -> None:
        lock = self.machine.global_lock
        lock.acquire(
            self.core, now, lambda t: self._cgl_locked(t, wait_t0=now)
        )

    def _cgl_locked(self, now: int, wait_t0: int) -> None:
        self._bill(TimeCat.WAITLOCK, now - wait_t0)
        self.stats.tx_attempts += 1
        self.op_idx = 0
        if self.coalesce:
            bursts = self._bursts[self.seg_idx]
            if bursts and bursts[0][0]:
                c, _steps, _op, c_last = bursts[0]
                self.engine.schedule_after_virtual_nocancel(
                    c, lambda t: self._cgl_burst(t, now), c - c_last
                )
            else:
                self._cgl_burst(now, now)
        else:
            self._cgl_step(now, crit_t0=now)

    def _cgl_step(self, now: int, crit_t0: int) -> None:
        seg = self.program[self.seg_idx]
        ops = seg.ops
        if self.op_idx >= len(ops):
            self.machine.global_lock.release(self.core, now)
            self._bill(TimeCat.LOCK, now - crit_t0)
            self.stats.commit_latency_hist.record(now - crit_t0)
            self.stats.commits_lock += 1
            self._segment_done(now)
            return
        op = ops[self.op_idx]
        kind = op[0]
        if kind == OP_COMPUTE:
            self.op_idx += 1
            self.engine.schedule_after(
                op[1], lambda t: self._cgl_step(t, crit_t0)
            )
        elif kind == OP_FAULT:
            self.op_idx += 1
            self.engine.schedule_after(
                self.htm_params.trap_latency,
                lambda t: self._cgl_step(t, crit_t0),
            )
        else:
            is_write = kind == OP_STORE
            res = self.memsys.access(self.core, op[1], is_write, now)
            if res.status != GRANT:  # pragma: no cover - no HTM holders
                raise SimulationError("CGL access was not granted")
            self._apply_functional(op, is_write)
            self.op_idx += 1
            self.engine.schedule_after(
                res.latency, lambda t: self._cgl_step(t, crit_t0)
            )

    def _cgl_advance(self, now: int, lat: int, crit_t0: int) -> None:
        bursts = self._bursts[self.seg_idx]
        idx = self.op_idx
        if idx < len(bursts):
            c, _steps, _op, c_last = bursts[idx]
        else:
            c = 0
            c_last = 0
        self.engine.schedule_after_virtual_nocancel(
            lat + c,
            lambda t: self._cgl_burst(t, crit_t0),
            lat + c - c_last,
        )

    def _cgl_burst(self, now: int, crit_t0: int) -> None:
        bursts = self._bursts[self.seg_idx]
        at_end = self.op_idx >= len(bursts)
        if not at_end:
            _c, _steps, op, _c_last = bursts[self.op_idx]
            if op is None:
                self.op_idx += 1
                at_end = True
        if at_end:
            self.machine.global_lock.release(self.core, now)
            self._bill(TimeCat.LOCK, now - crit_t0)
            self.stats.commit_latency_hist.record(now - crit_t0)
            self.stats.commits_lock += 1
            self._segment_done(now)
            return
        kind = op[0]
        if kind == OP_FAULT:
            self.op_idx += 1
            self._cgl_advance(now, self.htm_params.trap_latency, crit_t0)
            return
        is_write = kind == OP_STORE
        res = self.memsys.access(self.core, op[1], is_write, now)
        if res.status != GRANT:  # pragma: no cover - no HTM holders
            raise SimulationError("CGL access was not granted")
        self._apply_functional(op, is_write)
        self.op_idx += 1
        self._cgl_advance(now, res.latency, crit_t0)

    # -- HTM attempt (Listing 1 loop) -------------------------------------

    def _tx_try(self, now: int) -> None:
        if self.done:
            return
        lock = self.machine.fallback_lock
        if not self.spec.htmlock and lock.held:
            # Listing 1 line 8-9: the lock is subscribed; spin until free.
            lock.wait_free(
                self.core, lambda t: self._tx_try_after_wait(t, now)
            )
            return
        self._xbegin(now)

    def _tx_try_after_wait(self, now: int, wait_t0: int) -> None:
        self._bill(TimeCat.WAITLOCK, now - wait_t0)
        self._tx_try(now)

    def _xbegin(self, now: int) -> None:
        self.tx.begin(TxMode.HTM, now)
        self.stats.tx_attempts += 1
        self._attempt_t0 = now
        self.op_idx = 0
        if self.coalesce:
            self._advance_burst(now, self.htm_params.xbegin_latency)
        else:
            self.engine.schedule_after(
                self.htm_params.xbegin_latency, self._tx_step
            )

    def _tx_step(self, now: int) -> None:
        if self.done:
            return
        tx = self.tx
        if tx.aborted:
            self._rollback(now)
            return
        seg = self.program[self.seg_idx]
        ops = seg.ops
        if self.op_idx >= len(ops):
            self._tx_commit(now)
            return
        op = ops[self.op_idx]
        kind = op[0]
        if kind == OP_COMPUTE:
            self.op_idx += 1
            tx.insts_in_attempt += op[1]
            self.engine.schedule_after(op[1], self._tx_step)
        elif kind == OP_FAULT:
            self._tx_fault(now, op)
        else:
            is_write = kind == OP_STORE
            res = self.memsys.access(self.core, op[1], is_write, now)
            if res.status == GRANT:
                self._apply_functional(op, is_write)
                self.op_idx += 1
                tx.insts_in_attempt += 1
                self.engine.schedule_after(res.latency, self._tx_step)
            elif res.status == REJECT:
                self._on_reject(now, res)
            else:
                self._on_overflow(now)

    # -- coalesced transactional stepping ----------------------------------

    def _advance_burst(self, now: int, lat: int) -> None:
        """Schedule the continuation issuing burst ``op_idx``'s terminal.

        ``lat`` is the memory/begin latency preceding the burst; the
        burst's elided computes extend the delay.  When boundaries are
        elided the entry is cancellable (an external abort may need to
        checkpoint at one of them) and the burst is exposed on the
        TxState for lazy instruction billing; otherwise the event is
        identical to per-op stepping and takes the no-allocation path.
        """
        bursts = self._bursts[self.seg_idx]
        idx = self.op_idx
        steps = ()
        c = 0
        c_last = 0
        if idx < len(bursts):
            c, steps, _op, c_last = bursts[idx]
        if steps:
            tx = self.tx
            tx.pending_anchor = now + lat
            tx.pending_steps = steps
            self._burst_alloc = now
            self._burst_token = self.engine.schedule_after_virtual(
                lat + c, self._tx_step_burst, lat + c - c_last
            )
        else:
            self.engine.schedule_after_nocancel(lat, self._tx_step_burst)

    def _tx_step_burst(self, now: int) -> None:
        if self.done:
            return
        tx = self.tx
        self._burst_token = None
        if tx.pending_anchor is not None:
            # Fold the lazily-billed computes of the burst that just
            # completed (every boundary is <= now here).
            for _off, n in tx.pending_steps:
                tx.insts_in_attempt += n
            tx.pending_anchor = None
            tx.pending_steps = ()
        if tx.aborted:
            self._rollback(now)
            return
        bursts = self._bursts[self.seg_idx]
        if self.op_idx >= len(bursts):
            self._tx_commit(now)
            return
        _c, _steps, op, _c_last = bursts[self.op_idx]
        if op is None:
            # Trailing compute-only burst: commit in this same event.
            self.op_idx += 1
            self._tx_commit(now)
            return
        kind = op[0]
        if kind == OP_FAULT:
            self._tx_fault(now, op)
            return
        is_write = kind == OP_STORE
        res = self.memsys.access(self.core, op[1], is_write, now)
        if res.status == GRANT:
            self._apply_functional(op, is_write)
            self.op_idx += 1
            tx.insts_in_attempt += 1
            self._advance_burst(now, res.latency)
        elif res.status == REJECT:
            self._on_reject(now, res)
        else:
            self._on_overflow(now)

    def note_external_abort(self, now: int) -> None:
        """Re-create the abort observation point a burst elided.

        Per-op, an externally-aborted transaction notices its abort
        flag at its next scheduled event.  With the burst's per-compute
        continuations elided, find the first boundary the per-op chain
        would still have fired at (strictly after ``now``, or at ``now``
        if the boundary's virtual allocation time says it would have
        fired after the aborting event) and schedule the rollback
        checkpoint there, carrying the boundary's original virtual time
        so same-cycle ordering of the rollback — billing, backoff RNG
        draw, retry scheduling — is bit-identical to per-op stepping.
        """
        tx = self.tx
        anchor = tx.pending_anchor
        if anchor is None:
            # Parked, blocked on arbitration, or the continuation is an
            # ordinary event: the legacy observation paths cover it.
            return
        vprev = self._burst_alloc
        target = None
        for off, _n in tx.pending_steps:
            b = anchor + off
            if b > now or (b == now and vprev >= self.engine.now_vtime):
                target = (b, vprev)
                break
            vprev = b
        if target is None:
            return  # past every elided boundary: the live event observes
        b, vtime = target
        tok = self._burst_token
        if tok is not None:
            tok.cancel()
            self._burst_token = None
        tx.pending_anchor = None
        tx.pending_steps = ()
        attempt_seq = tx.attempt_seq
        self.engine.schedule_after_virtual_nocancel(
            b - now,
            lambda t: self._abort_checkpoint(t, attempt_seq),
            vtime - now,
        )

    def _abort_checkpoint(self, now: int, attempt_seq: int) -> None:
        tx = self.tx
        if (
            self.done
            or tx.attempt_seq != attempt_seq
            or not tx.aborted
            or tx.mode is not TxMode.HTM
        ):
            return
        self._rollback(now)

    # -- faults ------------------------------------------------------------

    def _tx_fault(self, now: int, op) -> None:
        if self.tx.mode is TxMode.HTM:
            key = (self.seg_idx, self.op_idx)
            persistent = bool(op[1])
            if persistent or key not in self._faults_taken:
                # §III-C: the paper does not apply switchingMode to
                # exceptions; the extension flag evaluates that deferred
                # design (attempt an STL switch so the trap can be taken
                # non-speculatively).
                if (
                    self.spec.switching_on_faults
                    and not self.tx.switch_attempted
                ):
                    self.tx.switch_attempted = True
                    self.stats.switch_attempts += 1
                    attempt_seq = self.tx.attempt_seq
                    self.machine.hl_arbiter.request_stl(
                        self.core,
                        lambda t, granted: self._stl_result(
                            t,
                            granted,
                            attempt_seq,
                            deny_reason=AbortReason.FAULT,
                        ),
                    )
                    return
                self._faults_taken.add(key)
                self._local_abort(now, AbortReason.FAULT)
                return
            self.op_idx += 1
            self.tx.insts_in_attempt += 1
            if self.coalesce:
                self._advance_burst(now, 1)
            else:
                self.engine.schedule_after(1, self._tx_step)
        else:
            # Lock modes are non-speculative: take the trap and continue.
            self.op_idx += 1
            if self.coalesce:
                self._advance_burst(now, self.htm_params.trap_latency)
            else:
                self.engine.schedule_after(
                    self.htm_params.trap_latency, self._tx_step
                )

    # -- rejection handling (§III-A requester options) ----------------------

    def _on_reject(self, now: int, res: AccessResult) -> None:
        if self.tx.mode.is_lock_mode:  # pragma: no cover
            raise SimulationError("lock-mode transaction was rejected")
        self.rejects_this_txn += 1
        chaos = self._chaos
        if chaos is not None:
            if chaos.escape_exceeded(self.rejects_this_txn):
                # Bounded-retry escape hatch: too many rejects in this
                # transaction under fault injection — zero the retry
                # budget so the abort degrades to the lock fallback.
                self.retries_left = 0
                reason = (
                    AbortReason.CONFLICT_LOCK
                    if res.reject_by_lock
                    else AbortReason.CONFLICT_HTM
                )
                self.engine.schedule_after(
                    res.latency, lambda t: self._local_abort(t, reason)
                )
                return
            if chaos.drop_nack():
                # The NACK was lost in transit: the requester never
                # learns it was rejected and re-issues the access after
                # a hardware timeout.
                self.engine.schedule_after(
                    res.latency + chaos.plan.nack_loss_delay, self._step_fn
                )
                return
        policy = self.spec.requester_policy
        if policy is RequesterPolicy.SELF_ABORT:
            reason = (
                AbortReason.CONFLICT_LOCK
                if res.reject_by_lock
                else AbortReason.CONFLICT_HTM
            )
            self.engine.schedule_after(
                res.latency, lambda t: self._local_abort(t, reason)
            )
        elif policy is RequesterPolicy.RETRY_LATER:
            delay = (
                res.latency
                + self.htm_params.retry_delay
                + self.rng.below(self.htm_params.retry_delay)
            )
            self.engine.schedule_after(delay, self._step_fn)
        else:  # WAIT_WAKEUP
            self._park(now, res.reject_holder)

    def _park(self, now: int, holder: int) -> None:
        self._park_seq += 1
        park_seq = self._park_seq
        attempt_seq = self.tx.attempt_seq
        self._parked = (attempt_seq, park_seq)
        self.machine.wakeups.register(
            holder,
            self.core,
            attempt_seq,
            lambda t: self._unpark(t, park_seq, timeout=False),
        )
        if (
            self._chaos is not None
            and self._chaos.plan.disable_wakeup_timeout
        ):
            return  # test-only: strand the waiter if its wake-up is lost
        self.engine.schedule_after(
            self.htm_params.wakeup_timeout,
            lambda t: self._unpark(t, park_seq, timeout=True),
        )

    def _unpark(self, now: int, park_seq: int, timeout: bool) -> None:
        if self.done or self._parked is None:
            return
        attempt_seq, cur_park = self._parked
        if cur_park != park_seq or attempt_seq != self.tx.attempt_seq:
            return
        self._parked = None
        if timeout:
            self.stats.wakeup_timeouts += 1
        self._step_fn(now)  # re-issues the same op (or handles abort)

    def force_unpark(self, now: int) -> None:
        """External abort while parked: resume so the abort is processed."""
        if self._parked is not None:
            self._parked = None
            self.engine.schedule_after(1, self._step_fn)

    @property
    def is_parked(self) -> bool:
        """True while waiting on a wake-up message (diagnostics)."""
        return self._parked is not None

    # -- overflow / switchingMode (Fig. 6) ---------------------------------

    def _on_overflow(self, now: int) -> None:
        tx = self.tx
        if tx.mode.is_lock_mode:  # pragma: no cover - memsys spills inline
            raise SimulationError("lock-mode overflow escaped the spill path")
        if self.spec.switching and not tx.switch_attempted:
            tx.switch_attempted = True
            self.stats.switch_attempts += 1
            attempt_seq = tx.attempt_seq
            self.machine.hl_arbiter.request_stl(
                self.core,
                lambda t, granted: self._stl_result(t, granted, attempt_seq),
            )
            return
        self._local_abort(now, AbortReason.OVERFLOW)

    def _stl_result(
        self,
        now: int,
        granted: bool,
        attempt_seq: int,
        deny_reason: AbortReason = AbortReason.OVERFLOW,
    ) -> None:
        tx = self.tx
        stale = tx.attempt_seq != attempt_seq or tx.mode is not TxMode.HTM
        if tx.aborted or stale:
            # Killed while the application was in flight: give the slot
            # back if it was granted, then roll back as usual.
            if granted:
                self.machine.hl_arbiter.release(self.core)
            if tx.aborted and not stale:
                self._rollback(now)
            return
        if granted:
            self.stats.switch_successes += 1
            tx.switch_to_stl()
            self._step_fn(now)  # re-issue the blocked op in STL mode
        else:
            if deny_reason is AbortReason.FAULT:
                # The exception will be taken on the retry/fallback path;
                # one-shot faults are then resolved.
                self._faults_taken.add((self.seg_idx, self.op_idx))
            self._local_abort(now, deny_reason)

    # -- abort & retry -------------------------------------------------------

    def _local_abort(self, now: int, reason: AbortReason) -> None:
        tx = self.tx
        if tx.mode is not TxMode.HTM:  # pragma: no cover
            raise SimulationError(f"local abort in mode {tx.mode}")
        if not tx.aborted:
            tx.mark_aborted(reason)
            self.memsys.discard_tx(self.core)
            self.machine.drain_wakeups(self.core, now)
        self._rollback(now)

    def _rollback(self, now: int) -> None:
        tx = self.tx
        tok = self._burst_token
        if tok is not None:  # defensive: an in-flight burst dies with us
            tok.cancel()
            self._burst_token = None
        reason = tx.abort_reason or AbortReason.EXPLICIT
        self.stats.aborts[reason] += 1
        self._bill(TimeCat.ABORTED, now - self._attempt_t0)
        penalty = (
            self.htm_params.abort_base_penalty
            + self.htm_params.abort_per_write_penalty * tx.last_write_count
        )
        tx.clear()
        self.attempts_this_txn += 1
        if reason is AbortReason.OVERFLOW:
            # Capacity is near-deterministic: a short separate budget,
            # then the fallback path.
            self.capacity_retries_left -= 1
            if self.capacity_retries_left < 0:
                self._bill(TimeCat.ROLLBACK, penalty)
                self.engine.schedule_after(penalty, self._go_fallback)
                return
        else:
            # Conflict and exception aborts burn Listing 1's num_retries
            # (a persistent fault exhausts the budget attempt by attempt).
            self.retries_left -= 1
        if self.retries_left <= 0:
            self._bill(TimeCat.ROLLBACK, penalty)
            self.engine.schedule_after(penalty, self._go_fallback)
            return
        shift = min(self.attempts_this_txn, 6)
        cap = min(
            self.htm_params.backoff_base << shift, self.htm_params.backoff_cap
        )
        backoff = self.rng.below(cap) if cap > 0 else 0
        total = penalty + backoff
        self._bill(TimeCat.ROLLBACK, total)
        self.engine.schedule_after(total, self._tx_try)

    # -- fallback path --------------------------------------------------------

    def _go_fallback(self, now: int) -> None:
        if self.done:
            return
        self.stats.fallback_entries += 1
        lock = self.machine.fallback_lock
        lock.acquire(
            self.core, now, lambda t: self._fallback_locked(t, wait_t0=now)
        )

    def _fallback_locked(self, now: int, wait_t0: int) -> None:
        if self.spec.htmlock:
            # TL entry additionally needs the LLC's authorization
            # (contention with a live STL transaction, §III-C).
            self.machine.hl_arbiter.request_tl(
                self.core, lambda t: self._enter_tl(t, wait_t0)
            )
        else:
            self._bill(TimeCat.WAITLOCK, now - wait_t0)
            # Classic fallback: the lock write kills every subscriber.
            self.machine.abort_all_htm(AbortReason.MUTEX, exclude=self.core)
            self.tx.begin(TxMode.FALLBACK, now)
            self.stats.tx_attempts += 1
            self._attempt_t0 = now
            self.op_idx = 0
            if self.coalesce:
                bursts = self._bursts[self.seg_idx]
                if bursts and bursts[0][0]:
                    self._advance_burst(now, 0)
                else:
                    self._tx_step_burst(now)
            else:
                self._tx_step(now)

    def _enter_tl(self, now: int, wait_t0: int) -> None:
        self._bill(TimeCat.WAITLOCK, now - wait_t0)
        self.tx.begin(TxMode.TL, now)
        self.stats.tx_attempts += 1
        self._attempt_t0 = now
        self.op_idx = 0
        if self.coalesce:
            self._advance_burst(now, self.htm_params.xbegin_latency)
        else:
            self.engine.schedule_after(
                self.htm_params.xbegin_latency, self._tx_step
            )

    # -- commit ---------------------------------------------------------------

    def _tx_commit(self, now: int) -> None:
        tx = self.tx
        mode = tx.mode
        if mode is TxMode.HTM:
            self.memsys.publish(tx)
            self.memsys.retire_tx(self.core)
            self.engine.schedule_after(
                self.htm_params.commit_latency,
                lambda t: self._commit_done(t, TimeCat.HTM, "htm"),
            )
        elif mode is TxMode.STL:
            self.memsys.publish(tx)  # buffered while it was still HTM
            self.memsys.retire_tx(self.core)
            self.machine.hl_arbiter.release(self.core)
            self.engine.schedule_after(
                self.htm_params.commit_latency,
                lambda t: self._commit_done(t, TimeCat.SWITCH_LOCK, "switched"),
            )
        elif mode is TxMode.TL:
            self.memsys.retire_tx(self.core)
            self.machine.hl_arbiter.release(self.core)
            self.machine.fallback_lock.release(self.core, now)
            self.engine.schedule_after(
                self.htm_params.commit_latency,
                lambda t: self._commit_done(t, TimeCat.LOCK, "lock"),
            )
        elif mode is TxMode.FALLBACK:
            self.machine.fallback_lock.release(self.core, now)
            self.engine.schedule_after(
                1, lambda t: self._commit_done(t, TimeCat.LOCK, "lock")
            )
        else:  # pragma: no cover
            raise SimulationError(f"commit in mode {mode}")

    def _commit_done(self, now: int, cat: TimeCat, kind: str) -> None:
        self._bill(cat, now - self._attempt_t0)
        self.stats.commit_latency_hist.record(now - self._attempt_t0)
        if kind == "htm":
            self.stats.commits_htm += 1
        elif kind == "switched":
            self.stats.commits_switched += 1
        else:
            self.stats.commits_lock += 1
        self.tx.clear()
        self.machine.drain_wakeups(self.core, now)
        self._segment_done(now)
