"""Discrete-event simulation core: engine, CPU model, machine, runner."""

from repro.sim.engine import SimEngine
from repro.sim.machine import Machine
from repro.sim.runner import run_workload, RunConfig

__all__ = ["SimEngine", "Machine", "run_workload", "RunConfig"]
