"""LockillerTM's three mechanisms and the conflict-management framework.

* :mod:`repro.core.priority` — user-defined transaction priorities
  (insts-based, progression-based, none).
* :mod:`repro.core.conflict` — the recovery mechanism's selective-reject
  conflict managers (requester-wins baseline included for comparison).
* :mod:`repro.core.wakeup` — wake-up bookkeeping for rejected requests.
* :mod:`repro.core.signatures` — LLC overflow signatures (OfRdSig /
  OfWrSig) backing the HTMLock mechanism.
* :mod:`repro.core.hlarbiter` — LLC arbitration serializing entry into
  HTMLock mode (TL vs STL contention, switchingMode).
* :mod:`repro.core.policies` — system composition flags (Table II).
"""

from repro.core.policies import PriorityKind, RequesterPolicy, SystemSpec
from repro.core.priority import (
    InstsBasedPriority,
    NoPriority,
    PriorityProvider,
    ProgressionPriority,
)
from repro.core.signatures import BloomSignature
from repro.core.wakeup import WakeupTable
from repro.core.hlarbiter import HLArbiter
from repro.core.conflict import (
    ConflictManager,
    HolderInfo,
    RequesterInfo,
    RecoveryConflictManager,
    RequesterWinsManager,
    Resolution,
    build_conflict_manager,
)

__all__ = [
    "PriorityKind",
    "RequesterPolicy",
    "SystemSpec",
    "PriorityProvider",
    "InstsBasedPriority",
    "ProgressionPriority",
    "NoPriority",
    "BloomSignature",
    "WakeupTable",
    "HLArbiter",
    "ConflictManager",
    "RequesterWinsManager",
    "RecoveryConflictManager",
    "HolderInfo",
    "RequesterInfo",
    "Resolution",
    "build_conflict_manager",
]
