"""LLC arbitration of HTMLock-mode entry (§III-C, Fig. 6).

Only one transaction may be in HTMLock mode at any time.  Typical entry
(``TL``) already holds the fallback lock, but under switchingMode a
speculative transaction may try to *switch* into HTMLock mode (``STL``)
without the lock, so the LLC serializes both paths:

* an STL applicant is granted iff no transaction currently owns HTMLock
  mode (an atomic test-and-set at the LLC — the ``applyingHLA`` flow);
* a TL applicant (lock holder) queues until a live STL owner finishes.

The arbiter charges a control round trip from the applicant's tile to a
fixed arbiter tile, standing in for the paper's "lightweight centralized
arbiter module" for distributed LLCs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.common.errors import SimulationError


class HLArbiter:
    """Single-occupancy arbitration of HTMLock mode (TL vs STL entry)."""

    __slots__ = (
        "_engine",
        "_network",
        "_tile_of_core",
        "arbiter_tile",
        "owner",
        "owner_is_stl",
        "_tl_queue",
        "stl_grants",
        "stl_denials",
        "tl_grants",
    )

    def __init__(
        self,
        engine,
        network,
        tile_of_core: Callable[[int], int],
        arbiter_tile: int = 0,
    ) -> None:
        self._engine = engine
        self._network = network
        self._tile_of_core = tile_of_core
        self.arbiter_tile = arbiter_tile
        self.owner: Optional[int] = None
        self.owner_is_stl = False
        self._tl_queue: Deque[Tuple[int, Callable[[int], None]]] = deque()
        self.stl_grants = 0
        self.stl_denials = 0
        self.tl_grants = 0

    def reset(self) -> None:
        """Release ownership, drop the queue, zero counters (pool reuse)."""
        self.owner = None
        self.owner_is_stl = False
        self._tl_queue.clear()
        self.stl_grants = 0
        self.stl_denials = 0
        self.tl_grants = 0

    @property
    def busy(self) -> bool:
        return self.owner is not None

    def _latency_for(self, core: int) -> int:
        return self._network.round_trip(
            self._tile_of_core(core), self.arbiter_tile
        )

    def request_stl(
        self, core: int, on_result: Callable[[int, bool], None]
    ) -> None:
        """SwitchingMode application; ``on_result(time, granted)``.

        The grant decision is made *now* (the LLC serializes applications)
        but the applicant learns it one round trip later, matching the
        applyingHLA window in which the L1 blocks external requests.
        """
        latency = self._latency_for(core)
        if self.owner is None:
            self.owner = core
            self.owner_is_stl = True
            self.stl_grants += 1
            self._engine.schedule_after(latency, lambda t: on_result(t, True))
        else:
            self.stl_denials += 1
            self._engine.schedule_after(latency, lambda t: on_result(t, False))

    def request_tl(self, core: int, on_granted: Callable[[int], None]) -> None:
        """Typical HTMLock entry (fallback-lock holder executing hlbegin)."""
        latency = self._latency_for(core)
        if self.owner is None:
            self.owner = core
            self.owner_is_stl = False
            self.tl_grants += 1
            self._engine.schedule_after(latency, on_granted)
        else:
            self._tl_queue.append((core, on_granted))

    def publish_telemetry(self, registry) -> None:
        """Publish arbiter counters under ``lock_tx.arbiter.*``."""
        scope = registry.scope("lock_tx.arbiter")
        scope.set("stl_grants", self.stl_grants)
        scope.set("stl_denials", self.stl_denials)
        scope.set("tl_grants", self.tl_grants)
        scope.set("tl_queue_depth", len(self._tl_queue))
        scope.set("busy", self.busy)
        scope.set("owner", self.owner if self.owner is not None else -1)

    def release(self, core: int) -> None:
        """hlend: leave HTMLock mode; grant a queued TL applicant if any."""
        if self.owner != core:
            raise SimulationError(
                f"core {core} releasing HTMLock mode owned by {self.owner}"
            )
        self.owner = None
        self.owner_is_stl = False
        if self._tl_queue:
            nxt, cb = self._tl_queue.popleft()
            self.owner = nxt
            self.owner_is_stl = False
            self.tl_grants += 1
            self._engine.schedule_after(self._latency_for(nxt), cb)
