"""LLC overflow signatures for the HTMLock mechanism (§III-B, Fig. 5).

Inspired by LogTM-SE, the LLC holds two hash signatures — ``OfRdSig`` and
``OfWrSig`` — recording the lines of the HTMLock-mode transaction's read
and write sets that overflowed out of its L1.  Membership tests are
conservative (Bloom-filter false positives reject harmless requests but
never miss a real conflict), which is safe: a false positive only costs a
retry, a false negative would let an HTM transaction read or steal data
the irrevocable lock transaction depends on.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import ConfigError


def _mix64(x: int) -> int:
    x &= (1 << 64) - 1
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & ((1 << 64) - 1)
    return x ^ (x >> 31)


class BloomSignature:
    """Fixed-size Bloom filter over cache-line addresses.

    The bit array is a single Python int (cheap set/test via shifts);
    ``k`` index functions come from double hashing of a 64-bit mix.
    """

    __slots__ = ("bits", "hashes", "_field", "inserted", "_seed", "chaos_fp")

    def __init__(self, bits: int = 2048, hashes: int = 4, seed: int = 0) -> None:
        if bits <= 0 or bits & (bits - 1):
            raise ConfigError("signature size must be a positive power of two")
        if hashes <= 0:
            raise ConfigError("need at least one hash function")
        self.bits = bits
        self.hashes = hashes
        self._field = 0
        self.inserted = 0
        self._seed = seed
        #: Fault-injection hook: () -> bool, True forces a spurious
        #: membership hit.  Safe by construction — Bloom signatures are
        #: conservative, so extra false positives only cost retries.
        self.chaos_fp: Optional[Callable[[], bool]] = None

    def _indices(self, line: int):
        h = _mix64(line ^ (self._seed * 0x9E3779B97F4A7C15))
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1  # odd => full-period double hashing
        mask = self.bits - 1
        for i in range(self.hashes):
            yield (h1 + i * h2) & mask

    def insert(self, line: int) -> None:
        for idx in self._indices(line):
            self._field |= 1 << idx
        self.inserted += 1

    def test(self, line: int) -> bool:
        for idx in self._indices(line):
            if not (self._field >> idx) & 1:
                return (
                    self.chaos_fp is not None
                    and not self.empty
                    and self.chaos_fp()
                )
        return True

    def clear(self) -> None:
        self._field = 0
        self.inserted = 0

    @property
    def empty(self) -> bool:
        return self._field == 0

    @property
    def popcount(self) -> int:
        return bin(self._field).count("1")

    def false_positive_rate(self) -> float:
        """Current theoretical FP probability given the fill level."""
        fill = self.popcount / self.bits
        return fill**self.hashes
