"""Conflict managers: requester-wins baseline and the recovery mechanism.

The directory detects a conflict when an external request touches a line
in another core's transactional read/write set (or hits the HTMLock
overflow signatures).  The conflict manager then decides (Fig. 4):

* **grant** the request and abort the conflicting holders (classic
  requester-wins, or a lower-priority holder under recovery); or
* **reject** the request with a data-less REJECT/NACK response and leave
  every holder untouched (recovery, when a holder outranks the
  requester).

Abort *reasons* recorded on victims follow the Fig. 10 taxonomy and
depend on what the requester was: another HTM transaction (``mc``), an
HTMLock-mode lock transaction (``lock``), the classic fallback path
(``mutex``), or a plain non-transactional access (``non_tran``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ProtocolInvariantError
from repro.common.stats import AbortReason
from repro.core.policies import SystemSpec
from repro.core.priority import PriorityProvider, make_priority_provider
from repro.htm.txstate import TxMode


@dataclass(frozen=True)
class RequesterInfo:
    core: int
    mode: TxMode          # NONE for a plain access
    priority: int         # snapshot carried on the request (ARUSER)
    is_write: bool


@dataclass(frozen=True)
class HolderInfo:
    core: int
    mode: TxMode          # HTM, TL or STL
    priority: int         # live value at the directory
    holds_as_writer: bool  # conflict against the holder's write set?
    #: True when the conflict came from an LLC signature hit rather than
    #: an exact L1 set (can be a Bloom false positive; still rejected).
    via_signature: bool = False


@dataclass
class Resolution:
    granted: bool
    #: (victim core, abort reason) for each holder to abort — only when
    #: granted.
    victims: List[Tuple[int, AbortReason]] = field(default_factory=list)
    #: Core to park on / retry after, when rejected: the winning holder.
    reject_holder: int = -1
    #: Whether the winning holder is an irrevocable lock transaction;
    #: decides the reason a SelfAbort requester records.
    reject_by_lock: bool = False


def _victim_reason(req: RequesterInfo) -> AbortReason:
    """Fig. 10 attribution of an abort caused by this requester."""
    if req.mode is TxMode.HTM:
        return AbortReason.CONFLICT_HTM
    if req.mode in (TxMode.TL, TxMode.STL):
        return AbortReason.CONFLICT_LOCK
    if req.mode is TxMode.FALLBACK:
        return AbortReason.MUTEX
    return AbortReason.CONFLICT_NON_TRAN


class ConflictManager:
    """Decides the fate of a conflicting request."""

    def __init__(self, spec: SystemSpec) -> None:
        self.spec = spec
        self.priority_provider: PriorityProvider = make_priority_provider(
            spec.priority_kind
        )
        self.grants = 0
        self.rejects = 0

    def reset(self) -> None:
        """Zero the decision counters (machine-pool reuse); the spec and
        priority provider are stateless and survive."""
        self.grants = 0
        self.rejects = 0

    def resolve(
        self, req: RequesterInfo, holders: List[HolderInfo]
    ) -> Resolution:
        if not holders:
            self.grants += 1
            return Resolution(granted=True)
        self._validate(req, holders)
        res = self._decide(req, holders)
        if res.granted:
            self.grants += 1
        else:
            self.rejects += 1
        return res

    @staticmethod
    def _validate(req: RequesterInfo, holders: List[HolderInfo]) -> None:
        lock_holders = [h for h in holders if h.mode.is_lock_mode]
        if len(lock_holders) > 1:
            raise ProtocolInvariantError(
                "two HTMLock-mode transactions hold conflicting state: "
                f"{[h.core for h in lock_holders]}"
            )
        if any(h.core == req.core for h in holders):
            raise ProtocolInvariantError(
                f"core {req.core} conflicting with itself"
            )
        if req.mode.is_lock_mode and lock_holders:
            raise ProtocolInvariantError(
                "lock transaction conflicting with another lock transaction"
            )

    def _decide(
        self, req: RequesterInfo, holders: List[HolderInfo]
    ) -> Resolution:
        raise NotImplementedError


class RequesterWinsManager(ConflictManager):
    """Best-effort baseline: the requester always wins; holders abort.

    Lock-mode holders cannot exist in a baseline machine (the fallback
    path is exclusive), but the class still refuses to abort one if a
    mis-wired configuration produces it.
    """

    def _decide(
        self, req: RequesterInfo, holders: List[HolderInfo]
    ) -> Resolution:
        lock_holder = next((h for h in holders if h.mode.is_lock_mode), None)
        if lock_holder is not None:
            raise ProtocolInvariantError(
                "requester-wins machine saw an HTMLock-mode holder "
                f"(core {lock_holder.core})"
            )
        reason = _victim_reason(req)
        return Resolution(
            granted=True, victims=[(h.core, reason) for h in holders]
        )


class RecoveryConflictManager(ConflictManager):
    """The paper's recovery mechanism (Fig. 4 decision flow).

    * Irrevocable lock-mode holders (TL/STL, including signature hits)
      always win: the request is rejected.
    * A plain (non-transactional) or lock-mode *requester* always beats
      speculative holders — commercial HTMs guarantee strong isolation,
      and the HTMLock-mode transaction carries the top global priority.
    * Between speculative transactions, the user-defined priority
      decides; the requester must outrank **every** holder to win, else
      the request is withdrawn and the state recovered.
    """

    def _decide(
        self, req: RequesterInfo, holders: List[HolderInfo]
    ) -> Resolution:
        lock_holder = next((h for h in holders if h.mode.is_lock_mode), None)
        if lock_holder is not None:
            return Resolution(
                granted=False,
                reject_holder=lock_holder.core,
                reject_by_lock=True,
            )
        if req.mode is not TxMode.HTM:
            # Plain access, classic fallback, or a lock transaction:
            # speculative holders lose unconditionally.
            reason = _victim_reason(req)
            return Resolution(
                granted=True, victims=[(h.core, reason) for h in holders]
            )
        beats = self.priority_provider.beats
        blocking: Optional[HolderInfo] = None
        for h in holders:
            if not beats(req.priority, req.core, h.priority, h.core):
                if blocking is None or beats(
                    h.priority, h.core, blocking.priority, blocking.core
                ):
                    blocking = h
        if blocking is not None:
            return Resolution(
                granted=False,
                reject_holder=blocking.core,
                reject_by_lock=False,
            )
        reason = _victim_reason(req)
        return Resolution(
            granted=True, victims=[(h.core, reason) for h in holders]
        )


def build_conflict_manager(spec: SystemSpec) -> ConflictManager:
    if spec.is_cgl:
        # CGL never produces transactional holders; requester-wins is a
        # harmless identity here.
        return RequesterWinsManager(spec)
    if spec.recovery:
        return RecoveryConflictManager(spec)
    return RequesterWinsManager(spec)
