"""System composition flags — the vocabulary of the paper's Table II.

A :class:`SystemSpec` says which mechanisms are armed.  The named paper
configurations (CGL, Baseline, LosaTM-SAFU, LockillerTM-RAI/RRI/RWI/RWL/
RWIL, LockillerTM) are built from these flags in
:mod:`repro.harness.systems`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.common.errors import ConfigError


class RequesterPolicy(Enum):
    """What a requester does when its conflicting request is rejected
    (the three options of §III-A 'wake up rejected requests')."""

    SELF_ABORT = auto()
    RETRY_LATER = auto()
    WAIT_WAKEUP = auto()


class PriorityKind(Enum):
    """User-defined transaction priority carried on requests (ARUSER)."""

    NONE = auto()
    #: Committed instructions in the current attempt (the paper's choice).
    INSTS = auto()
    #: Elapsed cycles in the current attempt (LosaTM-style progression).
    PROGRESSION = auto()
    #: Fixed, pre-assigned per-core priority — the alternative §III-A
    #: discusses ("determined before the transaction and remain
    #: unchanged"): no priority inversion, but picking good values is
    #: hard and low-priority cores starve.  Kept as an extension for the
    #: fairness ablation.
    STATIC = auto()


@dataclass(frozen=True)
class SystemSpec:
    """Which mechanisms a simulated machine arms."""

    name: str
    #: False => coarse-grained locking (CGL): every Txn under one lock.
    use_htm: bool = True
    #: Arm the recovery mechanism (NACK/reject of toxic requests).
    recovery: bool = False
    requester_policy: RequesterPolicy = RequesterPolicy.SELF_ABORT
    priority_kind: PriorityKind = PriorityKind.NONE
    #: Arm the HTMLock mechanism (TL lock transactions coexist with HTM).
    htmlock: bool = False
    #: Arm the switchingMode mechanism (STL proactive switch on overflow).
    switching: bool = False
    #: EXTENSION (not in the paper's Table II): also attempt the STL
    #: switch on *exceptions*.  §III-C deliberately declines this —
    #: "context switching during the transaction may introduce unknown
    #: security risks" — but leaves it architecturally possible; this
    #: flag implements it so the deferred design can be evaluated
    #: (see benchmarks/bench_ext_switch_on_fault.py).
    switching_on_faults: bool = False

    def __post_init__(self) -> None:
        if self.switching and not self.htmlock:
            raise ConfigError(
                f"{self.name}: switchingMode builds upon HTMLock (§III-C)"
            )
        if self.switching_on_faults and not self.switching:
            raise ConfigError(
                f"{self.name}: switching on faults extends switchingMode"
            )
        if self.htmlock and not self.recovery:
            raise ConfigError(
                f"{self.name}: HTMLock resolves its conflicts through the "
                "recovery mechanism (§III-B challenge 1)"
            )
        if not self.use_htm and (
            self.recovery or self.htmlock or self.switching
        ):
            raise ConfigError(f"{self.name}: CGL cannot arm HTM mechanisms")

    @property
    def is_cgl(self) -> bool:
        return not self.use_htm

    def describe(self) -> str:
        if self.is_cgl:
            return "coarse-grained locking"
        parts = ["best-effort HTM (requester-wins)"]
        if self.recovery:
            parts.append(
                f"recovery[{self.requester_policy.name.lower()}, "
                f"priority={self.priority_kind.name.lower()}]"
            )
        if self.htmlock:
            parts.append("HTMLock")
        if self.switching:
            parts.append("switchingMode")
        if self.switching_on_faults:
            parts.append("switchOnFault(ext)")
        return " + ".join(parts)
