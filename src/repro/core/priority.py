"""Transaction priority providers (§III-A, *user-defined priority*).

The recovery mechanism only requires a consistent global order; the paper
adopts a **dynamic, committed-instructions-based** priority: a
transaction's priority is the number of instructions it has committed in
its *current attempt*, so a defeated transaction restarts at the lowest
priority and cannot immediately friendly-fire the transaction that beat
it.  Ties are broken by the smaller core id winning (Fig. 4).

LosaTM's *progression-based* priority (elapsed cycles in the attempt) is
provided for the LosaTM-SAFU comparison system; it grows even while a
transaction stalls, which is why the paper calls the insts-based variant
"more representative" of actual work done.

HTMLock-mode (TL/STL) transactions always report ``LOCK_PRIORITY``, the
globally-highest value (§III-B: the lock transaction must win every
conflict to stay consistent without rollback).
"""

from __future__ import annotations

from repro.core.policies import PriorityKind
from repro.htm.txstate import LOCK_PRIORITY, TxMode, TxState


class PriorityProvider:
    """Base: maps a core's transactional state to a priority value."""

    kind = PriorityKind.NONE

    def priority_of(self, tx: TxState, now: int) -> int:
        # Identity checks instead of mode.is_lock_mode: this runs once
        # per holder per access and the enum-property chain showed up.
        mode = tx.mode
        if mode is TxMode.TL or mode is TxMode.STL:
            return LOCK_PRIORITY
        return self._speculative_priority(tx, now)

    def _speculative_priority(self, tx: TxState, now: int) -> int:
        raise NotImplementedError

    @staticmethod
    def beats(
        pri_a: int, core_a: int, pri_b: int, core_b: int
    ) -> bool:
        """True when (pri_a, core_a) outranks (pri_b, core_b).

        Higher priority wins; on a tie the smaller core id wins (§III-A:
        "when carrying the same priority, the processor ID is compared,
        with smaller IDs having greater priority").
        """
        if pri_a != pri_b:
            return pri_a > pri_b
        return core_a < core_b


class NoPriority(PriorityProvider):
    """All speculative transactions tie; the id tie-break decides."""

    kind = PriorityKind.NONE

    def _speculative_priority(self, tx: TxState, now: int) -> int:
        return 0


class InstsBasedPriority(PriorityProvider):
    """Committed instructions in the current attempt (the paper's policy)."""

    kind = PriorityKind.INSTS

    def _speculative_priority(self, tx: TxState, now: int) -> int:
        # insts_at folds in lazily-billed coalesced compute bursts, so
        # the value matches per-op stepping cycle for cycle.
        return tx.insts_at(now)


class ProgressionPriority(PriorityProvider):
    """Elapsed cycles in the current attempt (LosaTM-style)."""

    kind = PriorityKind.PROGRESSION

    def _speculative_priority(self, tx: TxState, now: int) -> int:
        return max(0, now - tx.attempt_start)


class StaticPriority(PriorityProvider):
    """Fixed, pre-assigned priority (§III-A's static alternative).

    Priorities are assigned once per core (here: descending with core
    id, so core 0 is the strongest).  No priority inversion can occur,
    but the order never reflects work done — the fairness ablation
    (``bench_ext_static_priority.py``) quantifies the resulting
    starvation of the low-priority cores.
    """

    kind = PriorityKind.STATIC

    def __init__(self, num_cores: int = 1024) -> None:
        self._num_cores = num_cores

    def _speculative_priority(self, tx: TxState, now: int) -> int:
        return self._num_cores - tx.core


def make_priority_provider(kind: PriorityKind) -> PriorityProvider:
    if kind is PriorityKind.INSTS:
        return InstsBasedPriority()
    if kind is PriorityKind.PROGRESSION:
        return ProgressionPriority()
    if kind is PriorityKind.STATIC:
        return StaticPriority()
    return NoPriority()
