"""Wake-up bookkeeping for rejected requests (§III-A, Fig. 2 ⑦/⑧).

When a request is rejected under the ``WaitWakeup`` policy, the rejecting
side records which core must be notified; the table is drained when the
holder commits or aborts, sending a wake-up message to each parked
requester (modeled after the ACE stash transaction).  Entries carry the
waiter's attempt sequence number so a stale wake-up (the waiter already
aborted and moved on) is ignored by the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class Waiter:
    core: int
    attempt_seq: int
    resume: Callable[[int], None]


class WakeupTable:
    """Per-holder lists of parked requesters."""

    __slots__ = ("_table", "registered", "drained", "chaos_drop", "dropped")

    def __init__(self) -> None:
        self._table: Dict[int, List[Waiter]] = {}
        self.registered = 0
        self.drained = 0
        #: Fault-injection hook: () -> bool, True to lose the wake-up
        #: message for one waiter.  Wired by the Machine when a FaultPlan
        #: is armed; the stranded waiter must recover via its timeout.
        self.chaos_drop: Optional[Callable[[], bool]] = None
        self.dropped = 0

    def reset(self) -> None:
        """Drop all waiters, counters and chaos hooks (machine-pool reuse)."""
        self._table.clear()
        self.registered = 0
        self.drained = 0
        self.chaos_drop = None
        self.dropped = 0

    def register(
        self,
        holder: int,
        waiter_core: int,
        attempt_seq: int,
        resume: Callable[[int], None],
    ) -> None:
        if holder == waiter_core:
            raise ValueError("core cannot wait on itself")
        self._table.setdefault(holder, []).append(
            Waiter(waiter_core, attempt_seq, resume)
        )
        self.registered += 1

    def drain(self, holder: int) -> List[Waiter]:
        """Remove and return every waiter parked on ``holder``.

        Waiters whose wake-up message the fault injector drops are
        removed from the table but *not* returned: the message was sent
        and lost, and the waiter is on its own (timeout guard).
        """
        waiters = self._table.pop(holder, [])
        if self.chaos_drop is not None and waiters:
            delivered = []
            for w in waiters:
                if self.chaos_drop():
                    self.dropped += 1
                else:
                    delivered.append(w)
            waiters = delivered
        self.drained += len(waiters)
        return waiters

    def discard_waiter(self, waiter_core: int) -> None:
        """Remove ``waiter_core`` everywhere (it aborted while parked)."""
        for holder in list(self._table):
            kept = [w for w in self._table[holder] if w.core != waiter_core]
            if kept:
                self._table[holder] = kept
            else:
                del self._table[holder]

    def pending_for(self, holder: int) -> int:
        return len(self._table.get(holder, ()))

    @property
    def total_pending(self) -> int:
        return sum(len(v) for v in self._table.values())

    def publish_telemetry(self, registry) -> None:
        """Publish wake-up counters under ``htm.wakeup.*``."""
        scope = registry.scope("htm.wakeup")
        scope.set("registered", self.registered)
        scope.set("drained", self.drained)
        scope.set("dropped", self.dropped)
        scope.set("pending", self.total_pending)
