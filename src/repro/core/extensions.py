"""Extension systems beyond the paper's Table II.

These arm design points the paper discusses but deliberately leaves out,
so the deferred decisions can be evaluated:

* ``LockillerTM-XF`` — switchingMode also fires on *exceptions*
  (§III-C declines this citing CPU-validation complexity and security
  risks; the simulator has neither constraint, so the performance side
  of the trade-off can be measured — chiefly on yada).
* ``LockillerTM-RWS`` — recovery with a *static* pre-assigned priority
  (§III-A: "If the priority is determined before execution, there is no
  problem with priority inversion, but selecting a reasonable priority
  is difficult").  The fairness ablation quantifies the starvation this
  causes relative to the dynamic insts-based policy.

They are intentionally *not* registered in
:data:`repro.harness.systems.SYSTEMS` — Table II is kept faithful to the
paper — but :func:`extension_systems` exposes them to the benches.
"""

from __future__ import annotations

from typing import Dict

from repro.core.policies import PriorityKind, RequesterPolicy, SystemSpec

SWITCH_ON_FAULT_SPEC = SystemSpec(
    name="LockillerTM-XF",
    recovery=True,
    requester_policy=RequesterPolicy.WAIT_WAKEUP,
    priority_kind=PriorityKind.INSTS,
    htmlock=True,
    switching=True,
    switching_on_faults=True,
)

STATIC_PRIORITY_SPEC = SystemSpec(
    name="LockillerTM-RWS",
    recovery=True,
    requester_policy=RequesterPolicy.WAIT_WAKEUP,
    priority_kind=PriorityKind.STATIC,
)


def extension_systems() -> Dict[str, SystemSpec]:
    return {
        s.name: s for s in (SWITCH_ON_FAULT_SPEC, STATIC_PRIORITY_SPEC)
    }
