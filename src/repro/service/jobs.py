"""Job records, the per-job JSONL event feed, and the resume journal.

A *job* is one submitted campaign.  Its lifecycle::

    queued -> running -> done
                     \\-> failed      (some cell raised)
           \\-> cancelled             (client cancel, any time)

The service journals every job as ``<state_dir>/jobs/<job_id>.json``
(atomic temp-file + ``os.replace``, exactly the checkpoint discipline of
:mod:`repro.resilience.harness`): the journal stores the campaign
definition and coarse state, *not* results — results live in the
content-addressed store, so resuming a job is just re-expanding its
campaign and letting schedule-time dedup serve every already-computed
cell from the cache.  That is what makes SIGTERM drain cheap: the
journal plus the store *is* the checkpoint.

Progress streams as a JSONL event feed: every event is appended to
``<state_dir>/events/<job_id>.jsonl`` and to an in-memory list that
HTTP stream watchers tail via an :class:`asyncio.Condition`.
"""

from __future__ import annotations

import asyncio
import json
import os
from enum import Enum
from typing import Dict, List, Optional

from repro.common.stats import RunStats
from repro.service.campaigns import CampaignSpec, CellSpec

JOURNAL_SCHEMA = "repro-service-job/1"


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELLED)


class Job:
    """One campaign's live state inside the service."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        campaign: CampaignSpec,
        state_dir: str,
        submit_seq: int = 0,
    ) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.campaign = campaign
        self.state_dir = state_dir
        self.submit_seq = submit_seq
        self.state = JobState.QUEUED
        self.error: Optional[str] = None
        self.cells: List[CellSpec] = campaign.cells()
        self.results: List[Optional[RunStats]] = [None] * len(self.cells)
        #: Per-cell failure messages (index -> error string).
        self.failures: Dict[int, str] = {}
        # Counters (the status payload's vocabulary).
        self.cells_total = len(self.cells)
        self.cells_from_cache = 0
        self.cells_deduped = 0
        self.cells_scheduled = 0
        self.cells_done = 0
        self.cells_failed = 0
        # Event feed.
        self.events: List[Dict] = []
        self._event_seq = 0
        self._watchers = asyncio.Condition()

    # -- paths ---------------------------------------------------------

    @property
    def journal_path(self) -> str:
        return os.path.join(self.state_dir, "jobs", f"{self.job_id}.json")

    @property
    def events_path(self) -> str:
        return os.path.join(
            self.state_dir, "events", f"{self.job_id}.jsonl"
        )

    # -- journal -------------------------------------------------------

    def journal_dict(self) -> Dict:
        return {
            "schema": JOURNAL_SCHEMA,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "campaign": self.campaign.to_dict(),
            "state": self.state.value,
            "submit_seq": self.submit_seq,
            "error": self.error,
        }

    def save_journal(self) -> None:
        path = self.journal_path
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.journal_dict(), fh, sort_keys=True)
        os.replace(tmp, path)

    @classmethod
    def load_journal(cls, path: str, state_dir: str) -> "Job":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("schema") != JOURNAL_SCHEMA:
            raise ValueError(
                f"unsupported job journal schema {data.get('schema')!r}"
            )
        job = cls(
            job_id=data["job_id"],
            tenant=data["tenant"],
            campaign=CampaignSpec.from_dict(data["campaign"]),
            state_dir=state_dir,
            submit_seq=int(data.get("submit_seq", 0)),
        )
        job.state = JobState(data["state"])
        job.error = data.get("error")
        return job

    # -- events --------------------------------------------------------

    def emit(self, event_type: str, **fields) -> Dict:
        """Append one event to the feed (memory + JSONL file)."""
        self._event_seq += 1
        event = {"seq": self._event_seq, "event": event_type,
                 "job_id": self.job_id, **fields}
        self.events.append(event)
        os.makedirs(os.path.dirname(self.events_path), exist_ok=True)
        with open(self.events_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
        return event

    async def notify_watchers(self) -> None:
        async with self._watchers:
            self._watchers.notify_all()

    async def wait_events(self, cursor: int) -> int:
        """Block until the feed has grown past ``cursor`` (or job ends)."""
        async with self._watchers:
            await self._watchers.wait_for(
                lambda: len(self.events) > cursor or self.state.terminal
            )
        return len(self.events)

    # -- status --------------------------------------------------------

    def progress(self) -> Dict[str, int]:
        return {
            "cells_total": self.cells_total,
            "cells_from_cache": self.cells_from_cache,
            "cells_deduped": self.cells_deduped,
            "cells_scheduled": self.cells_scheduled,
            "cells_done": self.cells_done,
            "cells_failed": self.cells_failed,
        }

    def status_dict(self) -> Dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state.value,
            "kind": self.campaign.kind,
            "campaign": self.campaign.to_dict(),
            "error": self.error,
            "progress": self.progress(),
        }

    @property
    def complete(self) -> bool:
        return self.cells_done + self.cells_failed >= self.cells_total
