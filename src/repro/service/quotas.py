"""Per-tenant admission quotas and the fair round-robin cell queue.

Backpressure model (docs/SERVICE.md):

* **Admission** — a submit is rejected (HTTP 429) when the tenant's
  *queued* cell count would exceed ``max_queued_cells``.  Admission
  counts every cell of the campaign, including ones that will later be
  served from the cache: admission control must be O(1) and cannot
  afford a disk probe per cell, so dedup happens at schedule time and
  only *frees* queue budget early.
* **Scheduling** — the service drains tenants round-robin, one cell per
  tenant per turn, and never lets a tenant exceed
  ``max_concurrent_cells`` simultaneously executing cells.  A tenant at
  its concurrency limit is skipped, not blocked on — other tenants keep
  draining, which is what lets thousands of concurrent campaigns
  degrade gracefully instead of convoying behind the largest one.
* Cells served from the cache or deduplicated onto an in-flight
  execution never consume concurrency budget — only real executions do.

``max_queued_cells=0`` defines a *zero-quota* tenant: every submit is
rejected.  Quotas are admission policy only — they never change which
cells run or what they produce, so determinism is untouched.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional, Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant."""

    max_queued_cells: int = 10_000
    max_concurrent_cells: int = 8

    def __post_init__(self) -> None:
        if self.max_queued_cells < 0:
            raise ConfigError("max_queued_cells must be >= 0")
        if self.max_concurrent_cells < 1:
            raise ConfigError("max_concurrent_cells must be >= 1")


class QuotaExceeded(Exception):
    """Raised at admission when a tenant is over quota (HTTP 429)."""

    def __init__(self, tenant: str, queued: int, requested: int,
                 quota: TenantQuota) -> None:
        self.tenant = tenant
        self.queued = queued
        self.requested = requested
        self.quota = quota
        super().__init__(
            f"tenant {tenant!r} over quota: {queued} cell(s) queued + "
            f"{requested} requested > max_queued_cells="
            f"{quota.max_queued_cells}"
        )


class TenantAccounting:
    """Live queue/concurrency counters for one tenant."""

    def __init__(self, quota: TenantQuota) -> None:
        self.quota = quota
        self.queued = 0
        self.running = 0
        self.peak_running = 0
        self.rejected_submits = 0
        self.completed = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "queued_cells": self.queued,
            "running_cells": self.running,
            "peak_running_cells": self.peak_running,
            "rejected_submits": self.rejected_submits,
            "completed_cells": self.completed,
            "max_queued_cells": self.quota.max_queued_cells,
            "max_concurrent_cells": self.quota.max_concurrent_cells,
        }


class FairQueue:
    """Round-robin, quota-aware queue of ``(job_id, cell_index)`` work.

    One deque per tenant; :meth:`take` rotates tenants and returns the
    next entry from the first tenant that is below its concurrency
    limit.  All mutation happens on the service's event loop, so no
    internal locking is needed.
    """

    def __init__(self, default_quota: TenantQuota,
                 quotas: Optional[Dict[str, TenantQuota]] = None) -> None:
        self.default_quota = default_quota
        self._quotas = dict(quotas or {})
        self._tenants: "OrderedDict[str, TenantAccounting]" = OrderedDict()
        self._pending: Dict[str, Deque[Tuple[str, int]]] = {}

    def tenant(self, name: str) -> TenantAccounting:
        acct = self._tenants.get(name)
        if acct is None:
            acct = TenantAccounting(
                self._quotas.get(name, self.default_quota)
            )
            self._tenants[name] = acct
            self._pending[name] = deque()
        return acct

    def tenants(self) -> Dict[str, TenantAccounting]:
        return dict(self._tenants)

    # -- admission -----------------------------------------------------

    def admit(self, tenant: str, cells: int) -> None:
        """Reserve queue budget for ``cells`` or raise QuotaExceeded."""
        acct = self.tenant(tenant)
        if acct.queued + cells > acct.quota.max_queued_cells:
            acct.rejected_submits += 1
            raise QuotaExceeded(tenant, acct.queued, cells, acct.quota)
        acct.queued += cells

    def release_queued(self, tenant: str, cells: int = 1) -> None:
        """Return queue budget (cell scheduled, deduped, or cancelled)."""
        acct = self.tenant(tenant)
        acct.queued = max(0, acct.queued - cells)

    # -- scheduling ----------------------------------------------------

    def push(self, tenant: str, job_id: str, cell_index: int) -> None:
        self.tenant(tenant)
        self._pending[tenant].append((job_id, cell_index))

    def pending(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return len(self._pending.get(tenant, ()))
        return sum(len(q) for q in self._pending.values())

    def take(self) -> Optional[Tuple[str, str, int]]:
        """Next ``(tenant, job_id, cell_index)`` under quota, or None.

        Rotates the tenant ring exactly once; tenants with no pending
        work or at their concurrency limit are skipped.  The tenant the
        entry came from is moved to the back of the ring, which is what
        makes draining round-robin fair.
        """
        for name in list(self._tenants):
            queue = self._pending[name]
            if not queue:
                continue
            acct = self._tenants[name]
            if acct.running >= acct.quota.max_concurrent_cells:
                continue
            job_id, cell_index = queue.popleft()
            self._tenants.move_to_end(name)
            return name, job_id, cell_index
        return None

    def drop_job(self, tenant: str, job_id: str) -> int:
        """Remove every queued entry of ``job_id``; returns the count."""
        queue = self._pending.get(tenant)
        if not queue:
            return 0
        kept = deque(e for e in queue if e[0] != job_id)
        dropped = len(queue) - len(kept)
        self._pending[tenant] = kept
        return dropped

    # -- execution accounting -----------------------------------------

    def mark_running(self, tenant: str) -> None:
        acct = self.tenant(tenant)
        acct.running += 1
        acct.peak_running = max(acct.peak_running, acct.running)

    def mark_finished(self, tenant: str) -> None:
        acct = self.tenant(tenant)
        acct.running = max(0, acct.running - 1)
        acct.completed += 1

    def has_headroom(self) -> bool:
        """True when some tenant could schedule right now."""
        for name, acct in self._tenants.items():
            if (
                self._pending[name]
                and acct.running < acct.quota.max_concurrent_cells
            ):
                return True
        return False

    def __iter__(self) -> Iterator[str]:
        return iter(self._tenants)


def parse_quota(text: str) -> TenantQuota:
    """Parse the CLI's ``QUEUED:CONCURRENT`` quota shorthand."""
    try:
        queued_s, _, concurrent_s = text.partition(":")
        queued = int(queued_s)
        concurrent = int(concurrent_s) if concurrent_s else 8
    except ValueError:
        raise ConfigError(
            f"invalid quota {text!r}: expected QUEUED[:CONCURRENT] "
            "(e.g. 1000:8)"
        ) from None
    return TenantQuota(
        max_queued_cells=queued, max_concurrent_cells=concurrent
    )
