"""Sharded result store for concurrent campaign writers.

:class:`ShardedStore` is a :class:`~repro.harness.runcache.RunCache`
whose on-disk layout fans out over **two** levels of key-prefix
directories — ``<root>/<key[:2]>/<key[2:4]>/<key>.json``, 65536 leaf
shards — so thousands of concurrent campaign writers land their entries
across many directories instead of contending on one, and per-shard
``os.makedirs``/listing costs stay flat as the store grows.  Writes are
additionally serialized per shard with a lock: the final
``os.replace`` is atomic either way, but the serialization bounds the
number of simultaneously open temp files per directory and gives the
service one choke point per shard rather than one global one.

Reads stay lock-free (an entry is only ever created whole by the atomic
replace).  Keys are exactly the content hashes of
:func:`repro.harness.runcache.cell_key`, so a sharded store and a flat
``RunCache`` are interchangeable at the key level — only the pathing
differs.  ``RunCache`` semantics (corrupt-entry repair, hit/miss
accounting, unique temp files) are inherited unchanged.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Optional

from repro.common.stats import RunStats
from repro.harness.runcache import RunCache
from repro.harness.export import run_stats_to_dict


class ShardedStore(RunCache):
    """Two-level key-prefix fanout + per-shard write serialization."""

    def __init__(self, root: Optional[str] = None) -> None:
        super().__init__(root)
        self._shard_locks: Dict[str, threading.Lock] = {}
        self._shard_locks_guard = threading.Lock()
        self._made_dirs: set = set()

    def path_for(self, key: str) -> str:
        return os.path.join(
            self.root, key[:2], key[2:4], f"{key}.json"
        )

    def shard_of(self, key: str) -> str:
        """The leaf-shard identifier a key lands in."""
        return key[:4]

    def _shard_lock(self, key: str) -> threading.Lock:
        shard = self.shard_of(key)
        # dict reads are atomic under the GIL; only creation is guarded.
        lock = self._shard_locks.get(shard)
        if lock is None:
            with self._shard_locks_guard:
                lock = self._shard_locks.setdefault(
                    shard, threading.Lock()
                )
        return lock

    def put(
        self, key: str, stats: RunStats, meta: Optional[Dict] = None
    ) -> None:
        path = self.path_for(key)
        shard_dir = os.path.dirname(path)
        with self._shard_lock(key):
            if shard_dir not in self._made_dirs:
                os.makedirs(shard_dir, exist_ok=True)
                self._made_dirs.add(shard_dir)
            tmp = (
                f"{path}.tmp.{os.getpid()}.{next(RunCache._tmp_seq)}"
            )
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(run_stats_to_dict(stats, meta), fh,
                          sort_keys=True)
            os.replace(tmp, path)
            self.stores += 1

    def contains(self, key: str) -> bool:
        """Existence probe without parsing (no hit/miss accounting)."""
        return os.path.exists(self.path_for(key))
