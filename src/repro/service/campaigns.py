"""Wire-level campaign model.

A *campaign* is what a tenant submits: either a cartesian **sweep**
(workloads x systems x threads x seeds x params tags) or a **multiseed**
study (one configuration repeated across seeds — a degenerate sweep
whose results additionally carry a per-metric summary).  Both
canonicalize into an ordered list of :class:`CellSpec`, and the order is
exactly :meth:`repro.harness.sweeps.Sweep.points` so a service-side
campaign lines up cell-for-cell with a serial ``Sweep.run`` — the
determinism pin the service test suite enforces.

Each cell is addressed by its content hash
(:func:`repro.harness.runcache.cell_key`), which is what the scheduler
deduplicates on: against the persistent store *and* against cells
already in flight for other jobs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.params import (
    SystemParams,
    large_cache_params,
    small_cache_params,
    typical_params,
)
from repro.core.policies import SystemSpec
from repro.harness.runcache import cell_key
from repro.harness.systems import resolve_system
from repro.workloads.registry import get_workload

#: Named machine configurations a campaign may reference over the wire.
PARAMS_TAGS = {
    "typical": typical_params,
    "small": small_cache_params,
    "large": large_cache_params,
}

KINDS = ("sweep", "multiseed")


@dataclass(frozen=True)
class CellSpec:
    """One fully resolved cell of a campaign, with its cache key."""

    index: int
    workload: str
    system: str
    threads: int
    scale: float
    seed: int
    params_tag: str
    spec: SystemSpec = field(repr=False, compare=False)
    params: SystemParams = field(repr=False, compare=False)
    key: str = field(compare=False)

    def label(self) -> str:
        return (
            f"{self.workload}/{self.system}/t{self.threads}"
            f"/s{self.seed}/{self.params_tag}"
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign definition (the POST /v1/jobs payload)."""

    kind: str
    workloads: Tuple[str, ...]
    systems: Tuple[str, ...]
    threads: Tuple[int, ...] = (8,)
    seeds: Tuple[int, ...] = (42,)
    scale: float = 0.25
    params_tags: Tuple[str, ...] = ("typical",)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown campaign kind {self.kind!r}; choose from {KINDS}"
            )
        if not self.workloads or not self.systems:
            raise ConfigError("campaign needs >= 1 workload and >= 1 system")
        if self.kind == "multiseed" and (
            len(self.workloads) != 1
            or len(self.systems) != 1
            or len(self.threads) != 1
        ):
            raise ConfigError(
                "multiseed campaigns fix one workload, one system and "
                "one thread count (vary only seeds)"
            )
        if not self.threads or not self.seeds:
            raise ConfigError("campaign needs >= 1 thread count and seed")
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")
        for tag in self.params_tags:
            if tag not in PARAMS_TAGS:
                raise ConfigError(
                    f"unknown params tag {tag!r}; choose from "
                    f"{sorted(PARAMS_TAGS)}"
                )
        for wl in self.workloads:
            get_workload(wl)  # raises ConfigError on unknown names
        for system in self.systems:
            resolve_system(system)

    # -- canonical forms -----------------------------------------------

    def size(self) -> int:
        return (
            len(self.workloads)
            * len(self.systems)
            * len(self.threads)
            * len(self.seeds)
            * len(self.params_tags)
        )

    def cells(self) -> List[CellSpec]:
        """Expand to cells in exactly ``Sweep.points`` order."""
        specs = {s: resolve_system(s) for s in self.systems}
        params = {t: PARAMS_TAGS[t]() for t in self.params_tags}
        out: List[CellSpec] = []
        for i, (wl, system, th, seed, tag) in enumerate(
            itertools.product(
                self.workloads,
                self.systems,
                self.threads,
                self.seeds,
                self.params_tags,
            )
        ):
            spec, p = specs[system], params[tag]
            out.append(
                CellSpec(
                    index=i,
                    workload=wl,
                    system=system,
                    threads=int(th),
                    scale=float(self.scale),
                    seed=int(seed),
                    params_tag=tag,
                    spec=spec,
                    params=p,
                    key=cell_key(wl, spec, p, th, self.scale, seed),
                )
            )
        return out

    def to_sweep(self):
        """The equivalent serial :class:`~repro.harness.sweeps.Sweep`."""
        from repro.harness.sweeps import Sweep

        return Sweep(
            workloads=list(self.workloads),
            systems=list(self.systems),
            threads=tuple(self.threads),
            seeds=tuple(self.seeds),
            scale=float(self.scale),
            params_by_tag={t: PARAMS_TAGS[t]() for t in self.params_tags},
            spec_resolver=resolve_system,
        )

    # -- wire format ---------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "workloads": list(self.workloads),
            "systems": list(self.systems),
            "threads": list(self.threads),
            "seeds": list(self.seeds),
            "scale": self.scale,
            "params_tags": list(self.params_tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        if not isinstance(data, Mapping):
            raise ConfigError("campaign payload must be a JSON object")
        unknown = set(data) - {
            "kind", "workloads", "systems", "threads", "seeds",
            "scale", "params_tags",
        }
        if unknown:
            raise ConfigError(
                f"unknown campaign field(s): {sorted(unknown)}"
            )

        def as_tuple(name: str, default, coerce):
            raw = data.get(name, default)
            if isinstance(raw, (str, int, float)):
                raw = [raw]
            if not isinstance(raw, Sequence):
                raise ConfigError(f"campaign field {name!r} must be a list")
            try:
                return tuple(coerce(v) for v in raw)
            except (TypeError, ValueError):
                raise ConfigError(
                    f"campaign field {name!r} has a non-{coerce.__name__} "
                    f"entry: {raw!r}"
                ) from None

        try:
            scale = float(data.get("scale", 0.25))
        except (TypeError, ValueError):
            raise ConfigError(
                f"campaign scale must be a number, got {data.get('scale')!r}"
            ) from None
        return cls(
            kind=str(data.get("kind", "sweep")),
            workloads=as_tuple("workloads", (), str),
            systems=as_tuple("systems", (), str),
            threads=as_tuple("threads", (8,), int),
            seeds=as_tuple("seeds", (42,), int),
            scale=scale,
            params_tags=as_tuple("params_tags", ("typical",), str),
        )

    def digest(self) -> str:
        """Stable content hash of the campaign definition."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
