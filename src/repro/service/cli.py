"""Service CLI: ``python -m repro serve`` and client subcommands.

Usage::

    python -m repro serve --state-dir .repro-service [--host H] [--port P]
        [--jobs N] [--quota TENANT=QUEUED[:CONCURRENT]]
        [--default-quota QUEUED[:CONCURRENT]] [--cache-dir DIR]
    python -m repro submit --workloads kmeans+,ssca2 --systems \
        CGL,LockillerTM [--threads 2,8] [--seeds 1,2] [--scale 0.1]
        [--multiseed] [--tenant NAME] [--wait] [--server HOST:PORT |
        --state-dir DIR]
    python -m repro status  JOB  [--server ... | --state-dir ...]
    python -m repro results JOB  [--lite] [--fingerprints]
    python -m repro stream  JOB  [--no-follow]
    python -m repro cancel  JOB

``submit`` prints the job id (and with ``--wait`` streams progress
until the job finishes).  ``results --fingerprints`` prints one
``index label fingerprint`` line per cell — the exact vocabulary of the
determinism pin in the test suite and the CI service-smoke job.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.service.client import ServiceClient, ServiceError, discover
from repro.service.quotas import parse_quota
from repro.service.server import ServiceConfig, run_service

SERVICE_COMMANDS = (
    "serve", "submit", "status", "results", "stream", "cancel",
)


def _add_endpoint_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="service endpoint (default: discover via --state-dir)",
    )
    p.add_argument(
        "--state-dir", default=".repro-service",
        help="service state directory (server.json discovery)",
    )


def _client(args: argparse.Namespace) -> ServiceClient:
    if args.server:
        host, _, port = args.server.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigError(
                f"invalid --server {args.server!r}: expected HOST:PORT"
            )
        return ServiceClient(host, int(port))
    return discover(args.state_dir)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="sweep-service commands",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser(
        "serve", help="run the always-on sweep service"
    )
    serve_p.add_argument("--state-dir", default=".repro-service")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=0,
        help="0 picks a free port (written to <state-dir>/server.json)",
    )
    serve_p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (0=all CPUs; default $REPRO_JOBS/serial)",
    )
    serve_p.add_argument(
        "--quota", action="append", default=[],
        metavar="TENANT=QUEUED[:CONCURRENT]",
        help="per-tenant quota override (repeatable)",
    )
    serve_p.add_argument(
        "--default-quota", default=None,
        metavar="QUEUED[:CONCURRENT]",
        help="quota for tenants without an explicit --quota",
    )
    serve_p.add_argument(
        "--cache-dir", default=None,
        help="sharded store root (default <state-dir>/runcache)",
    )

    submit_p = sub.add_parser("submit", help="submit a campaign")
    _add_endpoint_args(submit_p)
    submit_p.add_argument("--workloads", required=True,
                          help="comma-separated workload names")
    submit_p.add_argument("--systems", required=True,
                          help="comma-separated Table-II systems")
    submit_p.add_argument("--threads", default="8")
    submit_p.add_argument("--seeds", default="42")
    submit_p.add_argument("--scale", type=float, default=0.25)
    submit_p.add_argument(
        "--params-tags", default="typical",
        help="comma-separated machine configs (typical,small,large)",
    )
    submit_p.add_argument(
        "--multiseed", action="store_true",
        help="submit as a multiseed campaign (one config, many seeds)",
    )
    submit_p.add_argument("--tenant", default=None)
    submit_p.add_argument(
        "--wait", action="store_true",
        help="stream events until the job finishes",
    )

    for name, extra in (
        ("status", ()),
        ("results", ("--lite", "--fingerprints")),
        ("stream", ("--no-follow",)),
        ("cancel", ()),
    ):
        p = sub.add_parser(name, help=f"{name} one job")
        p.add_argument("job_id")
        _add_endpoint_args(p)
        for flag in extra:
            p.add_argument(flag, action="store_true")
    return parser


def _campaign_from_args(args: argparse.Namespace) -> dict:
    return {
        "kind": "multiseed" if args.multiseed else "sweep",
        "workloads": [w for w in args.workloads.split(",") if w],
        "systems": [s for s in args.systems.split(",") if s],
        "threads": [int(x) for x in str(args.threads).split(",") if x],
        "seeds": [int(x) for x in str(args.seeds).split(",") if x],
        "scale": args.scale,
        "params_tags": [t for t in args.params_tags.split(",") if t],
    }


def _serve(args: argparse.Namespace) -> int:
    quotas = {}
    for entry in args.quota:
        tenant, sep, spec = entry.partition("=")
        if not sep or not tenant:
            raise ConfigError(
                f"invalid --quota {entry!r}: expected "
                "TENANT=QUEUED[:CONCURRENT]"
            )
        quotas[tenant] = parse_quota(spec)
    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        quotas=quotas,
        cache_dir=args.cache_dir,
    )
    if args.default_quota:
        config.default_quota = parse_quota(args.default_quota)
    return run_service(config)


def _submit(args: argparse.Namespace) -> int:
    client = _client(args)
    job = client.submit(_campaign_from_args(args), tenant=args.tenant)
    print(job["job_id"])
    if not args.wait:
        return 0
    for event in client.stream(job["job_id"]):
        print(json.dumps(event, sort_keys=True), file=sys.stderr)
    final = client.status(job["job_id"])
    return 0 if final["state"] == "done" else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            return _serve(args)
        if args.command == "submit":
            return _submit(args)
        client = _client(args)
        if args.command == "status":
            print(json.dumps(client.status(args.job_id), indent=2,
                             sort_keys=True))
        elif args.command == "results":
            doc = client.results(args.job_id, lite=args.lite
                                 or args.fingerprints)
            if args.fingerprints:
                for cell in doc["cells"]:
                    print(f"{cell['index']} {cell['label']} "
                          f"{cell.get('fingerprint', '-')}")
            else:
                print(json.dumps(doc, indent=2, sort_keys=True))
        elif args.command == "stream":
            for event in client.stream(args.job_id,
                                       follow=not args.no_follow):
                print(json.dumps(event, sort_keys=True))
        elif args.command == "cancel":
            print(json.dumps(client.cancel(args.job_id), indent=2,
                             sort_keys=True))
        return 0
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2 if exc.is_backpressure else 1
    except (ConfigError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
