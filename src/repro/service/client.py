"""Stdlib HTTP client for the sweep service.

Mirrors the ``/v1`` API one method per endpoint.  Every method raises
:class:`ServiceError` on a non-2xx response, carrying the HTTP status
and the decoded error payload — a 429 therefore surfaces as
``ServiceError`` with ``status == 429`` and the quota details intact,
which is what callers implementing backoff need.

:meth:`ServiceClient.stream` yields event dicts live from the NDJSON
feed until the job reaches a terminal state (or the non-follow dump
ends).  :func:`discover` finds a running server from the ``server.json``
a service writes into its state directory.
"""

from __future__ import annotations

import http.client
import json
import os
import time
from typing import Dict, Iterator, Optional

DEFAULT_TIMEOUT = 60.0


class ServiceError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: Dict) -> None:
        self.status = status
        self.payload = payload
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )

    @property
    def is_backpressure(self) -> bool:
        return self.status == 429


class ServiceClient:
    """One service endpoint; connections are per-request."""

    def __init__(self, host: str, port: int,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8")
                if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read().decode("utf-8")
            try:
                doc = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                doc = {"error": raw}
            if resp.status >= 400:
                raise ServiceError(resp.status, doc)
            return doc
        finally:
            conn.close()

    # -- API -----------------------------------------------------------

    def healthz(self) -> Dict:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/v1/stats")

    def submit(self, campaign: Dict,
               tenant: Optional[str] = None) -> Dict:
        body: Dict = {"campaign": campaign}
        if tenant is not None:
            body["tenant"] = tenant
        return self._request("POST", "/v1/jobs", body)

    def jobs(self) -> Dict:
        return self._request("GET", "/v1/jobs")

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def results(self, job_id: str, lite: bool = False) -> Dict:
        suffix = "?lite=1" if lite else ""
        return self._request(
            "GET", f"/v1/jobs/{job_id}/results{suffix}"
        )

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def stream(self, job_id: str, follow: bool = True,
               cursor: int = 0) -> Iterator[Dict]:
        """Yield event dicts from the job's NDJSON feed."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            follow_q = "1" if follow else "0"
            conn.request(
                "GET",
                f"/v1/jobs/{job_id}/events"
                f"?follow={follow_q}&cursor={cursor}",
            )
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read().decode("utf-8")
                try:
                    doc = json.loads(raw) if raw else {}
                except json.JSONDecodeError:
                    doc = {"error": raw}
                raise ServiceError(resp.status, doc)
            buffer = b""
            while True:
                chunk = resp.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> Dict:
        """Poll status until the job is terminal; returns final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout}s"
                )
            time.sleep(poll_s)


def discover(state_dir: str, timeout: float = DEFAULT_TIMEOUT,
             wait_s: float = 0.0) -> ServiceClient:
    """Client for the server advertised in ``<state_dir>/server.json``.

    ``wait_s`` polls for the file to appear — useful right after
    spawning a server process.
    """
    path = os.path.join(state_dir, "server.json")
    deadline = time.monotonic() + wait_s
    while True:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            return ServiceClient(
                doc["host"], doc["port"], timeout=timeout
            )
        except (OSError, ValueError, KeyError):
            if time.monotonic() >= deadline:
                raise FileNotFoundError(
                    f"no readable server.json under {state_dir!r} — "
                    "is the service running?"
                ) from None
            time.sleep(0.05)
