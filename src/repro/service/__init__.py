"""Always-on, multi-tenant sweep service over the experiment harness.

ROADMAP item 1: lift the harness substrate — pure cell functions, the
content-addressed run cache, process-pool fan-out, crash-tolerant
checkpointing — into a long-running experiment backend.  The package is
pure stdlib (asyncio + http-over-``asyncio.start_server``):

* :mod:`repro.service.campaigns` — the wire-level campaign model: a
  sweep or multiseed grid, canonicalized into an ordered cell list whose
  order is exactly :meth:`repro.harness.sweeps.Sweep.points`, each cell
  addressed by its :func:`repro.harness.runcache.cell_key`.
* :mod:`repro.service.store` — :class:`ShardedStore`, a
  :class:`~repro.harness.runcache.RunCache` with two-level key-prefix
  fanout directories and per-shard write serialization so concurrent
  campaign writers never contend on one directory.
* :mod:`repro.service.quotas` — per-tenant admission quotas and the
  fair round-robin queue that drains thousands of campaigns gracefully.
* :mod:`repro.service.jobs` — job records, the JSONL event feed, and
  the atomic journal that makes every campaign resumable.
* :mod:`repro.service.server` — :class:`ReproService`: the asyncio
  HTTP API (submit/status/stream/results/cancel), the dedup-aware
  scheduler over the :func:`repro.harness.parallel.execute_cell`
  process pool, and graceful SIGTERM drain.
* :mod:`repro.service.client` — a stdlib HTTP client mirroring the API.

Determinism is sacred: a campaign served through the service produces
bit-identical :class:`~repro.common.stats.RunStats` to the same
campaign run serially via ``Sweep.run`` (pinned by the service test
suite).
"""

from repro.service.campaigns import CampaignSpec, CellSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobState
from repro.service.quotas import QuotaExceeded, TenantQuota
from repro.service.server import ReproService, ServiceConfig
from repro.service.store import ShardedStore

__all__ = [
    "CampaignSpec",
    "CellSpec",
    "Job",
    "JobState",
    "QuotaExceeded",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ShardedStore",
    "TenantQuota",
]
