"""The always-on sweep service: HTTP API, scheduler, drain.

:class:`ReproService` is a single-event-loop asyncio service (pure
stdlib — the HTTP/1.1 layer is a minimal parser over
``asyncio.start_server``) that turns the harness substrate into a
long-running experiment backend:

* **Submit** (``POST /v1/jobs``) admits a campaign under the tenant's
  queue quota (429 + ``Retry-After`` when over), journals it, and
  enqueues its cells on the fair round-robin queue.
* **Schedule** — the scheduler drains tenants round-robin.  Each cell
  is deduplicated *at schedule time*, first against in-flight
  executions (a second campaign asking for a running cell subscribes to
  the same future), then against the sharded content-addressed store
  (an already-computed cell is delivered without scheduling).  Only
  true misses fan out to the :func:`repro.harness.parallel.execute_cell`
  process pool, bounded globally by the worker count and per tenant by
  ``max_concurrent_cells``.
* **Stream** (``GET /v1/jobs/<id>/events?follow=1``) tails the job's
  JSONL event feed over chunked-free ``Connection: close`` NDJSON.
* **Drain** — SIGTERM (or :meth:`request_stop`) stops admission (503),
  stops scheduling, lets in-flight cells finish and land in the store,
  journals every non-terminal job, and exits.  On restart the service
  re-expands journaled campaigns and schedule-time dedup serves every
  completed cell from the store: journal + store = checkpoint.

Determinism: cells execute through the exact same pure
``execute_cell`` the serial harness uses, and results are slotted by
campaign cell index — a served campaign is bit-identical to
``Sweep.run``.  Scheduling order, quotas and dedup can change *when* a
cell runs, never *what* it computes.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.common.errors import ConfigError
from repro.harness.export import fingerprint, run_stats_to_dict
from repro.harness.parallel import CellTask, execute_cell, resolve_jobs
from repro.service.campaigns import CampaignSpec, CellSpec
from repro.service.jobs import Job, JobState
from repro.service.quotas import FairQueue, QuotaExceeded, TenantQuota
from repro.service.store import ShardedStore

API_VERSION = "v1"
DEFAULT_TENANT = "default"
TENANT_HEADER = "x-repro-tenant"


@dataclass
class ServiceConfig:
    """Everything needed to bring the service up."""

    state_dir: str
    host: str = "127.0.0.1"
    #: 0 = pick a free port (the bound port lands in ``server.json``).
    port: int = 0
    #: Worker processes (``repro.harness.parallel`` jobs convention).
    jobs: Optional[int] = None
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    #: Store root; defaults to ``<state_dir>/runcache``.
    cache_dir: Optional[str] = None


class _InFlight:
    """One executing cell and every (job, index) waiting on it."""

    __slots__ = ("cell", "owner_tenant", "subscribers")

    def __init__(self, cell: CellSpec, owner_tenant: str,
                 job_id: str, index: int) -> None:
        self.cell = cell
        self.owner_tenant = owner_tenant
        self.subscribers: List[Tuple[str, int]] = [(job_id, index)]


class ReproService:
    """Multi-tenant sweep service over the harness substrate."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        self.store = ShardedStore(
            config.cache_dir
            or os.path.join(config.state_dir, "runcache")
        )
        self.queue = FairQueue(config.default_quota, config.quotas)
        self.jobs: Dict[str, Job] = {}
        self.workers = resolve_jobs(config.jobs)
        self.draining = False
        self.cells_executed = 0
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._inflight: Dict[str, _InFlight] = {}
        self._executing = 0
        self._submit_seq = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._cell_tasks: "set[asyncio.Task]" = set()

    # -- lifecycle -----------------------------------------------------

    @property
    def server_file(self) -> str:
        return os.path.join(self.config.state_dir, "server.json")

    async def start(self) -> None:
        """Bind, resume journaled jobs, and start the scheduler."""
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._write_server_file()
        self._resume_journaled_jobs()
        self._scheduler_task = asyncio.ensure_future(self._scheduler())
        self._wake.set()

    def _write_server_file(self) -> None:
        payload = {
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "api": API_VERSION,
            "state_dir": os.path.abspath(self.config.state_dir),
        }
        tmp = f"{self.server_file}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, self.server_file)

    def _resume_journaled_jobs(self) -> None:
        """Re-enqueue every non-terminal journaled job (drain resume)."""
        jobs_dir = os.path.join(self.config.state_dir, "jobs")
        if not os.path.isdir(jobs_dir):
            return
        loaded: List[Job] = []
        for name in sorted(os.listdir(jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(jobs_dir, name)
            try:
                job = Job.load_journal(path, self.config.state_dir)
            except (OSError, ValueError, KeyError, ConfigError):
                continue  # unreadable journal: skip, never crash startup
            loaded.append(job)
        loaded.sort(key=lambda j: j.submit_seq)
        for job in loaded:
            self._submit_seq = max(self._submit_seq, job.submit_seq)
            self.jobs[job.job_id] = job
            if job.state.terminal:
                continue
            # Continue the event seq from the on-disk feed so resumed
            # jobs keep appending monotonically.
            try:
                with open(job.events_path, encoding="utf-8") as fh:
                    job._event_seq = sum(1 for _ in fh)
            except OSError:
                pass
            job.state = JobState.QUEUED
            job.save_journal()
            # Resumed cells were admitted before the restart; account
            # their queue budget without re-applying the admission gate.
            self.queue.tenant(job.tenant).queued += job.cells_total
            for cell in job.cells:
                self.queue.push(job.tenant, job.job_id, cell.index)
            job.emit("resumed", cells_total=job.cells_total)

    async def serve_until_stopped(self) -> None:
        await self._stopped.wait()

    def request_stop(self) -> None:
        """Begin graceful drain; ``serve_until_stopped`` returns after."""
        if self.draining:
            return
        self.draining = True
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        # Stop admission (503 from here on) and scheduling, let every
        # in-flight cell finish and land in the store, journal the rest.
        self._wake.set()
        if self._cell_tasks:
            await asyncio.gather(*self._cell_tasks,
                                 return_exceptions=True)
        for job in self.jobs.values():
            if not job.state.terminal:
                job.state = JobState.QUEUED
                job.save_journal()
                job.emit("drained", resumable=True)
                await job.notify_watchers()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
        try:
            # A stale advertisement would point clients at a dead port.
            os.unlink(self.server_file)
        except OSError:
            pass
        self._stopped.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except (NotImplementedError, ValueError):
                return

    # -- submission ----------------------------------------------------

    def submit(self, tenant: str, campaign: CampaignSpec) -> Job:
        """Admit one campaign; raises QuotaExceeded / RuntimeError."""
        if self.draining:
            raise RuntimeError("service is draining")
        self.queue.admit(tenant, campaign.size())
        self._submit_seq += 1
        job_id = f"j{self._submit_seq:05d}-{uuid.uuid4().hex[:6]}"
        job = Job(job_id, tenant, campaign, self.config.state_dir,
                  submit_seq=self._submit_seq)
        self.jobs[job_id] = job
        job.save_journal()
        job.emit("submitted", tenant=tenant,
                 cells_total=job.cells_total,
                 campaign_digest=campaign.digest())
        for cell in job.cells:
            self.queue.push(tenant, job_id, cell.index)
        self._wake.set()
        return job

    def cancel(self, job_id: str) -> Job:
        job = self.jobs[job_id]
        if job.state.terminal:
            return job
        dropped = self.queue.drop_job(job.tenant, job_id)
        if dropped:
            self.queue.release_queued(job.tenant, dropped)
        # Detach from in-flight executions; the executions themselves
        # finish and land in the store (deterministic and reusable).
        for inflight in self._inflight.values():
            inflight.subscribers = [
                s for s in inflight.subscribers if s[0] != job_id
            ]
        job.state = JobState.CANCELLED
        job.save_journal()
        job.emit("cancelled", cells_dropped=dropped)
        return job

    # -- scheduler -----------------------------------------------------

    async def _scheduler(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            while not self.draining and self._executing < self.workers:
                item = self.queue.take()
                if item is None:
                    break
                tenant, job_id, index = item
                job = self.jobs[job_id]
                self.queue.release_queued(tenant)
                if job.state.terminal:
                    continue  # cancelled while queued
                cell = job.cells[index]
                inflight = self._inflight.get(cell.key)
                if inflight is not None:
                    inflight.subscribers.append((job_id, index))
                    job.cells_deduped += 1
                    job.emit("cell_deduped", index=index, key=cell.key,
                             label=cell.label())
                    await job.notify_watchers()
                    continue
                hit = self.store.get(cell.key)
                if hit is not None:
                    await self._deliver(job, index, hit, "cache")
                    continue
                self._start_cell(loop, tenant, job, cell)

    def _start_cell(self, loop, tenant: str, job: Job,
                    cell: CellSpec) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        inflight = _InFlight(cell, tenant, job.job_id, cell.index)
        self._inflight[cell.key] = inflight
        self._executing += 1
        self.queue.mark_running(tenant)
        job.cells_scheduled += 1
        if job.state is JobState.QUEUED:
            job.state = JobState.RUNNING
            job.save_journal()
        job.emit("cell_scheduled", index=cell.index, key=cell.key,
                 label=cell.label())
        task = CellTask(
            cell.index, cell.workload, cell.spec, cell.threads,
            cell.scale, cell.seed, cell.params,
        )
        fut = loop.run_in_executor(self._pool, execute_cell, task)
        runner = asyncio.ensure_future(self._run_cell(inflight, fut))
        self._cell_tasks.add(runner)
        runner.add_done_callback(self._cell_tasks.discard)

    async def _run_cell(self, inflight: _InFlight, fut) -> None:
        cell = inflight.cell
        error: Optional[str] = None
        stats = None
        try:
            _, stats = await fut
        except Exception as exc:  # noqa: BLE001 - fail the cell, not us
            error = f"{type(exc).__name__}: {exc}"
        self._executing -= 1
        self.queue.mark_finished(inflight.owner_tenant)
        self._inflight.pop(cell.key, None)
        if stats is not None:
            self.cells_executed += 1
            self.store.put(cell.key, stats, meta={
                "workload": cell.workload,
                "system": cell.system,
                "threads": cell.threads,
                "scale": cell.scale,
                "seed": cell.seed,
            })
        for i, (job_id, index) in enumerate(inflight.subscribers):
            job = self.jobs.get(job_id)
            if job is None or job.state.terminal:
                continue
            if stats is not None:
                source = "executed" if i == 0 else "deduped"
                await self._deliver(job, index, stats, source)
            else:
                await self._fail_cell(job, index, error)
        self._wake.set()

    async def _deliver(self, job: Job, index: int, stats,
                       source: str) -> None:
        job.results[index] = stats
        job.cells_done += 1
        if source == "cache":
            job.cells_from_cache += 1
        job.emit("cell_done", index=index, source=source,
                 label=job.cells[index].label(),
                 fingerprint=fingerprint(stats),
                 done=job.cells_done, total=job.cells_total)
        await self._maybe_finish(job)
        await job.notify_watchers()

    async def _fail_cell(self, job: Job, index: int,
                         error: Optional[str]) -> None:
        job.cells_failed += 1
        job.failures[index] = error or "unknown error"
        job.emit("cell_failed", index=index,
                 label=job.cells[index].label(), error=error)
        await self._maybe_finish(job)
        await job.notify_watchers()

    async def _maybe_finish(self, job: Job) -> None:
        if not job.complete or job.state.terminal:
            return
        if job.cells_failed:
            job.state = JobState.FAILED
            job.error = (
                f"{job.cells_failed} cell(s) failed; "
                f"first: {next(iter(job.failures.values()))}"
            )
        else:
            job.state = JobState.DONE
        job.save_journal()
        job.emit("job_" + job.state.value, progress=job.progress())

    # -- payloads ------------------------------------------------------

    def stats_dict(self) -> Dict:
        return {
            "draining": self.draining,
            "workers": self.workers,
            "cells_executed": self.cells_executed,
            "cells_inflight": self._executing,
            "store": {
                "root": self.store.root,
                "hits": self.store.hits,
                "misses": self.store.misses,
                "stores": self.store.stores,
            },
            "jobs": {
                state.value: sum(
                    1 for j in self.jobs.values() if j.state is state
                )
                for state in JobState
            },
            "tenants": {
                name: acct.snapshot()
                for name, acct in self.queue.tenants().items()
            },
        }

    def results_dict(self, job: Job, lite: bool = False) -> Dict:
        cells = []
        for cell in job.cells:
            stats = job.results[cell.index]
            entry: Dict = {
                "index": cell.index,
                "label": cell.label(),
                "key": cell.key,
            }
            if stats is not None:
                entry["state"] = "done"
                entry["fingerprint"] = fingerprint(stats)
                if not lite:
                    entry["stats"] = run_stats_to_dict(stats)
            elif cell.index in job.failures:
                entry["state"] = "failed"
                entry["error"] = job.failures[cell.index]
            else:
                entry["state"] = "pending"
            cells.append(entry)
        out = dict(job.status_dict())
        out["cells"] = cells
        if job.campaign.kind == "multiseed" and job.state is JobState.DONE:
            from repro.harness.multiseed import summarize_values

            values = [
                float(s.execution_cycles)
                for s in job.results if s is not None
            ]
            summary = summarize_values(values)
            out["summary"] = {
                "metric": "execution_cycles",
                "mean": summary.mean,
                "stdev": summary.stdev,
                "min": summary.minimum,
                "max": summary.maximum,
                "n": summary.n,
                "ci95_half_width": summary.ci95_half_width,
            }
        return out

    # -- HTTP layer ----------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            await self._route(method, path, headers, body, writer)
        except ConnectionError:
            pass
        except Exception as exc:  # noqa: BLE001 - one bad conn, not us
            try:
                _write_response(writer, 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                })
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise ConfigError(f"malformed request line {line!r}")
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _route(self, method: str, target: str,
                     headers: Dict[str, str], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        url = urlsplit(target)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        if not parts or parts[0] != API_VERSION:
            return _write_response(writer, 404, {
                "error": f"unknown path {url.path!r} (expected /v1/...)"
            })
        route = parts[1:]
        if method == "GET" and route == ["healthz"]:
            return _write_response(writer, 200, {
                "ok": True, "draining": self.draining,
            })
        if method == "GET" and route == ["stats"]:
            return _write_response(writer, 200, self.stats_dict())
        if method == "POST" and route == ["jobs"]:
            return self._http_submit(headers, body, writer)
        if method == "GET" and route == ["jobs"]:
            return _write_response(writer, 200, {
                "jobs": [
                    job.status_dict()
                    for job in sorted(self.jobs.values(),
                                      key=lambda j: j.submit_seq)
                ]
            })
        if len(route) >= 2 and route[0] == "jobs":
            job = self.jobs.get(route[1])
            if job is None:
                return _write_response(writer, 404, {
                    "error": f"unknown job {route[1]!r}"
                })
            tail = route[2:]
            if method == "GET" and tail == []:
                return _write_response(writer, 200, job.status_dict())
            if method == "GET" and tail == ["results"]:
                lite = query.get("lite", ["0"])[0] not in ("0", "")
                return _write_response(
                    writer, 200, self.results_dict(job, lite=lite)
                )
            if method == "GET" and tail == ["events"]:
                return await self._http_events(job, query, writer)
            if method == "POST" and tail == ["cancel"]:
                return _write_response(
                    writer, 200, self.cancel(job.job_id).status_dict()
                )
        return _write_response(writer, 404, {
            "error": f"no route for {method} {url.path}"
        })

    def _http_submit(self, headers: Dict[str, str], body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if self.draining:
            return _write_response(writer, 503, {
                "error": "service is draining; resubmit after restart"
            })
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _write_response(writer, 400, {
                "error": f"request body is not JSON: {exc}"
            })
        tenant = (
            payload.get("tenant")
            or headers.get(TENANT_HEADER)
            or DEFAULT_TENANT
        )
        try:
            campaign = CampaignSpec.from_dict(
                payload.get("campaign", payload.get("sweep"))
            )
        except ConfigError as exc:
            return _write_response(writer, 400, {"error": str(exc)})
        try:
            job = self.submit(str(tenant), campaign)
        except QuotaExceeded as exc:
            return _write_response(writer, 429, {
                "error": str(exc),
                "tenant": exc.tenant,
                "queued_cells": exc.queued,
                "requested_cells": exc.requested,
                "max_queued_cells": exc.quota.max_queued_cells,
            }, extra_headers={"Retry-After": "1"})
        return _write_response(writer, 202, job.status_dict())

    async def _http_events(self, job: Job, query: Dict,
                           writer: asyncio.StreamWriter) -> None:
        follow = query.get("follow", ["0"])[0] not in ("0", "")
        cursor = int(query.get("cursor", ["0"])[0] or "0")
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        while True:
            while cursor < len(job.events):
                line = json.dumps(job.events[cursor], sort_keys=True)
                writer.write(line.encode("utf-8") + b"\n")
                cursor += 1
            await writer.drain()
            if not follow or job.state.terminal:
                return
            await job.wait_events(cursor)


def _write_response(writer: asyncio.StreamWriter, status: int,
                    payload: Dict,
                    extra_headers: Optional[Dict[str, str]] = None
                    ) -> None:
    reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
               404: "Not Found", 429: "Too Many Requests",
               500: "Internal Server Error", 503: "Service Unavailable"}
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(
        ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
    )


def run_service(config: ServiceConfig) -> int:
    """Blocking entry point (``python -m repro serve``)."""

    async def _main() -> None:
        service = ReproService(config)
        await service.start()
        service.install_signal_handlers()
        print(
            f"repro service listening on "
            f"http://{service.host}:{service.port} "
            f"(state: {config.state_dir}, workers: {service.workers})",
            flush=True,
        )
        await service.serve_until_stopped()
        print("repro service drained; all jobs journaled", flush=True)

    asyncio.run(_main())
    return 0


class ServiceThread:
    """Host a service on a background thread (tests, examples).

    Usage::

        with ServiceThread(ServiceConfig(state_dir=...)) as handle:
            client = ServiceClient(handle.host, handle.port)
            ...

    The context exit requests a graceful drain and joins the thread.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service: Optional[ReproService] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._startup_error: Optional[BaseException] = None

    def _run(self) -> None:
        async def _main() -> None:
            try:
                self.service = ReproService(self.config)
                await self.service.start()
                self.host = self.service.host
                self.port = self.service.port
                self._loop = asyncio.get_event_loop()
            except BaseException as exc:  # surface on the caller's side
                self._startup_error = exc
                raise
            finally:
                self._ready.set()
            await self.service.serve_until_stopped()

        asyncio.run(_main())

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError(
                "service failed to start"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
