"""``python -m repro`` — top-level command dispatch.

Adds the performance tooling entry point::

    python -m repro profile <workload> [--system S] [--threads N]
        [--scale F] [--seed N] [--top N] [--sort cumulative|tottime]
        [--no-coalesce]

and forwards every other command (``run``, ``sweep``, ``fig*``,
``metrics``, ``timeline``, ...) to :mod:`repro.harness.cli`, so the
harness CLI is reachable as plain ``python -m repro run ...`` too.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _profile_main(argv: List[str]) -> int:
    from repro.harness.profiling import profile_run

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="cProfile one run and attribute events per subsystem",
    )
    parser.add_argument("workload", help="workload name (e.g. vacation-)")
    parser.add_argument("--system", default="LockillerTM")
    parser.add_argument("--threads", "--cores", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--top", type=int, default=20, help="rows in the pstats table"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="profile the reference per-op interpreter instead",
    )
    args = parser.parse_args(argv)
    report = profile_run(
        args.workload,
        system=args.system,
        threads=args.threads,
        scale=args.scale,
        seed=args.seed,
        top_n=args.top,
        sort=args.sort,
        coalesce=not args.no_coalesce,
    )
    print(report.render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    from repro.harness.cli import main as cli_main

    return cli_main(argv if argv else None)


if __name__ == "__main__":
    raise SystemExit(main())
