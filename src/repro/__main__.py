"""``python -m repro`` — top-level command dispatch.

Adds the performance tooling entry point::

    python -m repro profile <workload> [--system S] [--threads N]
        [--scale F] [--seed N] [--top N] [--sort cumulative|tottime]
        [--no-coalesce] [--save out.json]
    python -m repro profile --compare before.json after.json

the sweep-service commands (:mod:`repro.service.cli`)::

    python -m repro serve   [--state-dir D] [--port P] [--jobs N] ...
    python -m repro submit  --workloads ... --systems ... [--wait]
    python -m repro status|results|stream|cancel JOB

and forwards every other command (``run``, ``sweep``, ``fig*``,
``metrics``, ``timeline``, ...) to :mod:`repro.harness.cli`, so the
harness CLI is reachable as plain ``python -m repro run ...`` too.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _profile_main(argv: List[str]) -> int:
    from repro.harness.profiling import (
        compare_reports,
        load_report,
        profile_run,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="cProfile one run and attribute events per subsystem",
    )
    parser.add_argument(
        "workload",
        nargs="?",
        help="workload name (e.g. vacation-); omit with --compare",
    )
    parser.add_argument("--system", default="LockillerTM")
    parser.add_argument("--threads", "--cores", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--top", type=int, default=20, help="rows in the pstats table"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="profile the reference per-op interpreter instead",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        help="also write the report as JSON (input for --compare)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("BEFORE", "AFTER"),
        help="diff two saved reports' attribution tables and exit",
    )
    args = parser.parse_args(argv)
    if args.compare:
        print(compare_reports(*(load_report(p) for p in args.compare)))
        return 0
    if args.workload is None:
        parser.error("workload is required unless --compare is given")
    report = profile_run(
        args.workload,
        system=args.system,
        threads=args.threads,
        scale=args.scale,
        seed=args.seed,
        top_n=args.top,
        sort=args.sort,
        coalesce=not args.no_coalesce,
    )
    print(report.render())
    if args.save:
        report.save(args.save)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] in (
        "serve", "submit", "status", "results", "stream", "cancel",
    ):
        from repro.service.cli import main as service_main

        return service_main(argv)
    from repro.harness.cli import main as cli_main

    return cli_main(argv if argv else None)


if __name__ == "__main__":
    raise SystemExit(main())
