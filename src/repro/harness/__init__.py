"""Experiment harness: Table-II systems and per-figure drivers."""

from repro.harness.systems import SYSTEMS, get_system, system_names

__all__ = ["SYSTEMS", "get_system", "system_names"]
