"""Per-figure experiment drivers (see DESIGN.md experiment index).

Each ``figN_*`` function runs the workload/system/thread grid the paper's
figure covers and returns a structured result; ``print_figN`` renders the
same rows/series the figure plots.  Runs are memoized per
:class:`ExperimentContext` so overlapping figures (7, 12, 13 share the
same sweeps) do not re-simulate.

The ``scale`` knob shrinks the workloads uniformly — the paper's shapes
(who wins, by roughly what factor, where crossovers fall) are stable
across scale; the bench defaults trade a little noise for tractable
wall-clock time on one laptop core.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.params import (
    SystemParams,
    large_cache_params,
    small_cache_params,
    typical_params,
)
from repro.common.stats import (
    ABORT_REASONS,
    TIME_CATS,
    RunStats,
    geometric_mean,
    weighted_average,
)
from repro.harness.reporting import (
    format_breakdown_table,
    format_series,
    format_table,
)
from repro.harness.systems import TABLE_ORDER, get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import PAPER_ORDER, get_workload

#: Paper thread sweep; trimmed via REPRO_BENCH_THREADS for quick runs.
PAPER_THREADS: Tuple[int, ...] = (2, 4, 8, 16, 32)


def default_threads() -> Tuple[int, ...]:
    env = os.environ.get("REPRO_BENCH_THREADS")
    if env:
        return tuple(int(x) for x in env.split(",") if x)
    return (2, 8, 32)


def default_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


def default_jobs() -> int:
    return int(os.environ.get("REPRO_JOBS", "1") or "1")


@dataclass
class ExperimentContext:
    """Shared run memo + sweep configuration.

    ``jobs`` (default ``$REPRO_JOBS``, else serial) lets the figure
    drivers execute their grids through the multi-process runner —
    every driver pre-warms its full cell grid via :meth:`prewarm`, then
    reads the memo cell by cell.  ``disk_cache`` additionally persists
    results through a :class:`~repro.harness.runcache.RunCache`, so
    overlapping figures in *different* processes (e.g. the per-figure
    benches) reuse each other's runs.
    """

    scale: float = field(default_factory=default_scale)
    seed: int = 42
    threads: Tuple[int, ...] = field(default_factory=default_threads)
    workloads: Tuple[str, ...] = tuple(PAPER_ORDER)
    params: SystemParams = field(default_factory=typical_params)
    jobs: int = field(default_factory=default_jobs)
    #: Persistent run cache (RunCache | path | True | None).
    disk_cache: object = None
    _cache: Dict[tuple, RunStats] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        from repro.harness.runcache import coerce_cache

        self.disk_cache = coerce_cache(self.disk_cache)

    def _key(
        self, workload: str, system: str, threads: int, params_tag: str
    ) -> tuple:
        return (workload, system, threads, params_tag, self.scale, self.seed)

    def run(
        self,
        workload: str,
        system: str,
        threads: int,
        params: Optional[SystemParams] = None,
        params_tag: str = "typical",
    ) -> RunStats:
        key = self._key(workload, system, threads, params_tag)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        p = params or self.params
        if self.disk_cache is not None:
            hit = self.disk_cache.get_cell(
                workload,
                get_system(system),
                p,
                threads,
                self.scale,
                self.seed,
            )
            if hit is not None:
                self._cache[key] = hit
                return hit
        stats = run_workload(
            get_workload(workload),
            RunConfig(
                spec=get_system(system),
                threads=threads,
                scale=self.scale,
                seed=self.seed,
                params=p,
            ),
        )
        self._cache[key] = stats
        if self.disk_cache is not None:
            self.disk_cache.put_cell(
                workload,
                get_system(system),
                p,
                threads,
                self.scale,
                self.seed,
                stats,
            )
        return stats

    def prewarm(
        self,
        cells: Iterable[Tuple[str, str, int]],
        params: Optional[SystemParams] = None,
        params_tag: str = "typical",
    ) -> int:
        """Bulk-run missing ``(workload, system, threads)`` cells.

        With ``jobs > 1`` the missing cells execute concurrently in
        worker processes; either way each result lands in the memo (and
        the disk cache, when armed) so subsequent :meth:`run` calls are
        pure lookups.  Returns the number of cells actually executed.
        """
        from repro.harness.parallel import CellTask, run_cells

        p = params or self.params
        tasks: List[CellTask] = []
        keys: List[tuple] = []
        seen = set()
        for wl, system, th in cells:
            key = self._key(wl, system, th, params_tag)
            if key in seen or key in self._cache:
                continue
            seen.add(key)
            spec = get_system(system)
            if self.disk_cache is not None:
                hit = self.disk_cache.get_cell(
                    wl, spec, p, th, self.scale, self.seed
                )
                if hit is not None:
                    self._cache[key] = hit
                    continue
            tasks.append(
                CellTask(len(tasks), wl, spec, th, self.scale, self.seed, p)
            )
            keys.append(key)
        results = run_cells(tasks, jobs=self.jobs)
        for task, key in zip(tasks, keys):
            stats = results[task.index]
            self._cache[key] = stats
            if self.disk_cache is not None:
                self.disk_cache.put_cell(
                    task.workload,
                    task.spec,
                    p,
                    task.threads,
                    self.scale,
                    self.seed,
                    stats,
                )
        return len(tasks)

    def speedup_vs_cgl(
        self,
        workload: str,
        system: str,
        threads: int,
        params: Optional[SystemParams] = None,
        params_tag: str = "typical",
    ) -> float:
        cgl = self.run(workload, "CGL", threads, params, params_tag)
        sysr = self.run(workload, system, threads, params, params_tag)
        return cgl.execution_cycles / sysr.execution_cycles


# ---------------------------------------------------------------------------
# Tables I and II
# ---------------------------------------------------------------------------

def table1_parameters(params: Optional[SystemParams] = None) -> str:
    p = params or typical_params()
    rows = [
        ("Number of cores", p.num_cores),
        ("Cache line size", f"{p.l1.line_size} bytes"),
        (
            "L1 I&D caches",
            f"private, {p.l1.size_bytes // 1024}KB, {p.l1.assoc}-way, "
            f"{p.l1.hit_latency}-cycle hit",
        ),
        (
            "L2 (LLC)",
            f"shared, {p.llc.size_bytes // (1024 * 1024)}MB, "
            f"{p.llc.assoc}-way, {p.llc.hit_latency}-cycle hit",
        ),
        ("Memory", f"{p.memory.latency}-cycle latency"),
        ("Coherence protocol", "MESI, directory-based"),
        (
            "Topology / routing",
            f"2-D mesh ({p.network.mesh_cols}x{p.network.mesh_rows}), X-Y",
        ),
        (
            "Flit / message size",
            f"{p.network.flit_bytes} bytes / {p.network.data_flits} flits "
            f"(data), {p.network.control_flits} flit (control)",
        ),
        (
            "Link latency / bandwidth",
            f"{p.network.link_latency} cycle / 1 flit per cycle",
        ),
    ]
    return format_table(
        ["Component", "Value"], rows, title="Table I. System Model Parameters"
    )


def table2_systems() -> str:
    rows = [(name, get_system(name).describe()) for name in TABLE_ORDER]
    return format_table(
        ["System", "Composition"], rows, title="Table II. Evaluated Systems"
    )


# ---------------------------------------------------------------------------
# Fig. 1 — motivation: Baseline vs CGL at 2 threads
# ---------------------------------------------------------------------------

def fig1_motivation(ctx: ExperimentContext) -> Dict[str, float]:
    ctx.prewarm(
        (wl, system, 2)
        for wl in ctx.workloads
        for system in ("CGL", "Baseline")
    )
    return {
        wl: ctx.speedup_vs_cgl(wl, "Baseline", 2) for wl in ctx.workloads
    }


def print_fig1(ctx: ExperimentContext) -> str:
    data = fig1_motivation(ctx)
    out = format_table(
        ["workload", "speedup vs CGL"],
        sorted(data.items()),
        title=(
            "Fig. 1 — requester-wins best-effort HTM vs coarse-grained "
            "locking, 2 threads"
        ),
    )
    losers = [w for w, s in data.items() if s < 1.0]
    out += f"\nworkloads losing to CGL: {sorted(losers)}"
    return out


# ---------------------------------------------------------------------------
# Fig. 7 — speedup of every system vs CGL across thread counts
# ---------------------------------------------------------------------------

def fig7_speedup_grid(
    ctx: ExperimentContext,
    systems: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    systems = list(systems or [s for s in TABLE_ORDER if s != "CGL"])
    ctx.prewarm(
        (wl, system, th)
        for wl in ctx.workloads
        for system in ["CGL"] + systems
        for th in ctx.threads
    )
    grid: Dict[str, Dict[str, Dict[int, float]]] = {}
    for wl in ctx.workloads:
        grid[wl] = {}
        for system in systems:
            grid[wl][system] = {
                th: ctx.speedup_vs_cgl(wl, system, th) for th in ctx.threads
            }
    return grid


def print_fig7(
    ctx: ExperimentContext, systems: Optional[Sequence[str]] = None
) -> str:
    grid = fig7_speedup_grid(ctx, systems)
    blocks = []
    for wl, per_system in grid.items():
        blocks.append(
            format_series(
                per_system,
                title=f"Fig. 7 [{wl}] — speedup vs CGL (typical caches)",
            )
        )
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Fig. 8 — average commit rate of the recovery systems
# ---------------------------------------------------------------------------

FIG8_SYSTEMS = (
    "Baseline",
    "LockillerTM-RAI",
    "LockillerTM-RRI",
    "LockillerTM-RWI",
)


def fig8_commit_rate(ctx: ExperimentContext) -> Dict[str, Dict[int, float]]:
    """Average commit rate per system/thread count.

    The average weights each workload by its transaction attempts —
    a workload committing 9 of 10 transactions should not drag the
    aggregate around as hard as one committing 9000 of 10000.
    """
    ctx.prewarm(
        (wl, system, th)
        for wl in ctx.workloads
        for system in FIG8_SYSTEMS
        for th in ctx.threads
    )
    out: Dict[str, Dict[int, float]] = {}
    for system in FIG8_SYSTEMS:
        out[system] = {}
        for th in ctx.threads:
            runs = [ctx.run(wl, system, th) for wl in ctx.workloads]
            if any(r.tx_attempts for r in runs):
                out[system][th] = weighted_average(
                    (r.commit_rate, float(r.tx_attempts)) for r in runs
                )
            else:
                out[system][th] = 1.0
    return out


def print_fig8(ctx: ExperimentContext) -> str:
    data = fig8_commit_rate(ctx)
    out = format_series(
        data,
        title="Fig. 8 — average transaction commit rate (all workloads)",
    )
    base = data["Baseline"]
    improvements = {
        system: {
            th: (vals[th] / base[th] if base[th] else float("nan"))
            for th in vals
        }
        for system, vals in data.items()
        if system != "Baseline"
    }
    out += "\n\n" + format_series(
        improvements, title="commit-rate improvement over Baseline (x)"
    )
    return out


# ---------------------------------------------------------------------------
# Figs. 9 / 11 — execution-time breakdown + commit rate
# ---------------------------------------------------------------------------

FIG9_SYSTEMS = ("LockillerTM-RWI", "LockillerTM-RWL", "LockillerTM-RWIL")
FIG11_SYSTEMS = ("LockillerTM-RWIL", "LockillerTM")


def breakdown_experiment(
    ctx: ExperimentContext,
    threads: int,
    systems: Sequence[str],
) -> Dict[str, Dict[str, dict]]:
    ctx.prewarm(
        (wl, system, threads)
        for wl in ctx.workloads
        for system in systems
    )
    out: Dict[str, Dict[str, dict]] = {}
    for wl in ctx.workloads:
        out[wl] = {}
        for system in systems:
            stats = ctx.run(wl, system, threads)
            out[wl][system] = {
                "fractions": {
                    c.value: f for c, f in stats.time_fractions().items()
                },
                "commit_rate": stats.commit_rate,
                "cycles": stats.execution_cycles,
            }
    return out


def fig9_breakdown32(ctx: ExperimentContext) -> Dict[str, Dict[str, dict]]:
    return breakdown_experiment(ctx, max(ctx.threads), FIG9_SYSTEMS)


def fig11_breakdown2(ctx: ExperimentContext) -> Dict[str, Dict[str, dict]]:
    return breakdown_experiment(ctx, min(ctx.threads), FIG11_SYSTEMS)


def _print_breakdown(
    data: Dict[str, Dict[str, dict]], title: str
) -> str:
    cats = [c.value for c in TIME_CATS]
    blocks = []
    for wl, per_system in data.items():
        table = {
            system: entry["fractions"] for system, entry in per_system.items()
        }
        block = format_breakdown_table(
            table,
            row_order=list(per_system),
            col_order=cats,
            title=f"{title} [{wl}]",
        )
        rates = "  ".join(
            f"{system}: cr={entry['commit_rate']:.2f}"
            for system, entry in per_system.items()
        )
        blocks.append(block + "\n" + rates)
    return "\n\n".join(blocks)


def print_fig9(ctx: ExperimentContext) -> str:
    threads = max(ctx.threads)
    return _print_breakdown(
        fig9_breakdown32(ctx),
        f"Fig. 9 — execution-time breakdown, {threads} threads",
    )


def print_fig11(ctx: ExperimentContext) -> str:
    threads = min(ctx.threads)
    return _print_breakdown(
        fig11_breakdown2(ctx),
        f"Fig. 11 — execution-time breakdown, {threads} threads",
    )


# ---------------------------------------------------------------------------
# Fig. 10 — abort-reason percentages at 2 threads
# ---------------------------------------------------------------------------

FIG10_SYSTEMS = ("Baseline", "LockillerTM-RWIL", "LockillerTM")


def fig10_abort_reasons(
    ctx: ExperimentContext, threads: Optional[int] = None
) -> Dict[str, Dict[str, Dict[str, float]]]:
    th = threads if threads is not None else min(ctx.threads)
    ctx.prewarm(
        (wl, system, th)
        for wl in ctx.workloads
        for system in FIG10_SYSTEMS
    )
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for wl in ctx.workloads:
        out[wl] = {}
        for system in FIG10_SYSTEMS:
            stats = ctx.run(wl, system, th)
            out[wl][system] = {
                r.value: f for r, f in stats.abort_fractions().items()
            }
    return out


def print_fig10(ctx: ExperimentContext) -> str:
    th = min(ctx.threads)
    data = fig10_abort_reasons(ctx, th)
    reasons = [r.value for r in ABORT_REASONS if r.value != "explicit"]
    blocks = []
    for wl, per_system in data.items():
        blocks.append(
            format_breakdown_table(
                per_system,
                row_order=list(per_system),
                col_order=reasons,
                title=f"Fig. 10 — abort reasons, {th} threads [{wl}]",
            )
        )
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Fig. 12 — average speedup across systems
# ---------------------------------------------------------------------------

def fig12_avg_speedup(
    ctx: ExperimentContext,
    systems: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[int, float]]:
    systems = list(systems or [s for s in TABLE_ORDER if s != "CGL"])
    ctx.prewarm(
        (wl, system, th)
        for wl in ctx.workloads
        for system in ["CGL"] + systems
        for th in ctx.threads
    )
    out: Dict[str, Dict[int, float]] = {}
    for system in systems:
        out[system] = {}
        for th in ctx.threads:
            out[system][th] = geometric_mean(
                ctx.speedup_vs_cgl(wl, system, th) for wl in ctx.workloads
            )
    return out


def headline_ratios(ctx: ExperimentContext) -> Dict[str, float]:
    """The paper's 1.86x / 1.57x headline: LockillerTM vs Baseline and
    vs LosaTM-SAFU, geomean over workloads and thread counts."""
    ctx.prewarm(
        (wl, system, th)
        for th in ctx.threads
        for wl in ctx.workloads
        for system in ("LockillerTM", "Baseline", "LosaTM-SAFU")
    )
    ratios_base: List[float] = []
    ratios_losa: List[float] = []
    for th in ctx.threads:
        for wl in ctx.workloads:
            lk = ctx.run(wl, "LockillerTM", th).execution_cycles
            base = ctx.run(wl, "Baseline", th).execution_cycles
            losa = ctx.run(wl, "LosaTM-SAFU", th).execution_cycles
            ratios_base.append(base / lk)
            ratios_losa.append(losa / lk)
    return {
        "vs Baseline": geometric_mean(ratios_base),
        "vs LosaTM-SAFU": geometric_mean(ratios_losa),
    }


def print_fig12(ctx: ExperimentContext) -> str:
    data = fig12_avg_speedup(ctx)
    out = format_series(
        data,
        title="Fig. 12 — average (geomean) speedup vs CGL across workloads",
    )
    heads = headline_ratios(ctx)
    out += (
        f"\n\nheadline: LockillerTM speedup {heads['vs Baseline']:.2f}x "
        f"vs Baseline, {heads['vs LosaTM-SAFU']:.2f}x vs LosaTM-SAFU "
        "(paper: 1.86x / 1.57x)"
    )
    return out


# ---------------------------------------------------------------------------
# Fig. 13 — cache-size sensitivity
# ---------------------------------------------------------------------------

FIG13_SYSTEMS = ("Baseline", "LosaTM-SAFU", "LockillerTM")


def fig13_cache_sensitivity(
    ctx: ExperimentContext,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    configs = {
        "small (8KB/1MB)": (small_cache_params(), "small"),
        "typical (32KB/8MB)": (typical_params(), "typical"),
        "large (128KB/32MB)": (large_cache_params(), "large"),
    }
    out: Dict[str, Dict[str, Dict[int, float]]] = {}
    for label, (params, tag) in configs.items():
        ctx.prewarm(
            (
                (wl, system, th)
                for wl in ctx.workloads
                for system in ("CGL",) + FIG13_SYSTEMS
                for th in ctx.threads
            ),
            params=params,
            params_tag=tag,
        )
        out[label] = {}
        for system in FIG13_SYSTEMS:
            out[label][system] = {}
            for th in ctx.threads:
                out[label][system][th] = geometric_mean(
                    ctx.speedup_vs_cgl(wl, system, th, params, tag)
                    for wl in ctx.workloads
                )
    return out


def extreme_scenario(ctx: ExperimentContext) -> Dict[str, float]:
    """The 'maximum 7.79x / 6.73x' corner: high-contention workloads,
    8 KB L1, most threads."""
    from repro.workloads.registry import HIGH_CONTENTION

    params, tag = small_cache_params(), "small"
    th = max(ctx.threads)
    ctx.prewarm(
        (
            (wl, system, th)
            for wl in HIGH_CONTENTION
            for system in ("LockillerTM", "Baseline", "LosaTM-SAFU")
        ),
        params=params,
        params_tag=tag,
    )
    ratios_base: List[float] = []
    ratios_losa: List[float] = []
    for wl in HIGH_CONTENTION:
        lk = ctx.run(wl, "LockillerTM", th, params, tag).execution_cycles
        base = ctx.run(wl, "Baseline", th, params, tag).execution_cycles
        losa = ctx.run(wl, "LosaTM-SAFU", th, params, tag).execution_cycles
        ratios_base.append(base / lk)
        ratios_losa.append(losa / lk)
    return {
        "max vs Baseline": max(ratios_base),
        "max vs LosaTM-SAFU": max(ratios_losa),
    }


def print_fig13(ctx: ExperimentContext) -> str:
    data = fig13_cache_sensitivity(ctx)
    blocks = []
    for label, per_system in data.items():
        blocks.append(
            format_series(
                per_system,
                title=f"Fig. 13 — geomean speedup vs CGL, {label}",
            )
        )
    ext = extreme_scenario(ctx)
    blocks.append(
        "extreme scenario (8KB L1, high-contention workloads, "
        f"{max(ctx.threads)} threads): LockillerTM up to "
        f"{ext['max vs Baseline']:.2f}x vs Baseline, "
        f"{ext['max vs LosaTM-SAFU']:.2f}x vs LosaTM-SAFU "
        "(paper: 7.79x / 6.73x)"
    )
    return "\n\n".join(blocks)
