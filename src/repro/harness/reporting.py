"""Plain-text reporting helpers for the experiment harness.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep that output aligned and diff-friendly so
EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a rule under the header."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths[: len(headers)]))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_breakdown_table(
    data: Mapping[str, Mapping[str, float]],
    row_order: Sequence[str],
    col_order: Sequence[str],
    title: Optional[str] = None,
    as_percent: bool = True,
) -> str:
    """Rows = systems/workloads, columns = categories (fractions)."""
    headers = ["", *col_order]
    rows = []
    for r in row_order:
        cells: List[object] = [r]
        for c in col_order:
            v = data.get(r, {}).get(c, 0.0)
            cells.append(f"{100 * v:.1f}%" if as_percent else f"{v:.3f}")
        rows.append(cells)
    return format_table(headers, rows, title=title)


def format_series(
    series: Mapping[str, Mapping[int, float]],
    x_label: str = "threads",
    title: Optional[str] = None,
) -> str:
    """One row per named series, one column per x value."""
    xs = sorted({x for vals in series.values() for x in vals})
    headers = [x_label, *[str(x) for x in xs]]
    rows = []
    for name, vals in series.items():
        rows.append([name, *[vals.get(x, float("nan")) for x in xs]])
    return format_table(headers, rows, title=title)
