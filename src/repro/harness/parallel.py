"""Multi-process execution of independent simulation cells.

Every cell of an experiment grid is an isolated, deterministic
simulation — a pure function of its :class:`CellTask` — so a sweep can
fan cells out to worker processes and reassemble the results without
changing a single bit of output: workers return ``(index, RunStats)``
pairs, the parent slots each result at its index, and the merged list is
identical (same order, same stats) to what the serial loop produces.
Determinism needs no cross-process coordination because no RNG state is
shared: each run seeds its own generators from the cell's seed.

``jobs`` semantics (shared by every harness entry point):

* ``None``  → ``$REPRO_JOBS`` if set, else serial;
* ``0``     → one worker per CPU (``os.cpu_count()``);
* ``1``     → serial, in-process (no pool, no pickling);
* ``N > 1`` → a ``ProcessPoolExecutor`` with ``N`` workers.

Worker dispatch uses plain picklable dataclasses (``SystemSpec`` and
``SystemParams`` are frozen dataclasses; workloads travel by registry
name), so the pool works under both fork and spawn start methods.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.params import SystemParams
from repro.common.stats import RunStats
from repro.core.policies import SystemSpec


@dataclass(frozen=True)
class CellTask:
    """One simulation cell, fully resolved and picklable."""

    index: int
    workload: str
    spec: SystemSpec
    threads: int
    scale: float
    seed: int
    params: SystemParams


def resolve_jobs(jobs: Optional[int]) -> int:
    """Apply the shared ``jobs`` convention; returns a worker count >= 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"invalid REPRO_JOBS={env!r}: expected an integer "
                    "(0 = one worker per CPU, 1 = serial, N > 1 = "
                    "N worker processes)"
                ) from None
        else:
            jobs = 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def execute_cell(task: CellTask) -> Tuple[int, RunStats]:
    """Run one cell (worker entry point; also the serial path).

    Cells share the process-wide build cache and machine pool (the
    RunConfig defaults): both are bit-identical plumbing (pinned by the
    equivalence suites), and per worker process, so no state ever
    crosses process boundaries.
    """
    from repro.sim.runner import RunConfig, run_workload
    from repro.workloads.registry import get_workload

    stats = run_workload(
        get_workload(task.workload),
        RunConfig(
            spec=task.spec,
            threads=task.threads,
            scale=task.scale,
            seed=task.seed,
            params=task.params,
        ),
    )
    return task.index, stats


def run_cells(
    tasks: Sequence[CellTask],
    jobs: Optional[int] = None,
    on_done: Optional[Callable[[CellTask, RunStats], None]] = None,
) -> List[Optional[RunStats]]:
    """Execute ``tasks``; returns stats positioned by each task's index.

    The output list spans ``max(index) + 1`` slots so callers can mix
    executed cells with pre-filled ones (cache hits); slots without a
    task stay ``None``.  With ``jobs > 1`` cells run in a process pool
    and complete in nondeterministic order, but the returned list is
    always in index order — parallel output is bit-identical to serial.
    ``on_done`` fires in completion order (use only for progress).
    """
    if not tasks:
        return []
    size = max(t.index for t in tasks) + 1
    out: List[Optional[RunStats]] = [None] * size
    workers = min(resolve_jobs(jobs), len(tasks))
    if workers <= 1:
        for task in tasks:
            _, stats = execute_cell(task)
            out[task.index] = stats
            if on_done is not None:
                on_done(task, stats)
        return out
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {pool.submit(execute_cell, t): t for t in tasks}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                task = pending.pop(fut)
                index, stats = fut.result()
                out[index] = stats
                if on_done is not None:
                    on_done(task, stats)
    return out
