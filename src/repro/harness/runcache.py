"""Persistent on-disk cache of simulation results.

A run is a pure function of ``(workload, system spec, machine params,
threads, scale, seed)`` (see docs/ARCHITECTURE.md §7), so its
:class:`~repro.common.stats.RunStats` can be cached on disk and reused
across benches, figure drivers and resumed sweeps.  The cache key is a
SHA-256 content hash over the *canonicalized* cell description — every
spec flag and every machine parameter is part of the digest, so changing
any of them (or the cache/result schema version) silently invalidates
the entry by landing on a different key.  Nothing is ever mutated in
place: entries are written atomically (temp file + ``os.replace``) and a
corrupt or stale-schema file simply reads as a miss.

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON file per cell,
sharded by the first hash byte.  The root defaults to
``$REPRO_RUN_CACHE_DIR``, falling back to
``<XDG_CACHE_HOME|~/.cache>/repro-lockillertm/runcache``.

This composes with — rather than replaces — the crash-tolerant sweep
checkpoint (:mod:`repro.resilience.harness`): the checkpoint is a
per-campaign resume journal; the run cache is a global memo shared by
*every* campaign.  Fault-injected runs are never cached (the plan
perturbs timing, and chaos campaigns want fresh draws).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from enum import Enum
from typing import Dict, Optional

from repro.common.params import SystemParams
from repro.common.stats import RunStats
from repro.core.policies import SystemSpec
from repro.harness.export import (
    SCHEMA_VERSION,
    run_stats_from_dict,
    run_stats_to_dict,
)

#: Bump to invalidate every cached result (e.g. after a simulator change
#: that intentionally alters timing).  The export schema version is also
#: folded into the key, so result-format changes invalidate too.
CACHE_SCHEMA_VERSION = 1


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_RUN_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    return os.path.join(xdg, "repro-lockillertm", "runcache")


def _canonical(obj):
    """Recursively reduce dataclasses/enums to stable JSON-able values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Enum):
        return obj.name
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for cache key")


def cell_key(
    workload: str,
    spec: SystemSpec,
    params: SystemParams,
    threads: int,
    scale: float,
    seed: int,
) -> str:
    """Content hash identifying one simulation cell."""
    # Normalize the numeric cell coordinates so equal values hash
    # equally regardless of Python type: ``scale=1`` (int) and
    # ``scale=1.0`` (float) describe the same cell, but ``json.dumps``
    # renders them differently ("1" vs "1.0").  Coercing here keeps all
    # existing float-scale keys unchanged (json renders ``float(0.05)``
    # exactly as before), so no CACHE_SCHEMA_VERSION bump is needed.
    payload = json.dumps(
        {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "result_schema": SCHEMA_VERSION,
            "workload": workload,
            "spec": _canonical(spec),
            "params": _canonical(params),
            "threads": int(threads),
            "scale": float(scale),
            "seed": int(seed),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class RunCache:
    """File-per-cell result cache with hit/miss accounting."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = str(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[RunStats]:
        path = self.path_for(key)
        try:
            fh = open(path, "r", encoding="utf-8")
        except OSError:
            # No entry on disk: a plain miss.
            self.misses += 1
            return None
        try:
            with fh:
                stats = run_stats_from_dict(json.load(fh))
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt or stale-schema entry: a miss, and the file can
            # never become a hit again — unlink it so the next run
            # re-stores cleanly instead of re-parsing garbage forever.
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return stats

    _tmp_seq = itertools.count()

    def put(
        self, key: str, stats: RunStats, meta: Optional[Dict] = None
    ) -> None:
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # pid disambiguates processes; the class-level counter
        # disambiguates threads within one process, so two concurrent
        # same-key puts never interleave writes into one temp file.
        tmp = f"{path}.tmp.{os.getpid()}.{next(RunCache._tmp_seq)}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(run_stats_to_dict(stats, meta), fh, sort_keys=True)
        os.replace(tmp, path)
        self.stores += 1

    # -- cell-level convenience ----------------------------------------

    def get_cell(
        self,
        workload: str,
        spec: SystemSpec,
        params: SystemParams,
        threads: int,
        scale: float,
        seed: int,
    ) -> Optional[RunStats]:
        return self.get(cell_key(workload, spec, params, threads, scale, seed))

    def put_cell(
        self,
        workload: str,
        spec: SystemSpec,
        params: SystemParams,
        threads: int,
        scale: float,
        seed: int,
        stats: RunStats,
    ) -> None:
        self.put(
            cell_key(workload, spec, params, threads, scale, seed),
            stats,
            meta={
                "workload": workload,
                "system": spec.name,
                "threads": threads,
                "scale": scale,
                "seed": seed,
            },
        )


def coerce_cache(cache) -> Optional[RunCache]:
    """Normalize the ``cache=`` argument accepted by the harness APIs.

    ``None``/``False`` → no caching; ``True`` → the default directory;
    a string/path → a cache rooted there; a :class:`RunCache` instance →
    itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return RunCache()
    if isinstance(cache, RunCache):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return RunCache(str(cache))
    raise TypeError(f"cannot interpret cache={cache!r}")
