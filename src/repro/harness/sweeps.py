"""Generic parameter-sweep driver.

The figure drivers in :mod:`repro.harness.experiments` cover the paper's
grids; this module generalizes them: declare axes (workloads, systems,
thread counts, cache configs, seeds, HTM parameter overrides), get back
a tidy list of records you can filter/aggregate, with optional progress
reporting and a run cache.  Used by the ablation benches and available
to downstream users exploring their own design space.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.common.params import SystemParams, typical_params
from repro.common.stats import RunStats
from repro.core.policies import SystemSpec
from repro.harness.systems import get_system


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid."""

    workload: str
    system: str
    threads: int
    seed: int
    params_tag: str = "typical"

    def label(self) -> str:
        return (
            f"{self.workload}/{self.system}/t{self.threads}"
            f"/s{self.seed}/{self.params_tag}"
        )


@dataclass
class SweepRecord:
    point: SweepPoint
    stats: RunStats

    @property
    def cycles(self) -> int:
        return self.stats.execution_cycles

    @property
    def commit_rate(self) -> float:
        return self.stats.commit_rate


@dataclass
class Sweep:
    """Cartesian sweep definition."""

    workloads: Sequence[str]
    systems: Sequence[str]
    threads: Sequence[int] = (8,)
    seeds: Sequence[int] = (42,)
    scale: float = 0.25
    #: Named machine configurations; default only "typical".
    params_by_tag: Mapping[str, SystemParams] = field(
        default_factory=lambda: {"typical": typical_params()}
    )
    #: Optional spec resolver for systems outside Table II.
    spec_resolver: Callable[[str], SystemSpec] = get_system

    def points(self) -> Iterable[SweepPoint]:
        for wl, system, th, seed, tag in itertools.product(
            self.workloads,
            self.systems,
            self.threads,
            self.seeds,
            self.params_by_tag,
        ):
            yield SweepPoint(wl, system, th, seed, tag)

    def size(self) -> int:
        return (
            len(self.workloads)
            * len(self.systems)
            * len(self.threads)
            * len(self.seeds)
            * len(self.params_by_tag)
        )

    def run(
        self,
        progress: Optional[Callable[[SweepPoint, int, int], None]] = None,
        jobs: Optional[int] = None,
        cache=None,
    ) -> "SweepResults":
        """Execute every cell; returns records in :meth:`points` order.

        ``jobs`` fans cells out to worker processes (see
        :mod:`repro.harness.parallel` for the ``None``/``0``/``N``
        convention); results are merged back in grid order, so a
        parallel run is bit-identical to a serial one.  ``cache``
        (``True``, a directory path, or a
        :class:`~repro.harness.runcache.RunCache`) consults and fills
        the persistent run cache so repeated or resumed sweeps skip
        completed cells.  ``progress`` fires once per completed cell
        with a monotonically increasing count (completion order under
        ``jobs > 1``).
        """
        from repro.harness.parallel import CellTask, run_cells
        from repro.harness.runcache import coerce_cache

        rc = coerce_cache(cache)
        points = list(self.points())
        total = len(points)
        stats_list: List[Optional[RunStats]] = [None] * total
        tasks: List[CellTask] = []
        done_count = 0
        for i, point in enumerate(points):
            spec = self.spec_resolver(point.system)
            params = self.params_by_tag[point.params_tag]
            if rc is not None:
                hit = rc.get_cell(
                    point.workload,
                    spec,
                    params,
                    point.threads,
                    self.scale,
                    point.seed,
                )
                if hit is not None:
                    stats_list[i] = hit
                    done_count += 1
                    if progress is not None:
                        progress(point, done_count, total)
                    continue
            tasks.append(
                CellTask(
                    i,
                    point.workload,
                    spec,
                    point.threads,
                    self.scale,
                    point.seed,
                    params,
                )
            )

        def on_done(task: CellTask, stats: RunStats) -> None:
            nonlocal done_count
            if rc is not None:
                rc.put_cell(
                    task.workload,
                    task.spec,
                    task.params,
                    task.threads,
                    task.scale,
                    task.seed,
                    stats,
                )
            done_count += 1
            if progress is not None:
                progress(points[task.index], done_count, total)

        executed = run_cells(tasks, jobs=jobs, on_done=on_done)
        for task in tasks:
            stats_list[task.index] = executed[task.index]
        return SweepResults(
            [SweepRecord(p, s) for p, s in zip(points, stats_list)]
        )

    def rerun_with_telemetry(
        self,
        cache,
        telemetry=None,
        run_label: Optional[str] = None,
        **criteria,
    ) -> Dict[str, str]:
        """Re-run one cell under full telemetry; dump artifacts beside
        its runcache entry.

        ``criteria`` select exactly one :class:`SweepPoint` (same
        vocabulary as :meth:`SweepResults.filter`).  The cell is re-run
        with an attached :class:`~repro.telemetry.Telemetry` session —
        runs are pure functions of the cell key, so the re-run
        reproduces the cached result bit-for-bit while capturing the
        *why* — and ``<key>.metrics.json`` / ``<key>.trace.json`` are
        written atomically next to ``<key>.json`` in the cache shard.
        Returns ``{"metrics": path, "trace": path, "result": path}``.
        """
        from repro.harness.runcache import cell_key, coerce_cache
        from repro.sim.runner import RunConfig, run_workload
        from repro.telemetry import Telemetry
        from repro.telemetry.sinks import artifact_path
        from repro.workloads.registry import get_workload

        rc = coerce_cache(cache if cache is not None else True)
        if rc is None:
            raise ValueError("rerun_with_telemetry needs a run cache")
        _check_point_fields(*criteria)
        matches = [
            p
            for p in self.points()
            if all(getattr(p, k) == v for k, v in criteria.items())
        ]
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} sweep points match {criteria!r}; expected 1"
            )
        point = matches[0]
        spec = self.spec_resolver(point.system)
        params = self.params_by_tag[point.params_tag]
        tel = telemetry if telemetry is not None else Telemetry()
        stats = run_workload(
            get_workload(point.workload),
            RunConfig(
                spec,
                threads=point.threads,
                scale=self.scale,
                seed=point.seed,
                params=params,
                telemetry=tel,
            ),
        )
        key = cell_key(
            point.workload, spec, params, point.threads, self.scale, point.seed
        )
        rc.put(key, stats, meta={"workload": point.workload,
                                 "system": point.system,
                                 "threads": point.threads,
                                 "scale": self.scale,
                                 "seed": point.seed})
        label = run_label or point.label()
        out = {"result": rc.path_for(key)}
        out["metrics"] = tel.write_metrics(artifact_path(rc, key, "metrics"))
        if tel.timeline is not None:
            out["trace"] = tel.write_trace(
                artifact_path(rc, key, "trace"), run_label=label
            )
        return out

    def run_resilient(
        self,
        checkpoint_path: Optional[str] = None,
        retry=None,
        progress: Optional[Callable[[SweepPoint, int, int], None]] = None,
        fault_plan=None,
        watchdog=None,
        cache=None,
    ):
        """Crash-tolerant :meth:`run`: per-cell timeout + retry +
        quarantine, with optional JSON checkpointing for resume.  The
        run cache (``cache=``) composes with the checkpoint: cells found
        in either are not re-run.  See
        :func:`repro.resilience.harness.run_sweep_resilient`."""
        from repro.resilience.harness import run_sweep_resilient

        return run_sweep_resilient(
            self,
            checkpoint_path=checkpoint_path,
            retry=retry,
            progress=progress,
            fault_plan=fault_plan,
            watchdog=watchdog,
            cache=cache,
        )


#: The criteria vocabulary of filter/one/pivot.
POINT_FIELDS = tuple(f.name for f in fields(SweepPoint))


def _check_point_fields(*names: str) -> None:
    """Reject typo'd criterion keys with the valid vocabulary attached."""
    for name in names:
        if name not in POINT_FIELDS:
            raise KeyError(
                f"unknown sweep criterion {name!r}; valid keys: "
                + ", ".join(POINT_FIELDS)
            )


class SweepResults:
    """Query interface over sweep records."""

    def __init__(self, records: List[SweepRecord]) -> None:
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, **criteria) -> "SweepResults":
        _check_point_fields(*criteria)

        def match(r: SweepRecord) -> bool:
            return all(
                getattr(r.point, key) == value
                for key, value in criteria.items()
            )

        return SweepResults([r for r in self.records if match(r)])

    def one(self, **criteria) -> SweepRecord:
        matches = self.filter(**criteria).records
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} records match {criteria!r}; expected 1"
            )
        return matches[0]

    def speedups_vs(self, baseline_system: str) -> Dict[SweepPoint, float]:
        """Per-point speedup relative to the same cell on ``baseline``."""
        base: Dict[tuple, int] = {}
        for r in self.records:
            if r.point.system == baseline_system:
                key = (
                    r.point.workload,
                    r.point.threads,
                    r.point.seed,
                    r.point.params_tag,
                )
                base[key] = r.cycles
        out: Dict[SweepPoint, float] = {}
        for r in self.records:
            if r.point.system == baseline_system:
                continue
            key = (
                r.point.workload,
                r.point.threads,
                r.point.seed,
                r.point.params_tag,
            )
            if key in base:
                out[r.point] = base[key] / r.cycles
        return out

    def pivot(
        self,
        value: Callable[[SweepRecord], float],
        rows: str = "system",
        cols: str = "threads",
    ) -> Dict[object, Dict[object, float]]:
        """Aggregate (mean) a metric into rows x cols."""
        _check_point_fields(rows, cols)
        acc: Dict[object, Dict[object, List[float]]] = {}
        for r in self.records:
            rkey = getattr(r.point, rows)
            ckey = getattr(r.point, cols)
            acc.setdefault(rkey, {}).setdefault(ckey, []).append(value(r))
        return {
            rkey: {ckey: sum(vs) / len(vs) for ckey, vs in row.items()}
            for rkey, row in acc.items()
        }


def small_vs_typical_sweep(
    workloads: Sequence[str],
    systems: Sequence[str],
    threads: Sequence[int] = (8,),
    scale: float = 0.2,
) -> Sweep:
    """Convenience: the Fig.-13 style two-cache-config sweep."""
    from repro.common.params import small_cache_params

    return Sweep(
        workloads=workloads,
        systems=systems,
        threads=threads,
        scale=scale,
        params_by_tag={
            "typical": typical_params(),
            "small": small_cache_params(),
        },
    )
