"""Generic parameter-sweep driver.

The figure drivers in :mod:`repro.harness.experiments` cover the paper's
grids; this module generalizes them: declare axes (workloads, systems,
thread counts, cache configs, seeds, HTM parameter overrides), get back
a tidy list of records you can filter/aggregate, with optional progress
reporting and a run cache.  Used by the ablation benches and available
to downstream users exploring their own design space.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.common.params import SystemParams, typical_params
from repro.common.stats import RunStats
from repro.core.policies import SystemSpec
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid."""

    workload: str
    system: str
    threads: int
    seed: int
    params_tag: str = "typical"

    def label(self) -> str:
        return (
            f"{self.workload}/{self.system}/t{self.threads}"
            f"/s{self.seed}/{self.params_tag}"
        )


@dataclass
class SweepRecord:
    point: SweepPoint
    stats: RunStats

    @property
    def cycles(self) -> int:
        return self.stats.execution_cycles

    @property
    def commit_rate(self) -> float:
        return self.stats.commit_rate


@dataclass
class Sweep:
    """Cartesian sweep definition."""

    workloads: Sequence[str]
    systems: Sequence[str]
    threads: Sequence[int] = (8,)
    seeds: Sequence[int] = (42,)
    scale: float = 0.25
    #: Named machine configurations; default only "typical".
    params_by_tag: Mapping[str, SystemParams] = field(
        default_factory=lambda: {"typical": typical_params()}
    )
    #: Optional spec resolver for systems outside Table II.
    spec_resolver: Callable[[str], SystemSpec] = get_system

    def points(self) -> Iterable[SweepPoint]:
        for wl, system, th, seed, tag in itertools.product(
            self.workloads,
            self.systems,
            self.threads,
            self.seeds,
            self.params_by_tag,
        ):
            yield SweepPoint(wl, system, th, seed, tag)

    def size(self) -> int:
        return (
            len(self.workloads)
            * len(self.systems)
            * len(self.threads)
            * len(self.seeds)
            * len(self.params_by_tag)
        )

    def run(
        self,
        progress: Optional[Callable[[SweepPoint, int, int], None]] = None,
    ) -> "SweepResults":
        records: List[SweepRecord] = []
        total = self.size()
        for i, point in enumerate(self.points()):
            stats = run_workload(
                get_workload(point.workload),
                RunConfig(
                    spec=self.spec_resolver(point.system),
                    threads=point.threads,
                    scale=self.scale,
                    seed=point.seed,
                    params=self.params_by_tag[point.params_tag],
                ),
            )
            records.append(SweepRecord(point, stats))
            if progress is not None:
                progress(point, i + 1, total)
        return SweepResults(records)

    def run_resilient(
        self,
        checkpoint_path: Optional[str] = None,
        retry=None,
        progress: Optional[Callable[[SweepPoint, int, int], None]] = None,
        fault_plan=None,
        watchdog=None,
    ):
        """Crash-tolerant :meth:`run`: per-cell timeout + retry +
        quarantine, with optional JSON checkpointing for resume.  See
        :func:`repro.resilience.harness.run_sweep_resilient`."""
        from repro.resilience.harness import run_sweep_resilient

        return run_sweep_resilient(
            self,
            checkpoint_path=checkpoint_path,
            retry=retry,
            progress=progress,
            fault_plan=fault_plan,
            watchdog=watchdog,
        )


class SweepResults:
    """Query interface over sweep records."""

    def __init__(self, records: List[SweepRecord]) -> None:
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, **criteria) -> "SweepResults":
        def match(r: SweepRecord) -> bool:
            return all(
                getattr(r.point, key) == value
                for key, value in criteria.items()
            )

        return SweepResults([r for r in self.records if match(r)])

    def one(self, **criteria) -> SweepRecord:
        matches = self.filter(**criteria).records
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} records match {criteria!r}; expected 1"
            )
        return matches[0]

    def speedups_vs(self, baseline_system: str) -> Dict[SweepPoint, float]:
        """Per-point speedup relative to the same cell on ``baseline``."""
        base: Dict[tuple, int] = {}
        for r in self.records:
            if r.point.system == baseline_system:
                key = (
                    r.point.workload,
                    r.point.threads,
                    r.point.seed,
                    r.point.params_tag,
                )
                base[key] = r.cycles
        out: Dict[SweepPoint, float] = {}
        for r in self.records:
            if r.point.system == baseline_system:
                continue
            key = (
                r.point.workload,
                r.point.threads,
                r.point.seed,
                r.point.params_tag,
            )
            if key in base:
                out[r.point] = base[key] / r.cycles
        return out

    def pivot(
        self,
        value: Callable[[SweepRecord], float],
        rows: str = "system",
        cols: str = "threads",
    ) -> Dict[object, Dict[object, float]]:
        """Aggregate (mean) a metric into rows x cols."""
        acc: Dict[object, Dict[object, List[float]]] = {}
        for r in self.records:
            rkey = getattr(r.point, rows)
            ckey = getattr(r.point, cols)
            acc.setdefault(rkey, {}).setdefault(ckey, []).append(value(r))
        return {
            rkey: {ckey: sum(vs) / len(vs) for ckey, vs in row.items()}
            for rkey, row in acc.items()
        }


def small_vs_typical_sweep(
    workloads: Sequence[str],
    systems: Sequence[str],
    threads: Sequence[int] = (8,),
    scale: float = 0.2,
) -> Sweep:
    """Convenience: the Fig.-13 style two-cache-config sweep."""
    from repro.common.params import small_cache_params

    return Sweep(
        workloads=workloads,
        systems=systems,
        threads=threads,
        scale=scale,
        params_by_tag={
            "typical": typical_params(),
            "small": small_cache_params(),
        },
    )
