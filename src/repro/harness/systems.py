"""Table II: the evaluated systems.

=================  ========================================================
CGL                coarse-grained locking, transaction granularity
Baseline           best-effort HTM with requester-wins
LosaTM-SAFU        LosaTM without false-sharing / capacity-overflow opts
LockillerTM-RAI    Baseline + Recovery + SelfAbort + InstsBasedPriority
LockillerTM-RRI    Baseline + Recovery + SelfRetryLater + InstsBasedPriority
LockillerTM-RWI    Baseline + Recovery + WaitWakeup + InstsBasedPriority
LockillerTM-RWL    Baseline + Recovery + WaitWakeup + HTMLock
LockillerTM-RWIL   LockillerTM-RWI + HTMLock
LockillerTM        LockillerTM-RWI + HTMLock + SwitchingMode
=================  ========================================================
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.cgl import CGL_SPEC
from repro.baselines.losatm import LOSATM_SAFU_SPEC
from repro.common.errors import ConfigError
from repro.core.policies import PriorityKind, RequesterPolicy, SystemSpec

BASELINE_SPEC = SystemSpec(name="Baseline")

RAI_SPEC = SystemSpec(
    name="LockillerTM-RAI",
    recovery=True,
    requester_policy=RequesterPolicy.SELF_ABORT,
    priority_kind=PriorityKind.INSTS,
)

RRI_SPEC = SystemSpec(
    name="LockillerTM-RRI",
    recovery=True,
    requester_policy=RequesterPolicy.RETRY_LATER,
    priority_kind=PriorityKind.INSTS,
)

RWI_SPEC = SystemSpec(
    name="LockillerTM-RWI",
    recovery=True,
    requester_policy=RequesterPolicy.WAIT_WAKEUP,
    priority_kind=PriorityKind.INSTS,
)

RWL_SPEC = SystemSpec(
    name="LockillerTM-RWL",
    recovery=True,
    requester_policy=RequesterPolicy.WAIT_WAKEUP,
    priority_kind=PriorityKind.NONE,
    htmlock=True,
)

RWIL_SPEC = SystemSpec(
    name="LockillerTM-RWIL",
    recovery=True,
    requester_policy=RequesterPolicy.WAIT_WAKEUP,
    priority_kind=PriorityKind.INSTS,
    htmlock=True,
)

LOCKILLER_SPEC = SystemSpec(
    name="LockillerTM",
    recovery=True,
    requester_policy=RequesterPolicy.WAIT_WAKEUP,
    priority_kind=PriorityKind.INSTS,
    htmlock=True,
    switching=True,
)

SYSTEMS: Dict[str, SystemSpec] = {
    s.name: s
    for s in (
        CGL_SPEC,
        BASELINE_SPEC,
        LOSATM_SAFU_SPEC,
        RAI_SPEC,
        RRI_SPEC,
        RWI_SPEC,
        RWL_SPEC,
        RWIL_SPEC,
        LOCKILLER_SPEC,
    )
}

#: Table II presentation order.
TABLE_ORDER: List[str] = [
    "CGL",
    "Baseline",
    "LosaTM-SAFU",
    "LockillerTM-RAI",
    "LockillerTM-RRI",
    "LockillerTM-RWI",
    "LockillerTM-RWL",
    "LockillerTM-RWIL",
    "LockillerTM",
]


def system_names() -> List[str]:
    return list(TABLE_ORDER)


def get_system(name: str) -> SystemSpec:
    try:
        return SYSTEMS[name]
    except KeyError:
        raise ConfigError(
            f"unknown system {name!r}; choose from {TABLE_ORDER}"
        ) from None


#: Friendly CLI shorthands (``lockiller`` as a bare prefix would be
#: ambiguous across the -R* variants, so it gets an explicit alias).
SYSTEM_ALIASES: Dict[str, str] = {
    "lockiller": "LockillerTM",
    "losatm": "LosaTM-SAFU",
    "baseline": "Baseline",
    "cgl": "CGL",
}


def resolve_system(name: str) -> SystemSpec:
    """Tolerant :func:`get_system`: exact, alias, case-insensitive
    exact, then unique case-insensitive prefix.

    The CLI's resolver — library code keeps using the strict
    :func:`get_system` so typos in programmatic sweeps still fail fast.
    """
    if name in SYSTEMS:
        return SYSTEMS[name]
    folded = name.lower()
    if folded in SYSTEM_ALIASES:
        return SYSTEMS[SYSTEM_ALIASES[folded]]
    ci = [s for s in TABLE_ORDER if s.lower() == folded]
    if len(ci) == 1:
        return SYSTEMS[ci[0]]
    prefixed = [s for s in TABLE_ORDER if s.lower().startswith(folded)]
    if len(prefixed) == 1:
        return SYSTEMS[prefixed[0]]
    if len(prefixed) > 1:
        raise ConfigError(
            f"ambiguous system {name!r}: matches {prefixed}"
        )
    raise ConfigError(
        f"unknown system {name!r}; choose from {TABLE_ORDER} "
        f"(aliases: {sorted(SYSTEM_ALIASES)})"
    )
