"""Terminal (ASCII) charts for breakdowns and speedup series.

The paper's figures are stacked-bar and line charts; these helpers
render the same data in plain text so the harness output is
human-scannable without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

#: One glyph per breakdown category, in the paper's stacking order.
CATEGORY_GLYPHS = {
    "htm": "#",
    "aborted": "x",
    "lock": "L",
    "switchLock": "S",
    "waitlock": ".",
    "rollback": "r",
    "non_tran": "-",
}


def stacked_bar(
    fractions: Mapping[str, float],
    width: int = 50,
    glyphs: Optional[Mapping[str, str]] = None,
) -> str:
    """Render one stacked bar (fractions should sum to ~1)."""
    if width <= 0:
        raise ValueError("width must be positive")
    glyphs = dict(glyphs or CATEGORY_GLYPHS)
    cells: list = []
    order = [k for k in glyphs if k in fractions] + [
        k for k in fractions if k not in glyphs
    ]
    for key in order:
        frac = max(0.0, fractions.get(key, 0.0))
        n = int(round(frac * width))
        cells.append(glyphs.get(key, "?") * n)
    bar = "".join(cells)[:width]
    return bar.ljust(width)


def breakdown_chart(
    rows: Mapping[str, Mapping[str, float]],
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Stacked bars, one per row (system or workload)."""
    label_w = max((len(r) for r in rows), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, fractions in rows.items():
        lines.append(
            f"{label.rjust(label_w)} |{stacked_bar(fractions, width)}|"
        )
    legend = "  ".join(
        f"{glyph}={name}" for name, glyph in CATEGORY_GLYPHS.items()
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)


def hbar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "x",
    baseline: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Horizontal bars scaled to the maximum value.

    ``baseline`` draws a tick (``|``) at that value — e.g. 1.0 for
    speedup charts, making the win/lose boundary visible.
    """
    if not values:
        raise ValueError("no values to chart")
    vmax = max(values.values())
    if vmax <= 0:
        raise ValueError("values must contain a positive maximum")
    label_w = max(len(k) for k in values)
    lines = []
    if title:
        lines.append(title)
    tick = (
        int(round(baseline / vmax * width))
        if baseline is not None and baseline <= vmax
        else None
    )
    for label, v in values.items():
        n = max(0, int(round(v / vmax * width)))
        bar = list("=" * n + " " * (width - n))
        if tick is not None and 0 <= tick < width:
            bar[tick] = "|" if bar[tick] == " " else "+"
        lines.append(
            f"{label.rjust(label_w)} {''.join(bar)} {v:.2f}{unit}"
        )
    return "\n".join(lines)


def series_sparkline(series: Sequence[float], width: int = 0) -> str:
    """Compact single-line trend (8-level blocks)."""
    if not series:
        raise ValueError("empty series")
    blocks = " ▁▂▃▄▅▆▇█"
    lo, hi = min(series), max(series)
    span = hi - lo
    out = []
    for v in series:
        level = 8 if span == 0 else int(round((v - lo) / span * 8))
        out.append(blocks[level])
    return "".join(out)
