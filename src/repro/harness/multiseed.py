"""Multi-seed experiment statistics.

A single deterministic run answers "what happened"; publishing-quality
numbers need "how stable is it".  This module repeats a configuration
across seeds and reports mean, standard deviation, min/max and a normal
approximation confidence half-width for any scalar metric, plus a
convenience for seed-stable speedup ratios (paired by seed, as the paper
compares systems on identical inputs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.params import SystemParams, typical_params
from repro.common.stats import RunStats
from repro.harness.parallel import CellTask, run_cells
from repro.harness.runcache import coerce_cache
from repro.harness.systems import get_system

#: z for a ~95% two-sided normal interval.
Z95 = 1.96


@dataclass(frozen=True)
class MetricSummary:
    mean: float
    stdev: float
    minimum: float
    maximum: float
    n: int

    @property
    def ci95_half_width(self) -> float:
        if self.n <= 1:
            return 0.0
        return Z95 * self.stdev / math.sqrt(self.n)

    @property
    def cov(self) -> float:
        """Coefficient of variation (relative spread)."""
        if self.mean == 0:
            return 0.0
        return self.stdev / abs(self.mean)

    def render(self, unit: str = "") -> str:
        return (
            f"{self.mean:.2f}{unit} ± {self.ci95_half_width:.2f} "
            f"(n={self.n}, min={self.minimum:.2f}, max={self.maximum:.2f})"
        )


def summarize_values(values: Sequence[float]) -> MetricSummary:
    if not values:
        raise ValueError("no values to summarize")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    return MetricSummary(mean, math.sqrt(var), min(values), max(values), n)


def _seed_tasks(
    workload: str,
    system: str,
    threads: int,
    seeds: Sequence[int],
    scale: float,
    params: SystemParams,
    base_index: int = 0,
) -> List[CellTask]:
    spec = get_system(system)
    return [
        CellTask(base_index + i, workload, spec, threads, scale, seed, params)
        for i, seed in enumerate(seeds)
    ]


def _run_tasks(tasks: List[CellTask], jobs, cache) -> List[RunStats]:
    """Cache-aware task execution preserving task-index order."""
    rc = coerce_cache(cache)
    size = max((t.index for t in tasks), default=-1) + 1
    out: List[Optional[RunStats]] = [None] * size
    missing: List[CellTask] = []
    for t in tasks:
        hit = (
            rc.get_cell(t.workload, t.spec, t.params, t.threads, t.scale, t.seed)
            if rc is not None
            else None
        )
        if hit is not None:
            out[t.index] = hit
        else:
            missing.append(t)

    def on_done(task: CellTask, stats: RunStats) -> None:
        if rc is not None:
            rc.put_cell(
                task.workload,
                task.spec,
                task.params,
                task.threads,
                task.scale,
                task.seed,
                stats,
            )

    executed = run_cells(missing, jobs=jobs, on_done=on_done)
    for t in missing:
        out[t.index] = executed[t.index]
    return out


def multi_seed_runs(
    workload: str,
    system: str,
    threads: int,
    seeds: Sequence[int],
    scale: float = 0.25,
    params: Optional[SystemParams] = None,
    jobs: Optional[int] = None,
    cache=None,
) -> List[RunStats]:
    """One run per seed, in seed order.  ``jobs`` fans the seeds out to
    worker processes and ``cache`` consults/fills the persistent run
    cache; output is identical either way (each run is deterministic in
    its seed)."""
    tasks = _seed_tasks(
        workload, system, threads, seeds, scale, params or typical_params()
    )
    return _run_tasks(tasks, jobs, cache)


def trace_seed(
    workload: str,
    system: str,
    threads: int,
    seed: int,
    scale: float = 0.25,
    params: Optional[SystemParams] = None,
    cache=None,
    telemetry=None,
) -> Dict[str, str]:
    """Re-run one seed of a multi-seed campaign with full telemetry.

    The observability companion to :func:`multi_seed_runs`: having
    spotted an outlier seed in a summary, re-run exactly that cell with
    a telemetry session attached and drop ``.metrics.json`` /
    ``.trace.json`` artifacts next to its runcache entry (creating the
    entry if the campaign didn't cache).  Returns artifact paths keyed
    ``result`` / ``metrics`` / ``trace``.
    """
    from repro.harness.runcache import cell_key, coerce_cache
    from repro.sim.runner import RunConfig, run_workload
    from repro.telemetry import Telemetry
    from repro.telemetry.sinks import artifact_path
    from repro.workloads.registry import get_workload

    rc = coerce_cache(cache if cache is not None else True)
    p = params or typical_params()
    spec = get_system(system)
    tel = telemetry if telemetry is not None else Telemetry()
    stats = run_workload(
        get_workload(workload),
        RunConfig(
            spec,
            threads=threads,
            scale=scale,
            seed=seed,
            params=p,
            telemetry=tel,
        ),
    )
    key = cell_key(workload, spec, p, threads, scale, seed)
    rc.put_cell(workload, spec, p, threads, scale, seed, stats)
    out = {"result": rc.path_for(key)}
    label = f"{workload}/{system}/t{threads}/s{seed}"
    out["metrics"] = tel.write_metrics(artifact_path(rc, key, "metrics"))
    if tel.timeline is not None:
        out["trace"] = tel.write_trace(
            artifact_path(rc, key, "trace"), run_label=label
        )
    return out


def multi_seed_runs_resilient(
    workload: str,
    system: str,
    threads: int,
    seeds: Sequence[int],
    scale: float = 0.25,
    params: Optional[SystemParams] = None,
    retry=None,
    checkpoint_path: Optional[str] = None,
    cache=None,
):
    """Crash-tolerant :func:`multi_seed_runs`: each seed runs under a
    timeout + retry policy, failures are quarantined instead of raising,
    and a checkpoint file makes the campaign resumable.  Returns
    ``(runs, quarantined)``; see
    :func:`repro.resilience.harness.resilient_seed_runs`."""
    from repro.resilience.harness import resilient_seed_runs

    return resilient_seed_runs(
        workload,
        system,
        threads,
        seeds,
        scale=scale,
        params=params,
        retry=retry,
        checkpoint_path=checkpoint_path,
        cache=cache,
    )


def metric_over_seeds(
    workload: str,
    system: str,
    threads: int,
    seeds: Sequence[int],
    metric: Callable[[RunStats], float] = lambda s: float(s.execution_cycles),
    scale: float = 0.25,
    params: Optional[SystemParams] = None,
    jobs: Optional[int] = None,
    cache=None,
) -> MetricSummary:
    runs = multi_seed_runs(
        workload, system, threads, seeds, scale, params, jobs=jobs, cache=cache
    )
    return summarize_values([metric(r) for r in runs])


def paired_speedup(
    workload: str,
    baseline: str,
    system: str,
    threads: int,
    seeds: Sequence[int],
    scale: float = 0.25,
    params: Optional[SystemParams] = None,
    jobs: Optional[int] = None,
    cache=None,
) -> MetricSummary:
    """Speedup of ``system`` over ``baseline``, paired per seed.

    Pairing removes the between-input variance: both systems see the
    exact same generated programs for each seed (as in the paper, where
    every system runs the same binaries).  Both systems' runs go into
    one task batch, so ``jobs=N`` parallelizes across the full
    ``2 x len(seeds)`` set.
    """
    p = params or typical_params()
    base_tasks = _seed_tasks(workload, baseline, threads, seeds, scale, p)
    sys_tasks = _seed_tasks(
        workload, system, threads, seeds, scale, p, base_index=len(base_tasks)
    )
    runs = _run_tasks(base_tasks + sys_tasks, jobs, cache)
    base_runs, sys_runs = runs[: len(seeds)], runs[len(seeds):]
    ratios = [
        b.execution_cycles / s.execution_cycles
        for b, s in zip(base_runs, sys_runs)
    ]
    return summarize_values(ratios)


def stability_report(
    workloads: Sequence[str],
    system: str,
    threads: int,
    seeds: Sequence[int],
    scale: float = 0.2,
    jobs: Optional[int] = None,
    cache=None,
) -> Dict[str, MetricSummary]:
    """Execution-time stability (CoV) per workload — the lens under
    which the paper excluded bayes."""
    return {
        wl: metric_over_seeds(
            wl, system, threads, seeds, scale=scale, jobs=jobs, cache=cache
        )
        for wl in workloads
    }
