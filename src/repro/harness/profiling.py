"""Profiling harness: where does the simulator's wall time go?

Two complementary views of one run:

* **cProfile** over the pure hot path (build excluded, no telemetry
  wrapping, so the numbers are the numbers the sweeps actually pay),
  reduced to a top-N table sorted by cumulative or internal time;
* **per-subsystem event attribution** pulled *after* the run through the
  same ``publish_telemetry`` hooks the telemetry session uses — event
  and message counts per subsystem (scheduler tiers, NoC, memory
  system, arbiters) with zero in-run instrumentation overhead.

This is the profiling-first loop docs/PERFORMANCE.md describes: run
``python -m repro profile <workload>`` before and after touching a hot
path, and let the attribution table say which subsystem moved.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.common.params import SystemParams, typical_params
from repro.harness.systems import resolve_system
from repro.sim.machine import Machine
from repro.telemetry.registry import MetricsRegistry
from repro.workloads.registry import get_workload

#: Registry prefixes summed into the attribution table, with the
#: counter names (per prefix) that represent "events handled".
_SUBSYSTEM_COUNTERS = {
    "sim": ("events_processed", "ring_events", "heap_events",
            "heap_compactions"),
    "noc": ("messages_sent", "flits_sent", "hops_traversed",
            "link_stalls"),
    "mem": None,  # None = every integer counter under the prefix
    "dir": None,
    "htm": None,
    "lock": None,
    "lock_tx": None,
}


@dataclass
class ProfileReport:
    """One profiled run, ready to render or post-process."""

    workload: str
    system: str
    threads: int
    scale: float
    seed: int
    wall_seconds: float
    execution_cycles: int
    events_processed: int
    #: subsystem -> {counter: value} pulled from publish_telemetry.
    subsystems: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Rendered pstats table (top-N rows).
    stats_text: str = ""

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds

    @property
    def cycles_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.execution_cycles / self.wall_seconds

    def render(self) -> str:
        head = (
            f"profile: {self.workload} on {self.system} "
            f"({self.threads} threads, scale {self.scale}, "
            f"seed {self.seed})\n"
            f"wall {self.wall_seconds * 1e3:.1f} ms | "
            f"{self.execution_cycles} simulated cycles "
            f"({self.cycles_per_second:,.0f}/s) | "
            f"{self.events_processed} events "
            f"({self.events_per_second:,.0f}/s)"
        )
        lines = [head, "", "-- per-subsystem event counts --"]
        for name in sorted(self.subsystems):
            counters = self.subsystems[name]
            total = sum(counters.values())
            lines.append(f"{name:>10s}  total {total}")
            for key in sorted(counters):
                lines.append(f"{'':>12s}{key:<24s}{counters[key]}")
        lines += ["", "-- hottest functions --", self.stats_text.rstrip()]
        return "\n".join(lines)

    def save(self, path: str) -> None:
        """Persist the report as JSON (``profile --save``).

        Everything needed by :func:`compare_reports` round-trips; the
        pstats text is kept verbatim for human inspection.
        """
        with open(path, "w") as fh:
            json.dump(asdict(self), fh, indent=2, sort_keys=True)
            fh.write("\n")


def load_report(path: str) -> ProfileReport:
    """Load a report previously written by :meth:`ProfileReport.save`."""
    with open(path) as fh:
        data = json.load(fh)
    return ProfileReport(**data)


def compare_reports(before: ProfileReport, after: ProfileReport) -> str:
    """Render an attribution diff between two profile runs.

    The before/after per-subsystem counter tables are joined on
    (subsystem, counter); rows show before, after and the delta, so a
    hot-path change reads as "dir round trips -38%, everything else
    flat".  Wall-clock and throughput move in the header.  Comparing
    runs of different cells is allowed (that is sometimes the point —
    e.g. coalesce on/off) but flagged.
    """
    lines = []
    cell_b = (before.workload, before.system, before.threads,
              before.scale, before.seed)
    cell_a = (after.workload, after.system, after.threads,
              after.scale, after.seed)
    lines.append(
        f"before: {before.workload} on {before.system} "
        f"({before.threads}t, scale {before.scale}, seed {before.seed}) "
        f"wall {before.wall_seconds * 1e3:.1f} ms"
    )
    lines.append(
        f"after:  {after.workload} on {after.system} "
        f"({after.threads}t, scale {after.scale}, seed {after.seed}) "
        f"wall {after.wall_seconds * 1e3:.1f} ms"
    )
    if cell_b != cell_a:
        lines.append("warning: comparing different cells")
    if before.wall_seconds > 0 and after.wall_seconds > 0:
        lines.append(
            f"speedup: {before.wall_seconds / after.wall_seconds:.2f}x wall"
            f" | events/s {before.events_per_second:,.0f} -> "
            f"{after.events_per_second:,.0f}"
            f" | cycles/s {before.cycles_per_second:,.0f} -> "
            f"{after.cycles_per_second:,.0f}"
        )
    lines += ["", "-- per-subsystem attribution diff --"]
    header = f"{'counter':<34s}{'before':>12s}{'after':>12s}{'delta':>12s}"
    lines.append(header)
    subsystems = sorted(set(before.subsystems) | set(after.subsystems))
    for name in subsystems:
        b_counters = before.subsystems.get(name, {})
        a_counters = after.subsystems.get(name, {})
        keys = sorted(set(b_counters) | set(a_counters))
        for key in keys:
            b = b_counters.get(key, 0)
            a = a_counters.get(key, 0)
            if b == a:
                delta = "="
            elif b == 0:
                delta = "new"
            else:
                delta = f"{100.0 * (a - b) / b:+.1f}%"
            lines.append(f"{name + '.' + key:<34s}{b:>12}{a:>12}{delta:>12s}")
    return "\n".join(lines)


def subsystem_breakdown(
    snapshot: Dict[str, object]
) -> Dict[str, Dict[str, int]]:
    """Group a registry snapshot into per-subsystem integer counters.

    Only counter-like integers are kept — gauges carrying strings,
    ratios, or per-link detail (dotted names below the second level)
    are attribution noise, not event counts.
    """
    out: Dict[str, Dict[str, int]] = {}
    for prefix, wanted in _SUBSYSTEM_COUNTERS.items():
        dotted = prefix + "."
        counters: Dict[str, int] = {}
        for name, value in snapshot.items():
            if not name.startswith(dotted):
                continue
            key = name[len(dotted):]
            # Skip per-instance detail (dir.bank.3.*, noc.link.0_1.*):
            # attribution wants subsystem totals, not fan-out.
            if any(
                part.isdigit() or part.replace("_", "").isdigit()
                for part in key.split(".")
            ):
                continue
            if wanted is not None and key not in wanted:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            if value < 0:  # id-style gauges (owner -1), not counts
                continue
            counters[key] = value
        if counters:
            out[prefix] = counters
    return out


def profile_run(
    workload: str,
    system: str = "LockillerTM",
    threads: int = 4,
    scale: float = 0.1,
    seed: int = 1,
    params: Optional[SystemParams] = None,
    top_n: int = 20,
    sort: str = "cumulative",
    coalesce: bool = True,
) -> ProfileReport:
    """Profile one (workload, system) cell and attribute its events.

    The workload is built *outside* the profiled region (builds are
    one-time costs amortized across sweep points); the Machine
    construction and run are inside it.  ``sort`` is any pstats key
    (``cumulative``, ``tottime``, ...).
    """
    spec = resolve_system(system)
    if params is None:
        params = typical_params()
    build = get_workload(workload).build(threads, scale, seed)

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    machine = Machine(
        params, spec, build.programs, seed=seed, coalesce=coalesce
    )
    cycles = machine.run()
    profiler.disable()
    wall = time.perf_counter() - t0

    registry = MetricsRegistry()
    machine.publish_telemetry(registry)

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort).print_stats(top_n)
    # Drop pstats' preamble (path spam) but keep the column table.
    text_lines = stream.getvalue().splitlines()
    start = 0
    for i, line in enumerate(text_lines):
        if line.lstrip().startswith("ncalls"):
            start = i
            break
    stats_text = "\n".join(text_lines[start:])

    return ProfileReport(
        workload=workload,
        system=spec.name,
        threads=threads,
        scale=scale,
        seed=seed,
        wall_seconds=wall,
        execution_cycles=cycles,
        events_processed=machine.engine.events_processed,
        subsystems=subsystem_breakdown(registry.snapshot()),
        stats_text=stats_text,
    )
