"""Command-line interface for the experiment harness.

Usage::

    python -m repro.harness.cli table1
    python -m repro.harness.cli table2
    python -m repro.harness.cli fig1  [--scale 0.25] [--threads 2,8,32]
        [--jobs 4] [--run-cache [DIR]]
    python -m repro.harness.cli fig7  [--systems Baseline,LockillerTM]
    python -m repro.harness.cli fig8 | fig9 | fig10 | fig11 | fig12 | fig13
    python -m repro.harness.cli sweep --workloads kmeans+ --systems \
        CGL,LockillerTM [--threads 2,4] [--seeds 1,2] [--jobs 2] \
        [--cache-dir DIR]
    python -m repro.harness.cli run --workload intruder --system LockillerTM \
        --threads 8 [--scale 0.25] [--seed 42] [--cache small|typical|large]
    python -m repro.harness.cli metrics --workload intruder \
        --system lockiller --cores 4 [--prefix core.0] [--json] [--out F]
    python -m repro.harness.cli timeline --workload intruder \
        --system lockiller --cores 4 [--out trace.json]
    python -m repro.harness.cli fuzz  [--cases 25] [--seed 0] [--paranoid]
    python -m repro.harness.cli chaos [--cases 25] [--plans jitter,lossy]
        [--systems ...] [--list-plans]

``run`` executes a single configuration and prints the full statistics
(cycles, breakdown, aborts, commit rate) — the building block the
figures aggregate.

``metrics`` and ``timeline`` re-run one cell under ``repro.telemetry``:
``metrics`` prints the hierarchical registry snapshot, ``timeline``
emits Chrome trace-event JSON on stdout (open it in Perfetto or
``chrome://tracing``).  Both accept friendly system names
(``lockiller`` → ``LockillerTM``) and ``--cores`` as an alias for
``--threads``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.params import (
    large_cache_params,
    small_cache_params,
    typical_params,
)
from repro.harness.experiments import (
    ExperimentContext,
    print_fig1,
    print_fig7,
    print_fig8,
    print_fig9,
    print_fig10,
    print_fig11,
    print_fig12,
    print_fig13,
    table1_parameters,
    table2_systems,
)
from repro.harness.reporting import format_table
from repro.harness.systems import get_system, resolve_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload

CACHE_CONFIGS = {
    "small": small_cache_params,
    "typical": typical_params,
    "large": large_cache_params,
}

FIGURES = {
    "fig1": print_fig1,
    "fig7": print_fig7,
    "fig8": print_fig8,
    "fig9": print_fig9,
    "fig10": print_fig10,
    "fig11": print_fig11,
    "fig12": print_fig12,
    "fig13": print_fig13,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="LockillerTM reproduction experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I (system parameters)")
    sub.add_parser("table2", help="print Table II (evaluated systems)")

    for name in FIGURES:
        p = sub.add_parser(name, help=f"regenerate {name} of the paper")
        p.add_argument("--scale", type=float, default=None)
        p.add_argument("--threads", type=str, default=None)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes (0=all CPUs; default $REPRO_JOBS/serial)",
        )
        p.add_argument(
            "--run-cache",
            nargs="?",
            const=True,
            default=None,
            metavar="DIR",
            help="reuse/fill the persistent run cache "
            "(optionally rooted at DIR; default $REPRO_RUN_CACHE_DIR)",
        )
        if name == "fig7":
            p.add_argument("--systems", type=str, default=None)

    run_p = sub.add_parser("run", help="run one (workload, system) pair")
    run_p.add_argument("--workload", required=True)
    run_p.add_argument("--system", required=True)
    run_p.add_argument("--threads", type=int, default=8)
    run_p.add_argument("--scale", type=float, default=0.25)
    run_p.add_argument("--seed", type=int, default=42)
    run_p.add_argument(
        "--cache", choices=sorted(CACHE_CONFIGS), default="typical"
    )

    def add_cell_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workload", required=True)
        p.add_argument("--system", required=True,
                       help="Table-II name or alias (e.g. lockiller)")
        p.add_argument("--threads", "--cores", dest="threads",
                       type=int, default=8)
        p.add_argument("--scale", type=float, default=0.25)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument(
            "--cache", choices=sorted(CACHE_CONFIGS), default="typical"
        )
        p.add_argument("--out", type=str, default=None,
                       help="also write the JSON artifact to this path")

    metrics_p = sub.add_parser(
        "metrics",
        help="run one cell under telemetry and print the metrics registry",
    )
    add_cell_args(metrics_p)
    metrics_p.add_argument(
        "--prefix", type=str, default="",
        help="only show metrics under this dotted namespace",
    )
    metrics_p.add_argument(
        "--json", action="store_true",
        help="print the full snapshot as JSON instead of a listing",
    )
    metrics_p.add_argument(
        "--limit", type=int, default=None,
        help="cap the number of rendered lines",
    )

    timeline_p = sub.add_parser(
        "timeline",
        help="run one cell under telemetry and emit Chrome trace-event "
        "JSON (stdout; open in Perfetto)",
    )
    add_cell_args(timeline_p)
    timeline_p.add_argument(
        "--summary", action="store_true",
        help="print a human-readable span digest instead of JSON",
    )

    chart_p = sub.add_parser(
        "chart", help="ASCII stacked-bar breakdown + speedup chart"
    )
    chart_p.add_argument("--workload", required=True)
    chart_p.add_argument("--threads", type=int, default=8)
    chart_p.add_argument("--scale", type=float, default=0.25)
    chart_p.add_argument("--seed", type=int, default=42)
    chart_p.add_argument(
        "--systems",
        type=str,
        default="CGL,Baseline,LosaTM-SAFU,LockillerTM-RWI,LockillerTM",
    )

    fuzz_p = sub.add_parser(
        "fuzz", help="random-program fuzzing of all systems"
    )
    fuzz_p.add_argument("--cases", type=int, default=25)
    fuzz_p.add_argument("--seed", type=int, default=0)
    fuzz_p.add_argument("--paranoid", action="store_true")

    chaos_p = sub.add_parser(
        "chaos",
        help="chaos-mode fuzzing: the functional oracle under fault plans",
    )
    chaos_p.add_argument("--cases", type=int, default=25)
    chaos_p.add_argument("--seed", type=int, default=0)
    chaos_p.add_argument(
        "--plans",
        type=str,
        default=None,
        help="comma-separated fault-plan names (default: the standard "
        "jitter+lossy+chaos-monkey campaign)",
    )
    chaos_p.add_argument(
        "--systems",
        type=str,
        default=None,
        help="comma-separated system names (default: all Table-II systems)",
    )
    chaos_p.add_argument("--paranoid", action="store_true")
    chaos_p.add_argument(
        "--list-plans",
        action="store_true",
        help="print the available fault plans and exit",
    )

    sweep_p = sub.add_parser(
        "sweep", help="run a cartesian sweep and print a cycles pivot"
    )
    sweep_p.add_argument(
        "--workloads", required=True, help="comma-separated workload names"
    )
    sweep_p.add_argument(
        "--systems", required=True, help="comma-separated Table-II systems"
    )
    sweep_p.add_argument("--threads", type=str, default="8")
    sweep_p.add_argument("--seeds", type=str, default="42")
    sweep_p.add_argument("--scale", type=float, default=0.25)
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0=all CPUs; default $REPRO_JOBS/serial)",
    )
    sweep_p.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="root of the persistent run cache (off when omitted)",
    )
    return parser


def _make_ctx(args: argparse.Namespace) -> ExperimentContext:
    kwargs = {}
    if getattr(args, "scale", None) is not None:
        kwargs["scale"] = args.scale
    if getattr(args, "threads", None):
        kwargs["threads"] = tuple(
            int(x) for x in str(args.threads).split(",") if x
        )
    kwargs["seed"] = getattr(args, "seed", 42)
    if getattr(args, "jobs", None) is not None:
        kwargs["jobs"] = args.jobs
    if getattr(args, "run_cache", None) is not None:
        kwargs["disk_cache"] = args.run_cache
    return ExperimentContext(**kwargs)


def _sweep(args: argparse.Namespace) -> str:
    from repro.harness.sweeps import Sweep

    sweep = Sweep(
        workloads=[w for w in args.workloads.split(",") if w],
        systems=[s for s in args.systems.split(",") if s],
        threads=tuple(int(x) for x in args.threads.split(",") if x),
        seeds=tuple(int(x) for x in args.seeds.split(",") if x),
        scale=args.scale,
    )
    results = sweep.run(jobs=args.jobs, cache=args.cache_dir)
    pivot = results.pivot(lambda r: float(r.cycles))
    threads = sorted({r.point.threads for r in results.records})
    rows = [
        (system, *[f"{per_th.get(th, float('nan')):.0f}" for th in threads])
        for system, per_th in pivot.items()
    ]
    return format_table(
        ["system"] + [f"t{th}" for th in threads],
        rows,
        title=(
            f"sweep: {len(results)} cell(s), mean execution cycles "
            f"(scale={args.scale})"
        ),
    )


def _run_single(args: argparse.Namespace) -> str:
    stats = run_workload(
        get_workload(args.workload),
        RunConfig(
            spec=get_system(args.system),
            threads=args.threads,
            scale=args.scale,
            seed=args.seed,
            params=CACHE_CONFIGS[args.cache](),
        ),
    )
    merged = stats.merged()
    rows = [
        ("execution cycles", stats.execution_cycles),
        ("commit rate", f"{stats.commit_rate:.3f}"),
        ("commits (htm/lock/switched)",
         f"{merged.commits_htm}/{merged.commits_lock}/{merged.commits_switched}"),
        ("aborts", merged.total_aborts),
        ("rejects received", merged.rejects_received),
        ("wakeups sent", merged.wakeups_sent),
        ("fallback entries", merged.fallback_entries),
        ("switch attempts/successes",
         f"{merged.switch_attempts}/{merged.switch_successes}"),
        ("L1 hit rate",
         f"{merged.l1_hits / max(1, merged.l1_hits + merged.l1_misses):.3f}"),
    ]
    out = [
        f"{args.workload} on {args.system} "
        f"({args.threads} threads, {args.cache} caches, scale={args.scale})",
        format_table(["metric", "value"], rows),
        "",
        format_table(
            ["time category", "fraction"],
            [
                (cat.value, f"{100 * frac:.1f}%")
                for cat, frac in stats.time_fractions().items()
            ],
        ),
        "",
        format_table(
            ["abort reason", "count"],
            [
                (r.value, n)
                for r, n in stats.abort_breakdown().items()
                if n
            ] or [("(none)", 0)],
        ),
    ]
    return "\n".join(out)


def _telemetry_cell(args: argparse.Namespace):
    """Run the cell described by ``args`` with telemetry attached."""
    from repro.telemetry import Telemetry

    tel = Telemetry()
    stats = run_workload(
        get_workload(args.workload),
        RunConfig(
            spec=resolve_system(args.system),
            threads=args.threads,
            scale=args.scale,
            seed=args.seed,
            params=CACHE_CONFIGS[args.cache](),
            telemetry=tel,
        ),
    )
    return tel, stats


def _metrics(args: argparse.Namespace) -> str:
    import json

    tel, _ = _telemetry_cell(args)
    if args.out:
        tel.write_metrics(args.out)
        print(f"metrics written to {args.out}", file=sys.stderr)
    if args.json:
        return json.dumps(tel.metrics_dict(), sort_keys=True, indent=2)
    reg = tel.registry
    header = (
        f"{args.workload} on {args.system} ({args.threads} threads, "
        f"scale={args.scale}, seed={args.seed}) — "
        f"{len(reg)} metrics, namespaces: {', '.join(reg.namespaces())}"
    )
    return header + "\n" + reg.render(args.prefix, limit=args.limit)


def _timeline(args: argparse.Namespace) -> str:
    import json

    from repro.telemetry import timeline_summary_lines

    tel, _ = _telemetry_cell(args)
    label = f"{args.workload}/{args.system}/t{args.threads}/s{args.seed}"
    doc = tel.trace_dict(run_label=label)
    if args.out:
        tel.write_trace(args.out, run_label=label)
        print(
            f"trace written to {args.out} — open it at "
            "https://ui.perfetto.dev or chrome://tracing",
            file=sys.stderr,
        )
    if args.summary:
        return "\n".join(timeline_summary_lines(tel.timeline))
    # Pure JSON on stdout: pipeable into a file or a validator.
    return json.dumps(doc, sort_keys=True)


def _chart(args: argparse.Namespace) -> str:
    from repro.harness.charts import breakdown_chart, hbar_chart

    systems = [s for s in args.systems.split(",") if s]
    breakdowns = {}
    cycles = {}
    for name in systems:
        stats = run_workload(
            get_workload(args.workload),
            RunConfig(
                spec=get_system(name),
                threads=args.threads,
                scale=args.scale,
                seed=args.seed,
            ),
        )
        breakdowns[name] = {
            c.value: f for c, f in stats.time_fractions().items()
        }
        cycles[name] = stats.execution_cycles
    base = cycles.get("CGL", max(cycles.values()))
    speedups = {name: base / c for name, c in cycles.items()}
    return (
        breakdown_chart(
            breakdowns,
            title=(
                f"{args.workload}, {args.threads} threads — "
                "execution-time breakdown"
            ),
        )
        + "\n\n"
        + hbar_chart(
            speedups, baseline=1.0, title="speedup vs CGL"
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "table1":
        print(table1_parameters())
    elif args.command == "table2":
        print(table2_systems())
    elif args.command == "run":
        print(_run_single(args))
    elif args.command == "sweep":
        print(_sweep(args))
    elif args.command == "metrics":
        print(_metrics(args))
    elif args.command == "timeline":
        print(_timeline(args))
    elif args.command == "chart":
        print(_chart(args))
    elif args.command == "fuzz":
        from repro.sim.fuzz import run_fuzz

        report = run_fuzz(
            cases=args.cases, seed=args.seed, paranoid=args.paranoid
        )
        print(report.render())
        return 0 if report.ok else 1
    elif args.command == "chaos":
        from repro.resilience.faults import get_plan, plan_names
        from repro.sim.fuzz import DEFAULT_SYSTEMS, run_chaos_fuzz

        if args.list_plans:
            for name in plan_names():
                print(f"  {name}: {get_plan(name).describe()}")
            return 0
        plans = (
            [get_plan(n) for n in args.plans.split(",") if n]
            if args.plans
            else None
        )
        systems = (
            tuple(s for s in args.systems.split(",") if s)
            if args.systems
            else DEFAULT_SYSTEMS
        )
        report = run_chaos_fuzz(
            cases=args.cases,
            seed=args.seed,
            systems=systems,
            paranoid=args.paranoid,
            plans=plans,
        )
        print(report.render())
        return 0 if report.ok else 1
    else:
        ctx = _make_ctx(args)
        printer = FIGURES[args.command]
        if args.command == "fig7" and getattr(args, "systems", None):
            print(printer(ctx, systems=args.systems.split(",")))
        else:
            print(printer(ctx))
    return 0


if __name__ == "__main__":
    sys.exit(main())
