"""Serialization of run results for regression tracking.

``RunStats`` → plain JSON-able dicts and back, plus a stable run
fingerprint.  Intended use: persist a sweep's results once, then diff
future runs against it (`compare_runs`) to catch unintended simulator
behaviour changes — the numbers are deterministic per
``(system, workload, threads, scale, seed, params)``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from repro.common.stats import AbortReason, CoreStats, RunStats, TimeCat

SCHEMA_VERSION = 1


def core_stats_to_dict(cs: CoreStats) -> Dict:
    return {
        "time": {c.value: v for c, v in cs.time.items()},
        "aborts": {r.value: v for r, v in cs.aborts.items()},
        "commits_htm": cs.commits_htm,
        "commits_lock": cs.commits_lock,
        "commits_switched": cs.commits_switched,
        "tx_attempts": cs.tx_attempts,
        "fallback_entries": cs.fallback_entries,
        "switch_attempts": cs.switch_attempts,
        "switch_successes": cs.switch_successes,
        "rejects_received": cs.rejects_received,
        "rejects_issued": cs.rejects_issued,
        "wakeups_sent": cs.wakeups_sent,
        "wakeup_timeouts": cs.wakeup_timeouts,
        "loads": cs.loads,
        "stores": cs.stores,
        "l1_hits": cs.l1_hits,
        "l1_misses": cs.l1_misses,
        "l2_hits": cs.l2_hits,
        "commit_latency_hist": cs.commit_latency_hist.as_dict(),
    }


def core_stats_from_dict(data: Mapping) -> CoreStats:
    cs = CoreStats()
    for key, value in data["time"].items():
        cs.time[TimeCat(key)] = value
    for key, value in data["aborts"].items():
        cs.aborts[AbortReason(key)] = value
    for field in (
        "commits_htm",
        "commits_lock",
        "commits_switched",
        "tx_attempts",
        "fallback_entries",
        "switch_attempts",
        "switch_successes",
        "rejects_received",
        "rejects_issued",
        "wakeups_sent",
        "wakeup_timeouts",
        "loads",
        "stores",
        "l1_hits",
        "l1_misses",
    ):
        setattr(cs, field, data[field])
    cs.l2_hits = data.get("l2_hits", 0)
    if "commit_latency_hist" in data:
        from repro.common.stats import LatencyHistogram

        cs.commit_latency_hist = LatencyHistogram.from_dict(
            data["commit_latency_hist"]
        )
    return cs


def run_stats_to_dict(
    stats: RunStats, meta: Optional[Mapping] = None
) -> Dict:
    return {
        "schema": SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "execution_cycles": stats.execution_cycles,
        "cores": [core_stats_to_dict(cs) for cs in stats.cores],
        "sanity_failures": list(stats.sanity_failures),
    }


def run_stats_from_dict(data: Mapping) -> RunStats:
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported result schema {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return RunStats(
        execution_cycles=data["execution_cycles"],
        cores=[core_stats_from_dict(c) for c in data["cores"]],
        sanity_failures=list(data.get("sanity_failures", [])),
    )


def dumps(stats: RunStats, meta: Optional[Mapping] = None) -> str:
    return json.dumps(run_stats_to_dict(stats, meta), sort_keys=True)


def loads(text: str) -> RunStats:
    return run_stats_from_dict(json.loads(text))


def fingerprint(stats: RunStats) -> str:
    """Short stable digest of the run's observable behaviour."""
    import hashlib

    payload = json.dumps(
        {
            "cycles": stats.execution_cycles,
            "time": {c.value: v for c, v in stats.time_breakdown().items()},
            "aborts": {
                r.value: v for r, v in stats.abort_breakdown().items()
            },
            "commits": stats.commits,
            "attempts": stats.tx_attempts,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def compare_runs(a: RunStats, b: RunStats) -> List[str]:
    """Human-readable list of differences (empty when identical)."""
    diffs: List[str] = []
    if a.execution_cycles != b.execution_cycles:
        diffs.append(
            f"execution_cycles: {a.execution_cycles} != {b.execution_cycles}"
        )
    for cat, va in a.time_breakdown().items():
        vb = b.time_breakdown()[cat]
        if va != vb:
            diffs.append(f"time[{cat.value}]: {va} != {vb}")
    for reason, va in a.abort_breakdown().items():
        vb = b.abort_breakdown()[reason]
        if va != vb:
            diffs.append(f"aborts[{reason.value}]: {va} != {vb}")
    if a.commits != b.commits:
        diffs.append(f"commits: {a.commits} != {b.commits}")
    if len(a.cores) != len(b.cores):
        diffs.append(f"core count: {len(a.cores)} != {len(b.cores)}")
    return diffs
