"""LockillerTM reproduction: best-effort HTM with recovery, HTMLock and
switchingMode mechanisms on a simulated 32-core tiled CMP.

Public API quick tour
=====================

>>> from repro import run_workload, RunConfig, get_system, get_workload
>>> stats = run_workload(
...     get_workload("intruder"),
...     RunConfig(spec=get_system("LockillerTM"), threads=4, scale=0.2),
... )
>>> stats.commit_rate > 0
True

See ``examples/quickstart.py`` for a guided walk-through, DESIGN.md for
the system inventory, and EXPERIMENTS.md for the paper-vs-measured data.
"""

from repro.common.params import (
    SystemParams,
    large_cache_params,
    small_cache_params,
    typical_params,
)
from repro.common.errors import LivelockError, RunTimeoutError
from repro.common.stats import AbortReason, RunStats, TimeCat
from repro.core.policies import PriorityKind, RequesterPolicy, SystemSpec
from repro.harness.systems import SYSTEMS, get_system, system_names
from repro.resilience import FaultPlan, WatchdogConfig, get_plan, plan_names
from repro.sim.machine import Machine
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import WORKLOADS, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AbortReason",
    "FaultPlan",
    "LivelockError",
    "Machine",
    "PriorityKind",
    "RequesterPolicy",
    "RunConfig",
    "RunStats",
    "RunTimeoutError",
    "SYSTEMS",
    "SystemParams",
    "SystemSpec",
    "TimeCat",
    "WORKLOADS",
    "WatchdogConfig",
    "get_plan",
    "get_system",
    "get_workload",
    "plan_names",
    "large_cache_params",
    "run_workload",
    "small_cache_params",
    "system_names",
    "typical_params",
    "workload_names",
    "__version__",
]
