"""The fallback lock (and the CGL global lock): a FIFO ticket lock model.

The lock is a single cache line; acquisitions are serialized FIFO (ticket
semantics).  Timing: an uncontended acquire costs a round trip to the
lock's home LLC bank; a contended hand-off costs a cache-to-cache
transfer from the releaser to the next waiter.  Waiting time is what the
paper's breakdown charts bill as ``waitlock``.

The same class also implements the *subscription* behaviour of Listing 1
for best-effort HTM: cores may register as *elision waiters* (threads
spinning at ``xbegin`` because the lock is held); they are all notified
on release (the lock-line invalidation wakes every subscriber).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.common.errors import SimulationError


class LockManager:
    """FIFO lock over the simulated interconnect."""

    __slots__ = (
        "name",
        "line",
        "home_tile",
        "_network",
        "_tile_of_core",
        "holder",
        "_queue",
        "_elision_waiters",
        "acquisitions",
        "contended_acquisitions",
        "_engine",
    )

    def __init__(
        self,
        name: str,
        line: int,
        home_tile: int,
        engine,
        network,
        tile_of_core: Callable[[int], int],
    ) -> None:
        self.name = name
        self.line = line
        self.home_tile = home_tile
        self._engine = engine
        self._network = network
        self._tile_of_core = tile_of_core
        self.holder: Optional[int] = None
        #: FIFO of (core, grant_callback) waiting for ownership.
        self._queue: Deque[Tuple[int, Callable[[int], None]]] = deque()
        #: Elision subscribers: (core, callback) resumed on next release.
        self._elision_waiters: List[Tuple[int, Callable[[int], None]]] = []
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def reset(self) -> None:
        """Free the lock, drop all waiters, zero counters (pool reuse)."""
        self.holder = None
        self._queue.clear()
        self._elision_waiters.clear()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def held(self) -> bool:
        return self.holder is not None

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def acquire(self, core: int, now: int, on_granted: Callable[[int], None]) -> None:
        """Request ownership; ``on_granted(grant_time)`` fires when owned."""
        if self.holder == core:
            raise SimulationError(f"core {core} re-acquiring {self.name}")
        if any(c == core for c, _ in self._queue):
            raise SimulationError(f"core {core} already queued on {self.name}")
        if self.holder is None and not self._queue:
            # Uncontended: round trip to the lock's home bank.
            latency = self._network.round_trip(
                self._tile_of_core(core), self.home_tile
            )
            self.holder = core
            self.acquisitions += 1
            self._engine.schedule_after(latency, on_granted)
        else:
            self.contended_acquisitions += 1
            self._queue.append((core, on_granted))

    def release(self, core: int, now: int) -> None:
        """Release; hands off FIFO and wakes elision subscribers."""
        if self.holder != core:
            raise SimulationError(
                f"core {core} releasing {self.name} held by {self.holder}"
            )
        self.holder = None
        if self._queue:
            nxt, cb = self._queue.popleft()
            # Hand-off: dirty lock line moves releaser -> next owner.
            latency = self._network.data_latency(
                self._tile_of_core(core), self._tile_of_core(nxt)
            )
            self.holder = nxt
            self.acquisitions += 1
            self._engine.schedule_after(max(1, latency), cb)
        if self._elision_waiters and self.holder is None:
            waiters, self._elision_waiters = self._elision_waiters, []
            for wcore, wcb in waiters:
                latency = self._network.control_latency(
                    self._tile_of_core(core), self._tile_of_core(wcore)
                )
                self._engine.schedule_after(max(1, latency), wcb)

    def publish_telemetry(self, registry, prefix: str = "lock_tx") -> None:
        """Publish lock counters under ``lock_tx.<name>.*``."""
        scope = registry.scope(f"{prefix}.{self.name}")
        scope.set("acquisitions", self.acquisitions)
        scope.set("contended_acquisitions", self.contended_acquisitions)
        scope.set("queue_depth", self.queue_depth)
        scope.set("elision_waiters", len(self._elision_waiters))
        scope.set("held", self.held)
        scope.set("holder", self.holder if self.holder is not None else -1)

    def wait_free(self, core: int, on_free: Callable[[int], None]) -> None:
        """Subscribe until the lock is released (Listing 1 spin at xbegin).

        If currently free, resumes next cycle.
        """
        if not self.held:
            self._engine.schedule_after(1, on_free)
        else:
            self._elision_waiters.append((core, on_free))

    def cancel_wait(self, core: int) -> None:
        """Drop any elision subscription for ``core`` (abort cleanup)."""
        waiters = self._elision_waiters
        if any(c == core for c, _cb in waiters):
            self._elision_waiters = [
                (c, cb) for c, cb in waiters if c != core
            ]
