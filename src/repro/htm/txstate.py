"""Per-core transactional state: mode flags, read/write sets, write buffer.

Modes mirror the paper's flags:

* ``HTM`` — speculative transaction (plain best-effort HTM).
* ``TL`` — *Transactional Lock*: the fallback path running under the
  HTMLock mechanism (entered via ``hlbegin`` after taking the fallback
  lock); irrevocable, tracks read/write sets for conflict detection.
* ``STL`` — *Switched Transactional Lock*: an HTM transaction that
  proactively switched into HTMLock mode under the switchingMode
  mechanism; irrevocable, did **not** take the fallback lock.
* ``FALLBACK`` — the classic best-effort fallback path (lock held, no
  set tracking; everything it touches is a plain access).

Functional versioning is publish-on-commit: speculative stores
accumulate *deltas* in :attr:`TxState.write_buffer` and are applied to
the committed memory image at commit time, so requester-wins aborts can
discard them without undo.  Lock-mode (TL/STL/FALLBACK) stores are
applied immediately — those transactions cannot abort.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Dict, Set


class TxMode(Enum):
    NONE = auto()
    HTM = auto()
    TL = auto()
    STL = auto()
    FALLBACK = auto()

    @property
    def is_speculative(self) -> bool:
        return self is TxMode.HTM

    @property
    def is_lock_mode(self) -> bool:
        """True for the irrevocable HTMLock modes (TL/STL)."""
        return self in (TxMode.TL, TxMode.STL)

    @property
    def in_transaction(self) -> bool:
        return self is not TxMode.NONE


#: Priority value that outranks every speculative transaction — the paper
#: assigns the HTMLock-mode transaction "the highest global priority".
LOCK_PRIORITY = 1 << 60


class TxState:
    """Transactional bookkeeping for one core."""

    __slots__ = (
        "core",
        "mode",
        "read_set",
        "write_set",
        "write_buffer",
        "attempt_seq",
        "insts_in_attempt",
        "attempt_start",
        "aborted",
        "abort_reason",
        "switch_attempted",
        "switched",
        "last_write_count",
        "pending_anchor",
        "pending_steps",
    )

    def __init__(self, core: int) -> None:
        self.core = core
        self.mode = TxMode.NONE
        self.read_set: Set[int] = set()
        self.write_set: Set[int] = set()
        self.write_buffer: Dict[int, int] = {}
        #: Monotonic id of the current attempt; in-flight responses from a
        #: dead attempt are ignored by comparing against this.
        self.attempt_seq = 0
        self.insts_in_attempt = 0
        self.attempt_start = 0
        self.aborted = False
        self.abort_reason = None
        self.switch_attempted = False
        self.switched = False
        #: Write-set size captured at abort time (rollback cost model).
        self.last_write_count = 0
        #: Lazily-billed compute burst in flight (coalesced stepping):
        #: the burst's elided computes retire at ``pending_anchor +
        #: offset + n`` for each ``(offset, n)`` step but are only folded
        #: into :attr:`insts_in_attempt` when the burst event fires.
        #: ``None`` anchor means no burst in flight (uncoalesced mode
        #: never sets one, keeping :meth:`insts_at` a plain field read).
        self.pending_anchor = None
        self.pending_steps = ()

    # -- lifecycle -----------------------------------------------------

    def begin(self, mode: TxMode, now: int) -> None:
        if self.mode is not TxMode.NONE:
            raise RuntimeError(
                f"core {self.core}: nested transaction begin in {self.mode}"
            )
        self.mode = mode
        self.read_set.clear()
        self.write_set.clear()
        self.write_buffer.clear()
        self.attempt_seq += 1
        self.insts_in_attempt = 0
        self.attempt_start = now
        self.aborted = False
        self.abort_reason = None
        self.switch_attempted = False
        self.switched = False
        self.pending_anchor = None
        self.pending_steps = ()

    def switch_to_stl(self) -> None:
        """SwitchingMode success: HTM -> STL keeping all current state."""
        if self.mode is not TxMode.HTM:
            raise RuntimeError("only an HTM transaction can switch to STL")
        self.mode = TxMode.STL
        self.switched = True

    def clear(self) -> None:
        """Leave transactional mode (after commit or abort handling)."""
        self.mode = TxMode.NONE
        self.read_set.clear()
        self.write_set.clear()
        self.write_buffer.clear()
        self.aborted = False
        self.abort_reason = None
        self.pending_anchor = None
        self.pending_steps = ()

    def insts_at(self, now: int) -> int:
        """Instructions retired by cycle ``now`` in the current attempt.

        With a coalesced compute burst in flight this adds the elided
        computes that would already have been billed by ``now`` under
        uncoalesced stepping: per-op execution bills a compute's ``n``
        instructions when the op's event *fires* (at ``anchor + off``),
        before sleeping ``n`` cycles — so the insts-based conflict
        priority sees exactly the values it would have seen per-op.
        """
        anchor = self.pending_anchor
        total = self.insts_in_attempt
        if anchor is None:
            return total
        for off, n in self.pending_steps:
            if anchor + off <= now:
                total += n
        return total

    def mark_aborted(self, reason) -> None:
        self.aborted = True
        if self.abort_reason is None:
            self.abort_reason = reason

    # -- set tracking ----------------------------------------------------

    def track_read(self, line: int) -> None:
        self.read_set.add(line)

    def track_write(self, line: int) -> None:
        self.write_set.add(line)

    def buffer_store(self, addr: int, delta: int) -> None:
        self.write_buffer[addr] = self.write_buffer.get(addr, 0) + delta

    @property
    def footprint_lines(self) -> int:
        return len(self.read_set | self.write_set)

    @property
    def priority_base(self) -> int:
        """Lock-mode transactions outrank all speculative ones."""
        return LOCK_PRIORITY if self.mode.is_lock_mode else 0
