"""Fluent builder for micro-op programs.

The tuple-based ISA is fast to interpret but noisy to write by hand;
``ProgramBuilder`` gives custom workloads a readable surface mirroring
the paper's programming interface (Listing 1/2's critical sections
become ``with builder.txn():`` blocks)::

    b = ProgramBuilder()
    b.compute(120)                      # non-transactional work
    with b.txn(tag="transfer"):
        b.rmw(src_addr, -10)
        b.rmw(dst_addr, +10)
    b.compute(40)
    program = b.build()

Nested ``txn()`` blocks are *flattened*, matching ARM TME / Intel RTM
semantics (the outermost transaction wins; inner begins only bump the
nesting depth that ``ttest`` reports).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.common.errors import ConfigError
from repro.htm.isa import (
    Op,
    Plain,
    Segment,
    Txn,
    compute,
    fault,
    load,
    store,
    segment_bursts,
)


class ProgramBuilder:
    """Accumulates segments for one thread's program."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._plain_ops: List[Op] = []
        self._txn_ops: Optional[List[Op]] = None
        self._txn_tag = ""
        self._nesting = 0

    # -- op emission -----------------------------------------------------

    def _emit(self, op: Op) -> "ProgramBuilder":
        if self._txn_ops is not None:
            self._txn_ops.append(op)
        else:
            self._plain_ops.append(op)
        return self

    def compute(self, cycles: int) -> "ProgramBuilder":
        """``cycles`` of local ALU work."""
        return self._emit(compute(cycles))

    def load(self, addr: int) -> "ProgramBuilder":
        """Read the word at ``addr``."""
        return self._emit(load(addr))

    def store(self, addr: int, delta: int = 0) -> "ProgramBuilder":
        """Add ``delta`` to the word at ``addr``."""
        return self._emit(store(addr, delta))

    def rmw(self, addr: int, delta: int) -> "ProgramBuilder":
        """Adjacent load+store of one word (atomic counter update)."""
        self._emit(load(addr))
        return self._emit(store(addr, delta))

    def fault(self, persistent: bool = False) -> "ProgramBuilder":
        """An exception point; only meaningful inside a transaction."""
        if self._txn_ops is None:
            raise ConfigError(
                "fault outside a transaction would just trap; put it in "
                "a txn() block (plain traps are modeled as compute)"
            )
        return self._emit(fault(persistent))

    # -- structure ---------------------------------------------------------

    def _flush_plain(self) -> None:
        if self._plain_ops:
            self._segments.append(Plain(self._plain_ops))
            self._plain_ops = []

    @contextmanager
    def txn(self, tag: str = "") -> Iterator["ProgramBuilder"]:
        """A critical section; nesting flattens into the outer txn."""
        if self._txn_ops is not None:
            # Flat nesting: inner begin/end are subsumed (TME-style).
            self._nesting += 1
            try:
                yield self
            finally:
                self._nesting -= 1
            return
        self._flush_plain()
        self._txn_ops = []
        self._txn_tag = tag
        try:
            yield self
        finally:
            ops = self._txn_ops
            self._txn_ops = None
            if not ops:
                raise ConfigError(f"empty transaction {tag!r}")
            self._segments.append(Txn(ops, tag=self._txn_tag))
            self._txn_tag = ""

    @property
    def nesting_depth(self) -> int:
        """Current flat-nesting depth (0 outside any transaction)."""
        if self._txn_ops is None:
            return 0
        return 1 + self._nesting

    def build(self) -> List[Segment]:
        """Finalize; the builder can be reused afterwards."""
        if self._txn_ops is not None:
            raise ConfigError("build() inside an open txn() block")
        self._flush_plain()
        out = self._segments
        self._segments = []
        for seg in out:
            # Warm the per-segment burst cache at build time so the
            # first transactional attempt pays no coalescing cost.
            segment_bursts(seg)
        return out


def build_programs(n_threads: int, fn) -> List[List[Segment]]:
    """Build one program per thread: ``fn(builder, thread_id)``."""
    programs = []
    for t in range(n_threads):
        b = ProgramBuilder()
        fn(b, t)
        programs.append(b.build())
    return programs
