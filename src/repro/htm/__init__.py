"""Best-effort HTM substrate: ISA, transaction state, fallback lock."""

from repro.htm.isa import (
    OP_COMPUTE,
    OP_FAULT,
    OP_LOAD,
    OP_STORE,
    Op,
    Plain,
    Segment,
    Txn,
    compute,
    fault,
    load,
    store,
)
from repro.htm.txstate import TxMode, TxState
from repro.htm.fallback import LockManager

__all__ = [
    "OP_COMPUTE",
    "OP_LOAD",
    "OP_STORE",
    "OP_FAULT",
    "Op",
    "Segment",
    "Plain",
    "Txn",
    "compute",
    "load",
    "store",
    "fault",
    "TxMode",
    "TxState",
    "LockManager",
]
