"""Micro-op ISA and program representation for the simulated cores.

A thread program is a list of :class:`Segment`; each segment is either
:class:`Plain` (non-transactional work) or :class:`Txn` (a critical
section).  How a ``Txn`` executes depends on the machine: coarse-grained
lock (CGL), best-effort HTM with the Listing-1 elision loop, or the
LockillerTM variants (Listing 2).

Micro-ops are plain tuples ``(opcode, a, b)`` of ints, interpreted by
:mod:`repro.sim.cpu`.  Keeping them as tuples (not objects) keeps the
interpreter loop allocation-free, per the HPC guidance.

Opcodes
=======

``OP_COMPUTE n``
    ``n`` cycles of single-issue ALU work (CPI = 1, so also ``n``
    committed instructions for the insts-based priority).
``OP_LOAD addr``
    Read one word; tracked in the transaction read set when speculative.
``OP_STORE addr delta``
    Read-modify-write adding ``delta`` to the word at ``addr``.  Additive
    semantics make the final memory state order-independent, so the
    workloads can assert exact functional invariants regardless of the
    commit interleaving.
``OP_FAULT persistent``
    Raise an exception at this point.  Aborts a speculative transaction
    (reason ``fault``); survivable in any lock mode.  ``persistent=0``
    models a page fault that is resolved once taken (retries do not fault
    again); ``persistent=1`` re-faults on every speculative attempt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

OP_COMPUTE = 0
OP_LOAD = 1
OP_STORE = 2
OP_FAULT = 3

#: One micro-op: (opcode, a, b).
Op = Tuple[int, int, int]

OP_NAMES = {
    OP_COMPUTE: "COMPUTE",
    OP_LOAD: "LOAD",
    OP_STORE: "STORE",
    OP_FAULT: "FAULT",
}


def compute(cycles: int) -> Op:
    """``cycles`` cycles of local computation."""
    if cycles <= 0:
        raise ValueError("compute must take at least 1 cycle")
    return (OP_COMPUTE, cycles, 0)


def load(addr: int) -> Op:
    """Read the word at byte address ``addr``."""
    if addr < 0:
        raise ValueError("negative address")
    return (OP_LOAD, addr, 0)


def store(addr: int, delta: int = 0) -> Op:
    """Add ``delta`` to the word at ``addr`` (read-modify-write)."""
    if addr < 0:
        raise ValueError("negative address")
    return (OP_STORE, addr, delta)


def fault(persistent: bool = False) -> Op:
    """Exception point (page fault by default: resolved after one trip)."""
    return (OP_FAULT, 1 if persistent else 0, 0)


@dataclass
class Segment:
    """Base class for program segments."""

    ops: List[Op]

    def __post_init__(self) -> None:
        for op in self.ops:
            if not (isinstance(op, tuple) and len(op) == 3):
                raise ValueError(f"malformed op {op!r}")
            if op[0] not in OP_NAMES:
                raise ValueError(f"unknown opcode {op[0]}")

    @property
    def num_ops(self) -> int:
        return len(self.ops)


@dataclass
class Plain(Segment):
    """Non-transactional work; time billed to the ``non_tran`` category."""


@dataclass
class Txn(Segment):
    """A critical section (transaction).

    ``tag`` is free-form workload metadata (useful in traces/tests).
    """

    tag: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if any(op[0] == OP_FAULT for op in self.ops) and not self.ops:
            raise ValueError("fault in empty txn")

    def read_lines(self) -> set:
        """Distinct cache lines read (including RMW stores)."""
        return {op[1] >> 6 for op in self.ops if op[0] in (OP_LOAD, OP_STORE)}

    def write_lines(self) -> set:
        return {op[1] >> 6 for op in self.ops if op[0] == OP_STORE}


Program = List[Segment]


def program_stats(program: Sequence[Segment]) -> dict:
    """Quick structural summary used by workload tests."""
    txns = [s for s in program if isinstance(s, Txn)]
    loads = sum(
        1 for s in program for op in s.ops if op[0] == OP_LOAD
    )
    stores = sum(
        1 for s in program for op in s.ops if op[0] == OP_STORE
    )
    faults = sum(
        1 for s in program for op in s.ops if op[0] == OP_FAULT
    )
    return {
        "segments": len(program),
        "txns": len(txns),
        "loads": loads,
        "stores": stores,
        "faults": faults,
        "mean_tx_ops": (
            sum(len(t.ops) for t in txns) / len(txns) if txns else 0.0
        ),
    }
