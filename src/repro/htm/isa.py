"""Micro-op ISA and program representation for the simulated cores.

A thread program is a list of :class:`Segment`; each segment is either
:class:`Plain` (non-transactional work) or :class:`Txn` (a critical
section).  How a ``Txn`` executes depends on the machine: coarse-grained
lock (CGL), best-effort HTM with the Listing-1 elision loop, or the
LockillerTM variants (Listing 2).

Micro-ops are plain tuples ``(opcode, a, b)`` of ints, interpreted by
:mod:`repro.sim.cpu`.  Keeping them as tuples (not objects) keeps the
interpreter loop allocation-free, per the HPC guidance.

Opcodes
=======

``OP_COMPUTE n``
    ``n`` cycles of single-issue ALU work (CPI = 1, so also ``n``
    committed instructions for the insts-based priority).
``OP_LOAD addr``
    Read one word; tracked in the transaction read set when speculative.
``OP_STORE addr delta``
    Read-modify-write adding ``delta`` to the word at ``addr``.  Additive
    semantics make the final memory state order-independent, so the
    workloads can assert exact functional invariants regardless of the
    commit interleaving.
``OP_FAULT persistent``
    Raise an exception at this point.  Aborts a speculative transaction
    (reason ``fault``); survivable in any lock mode.  ``persistent=0``
    models a page fault that is resolved once taken (retries do not fault
    again); ``persistent=1`` re-faults on every speculative attempt.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import List, Sequence, Tuple

OP_COMPUTE = 0
OP_LOAD = 1
OP_STORE = 2
OP_FAULT = 3

#: One micro-op: (opcode, a, b).
Op = Tuple[int, int, int]

OP_NAMES = {
    OP_COMPUTE: "COMPUTE",
    OP_LOAD: "LOAD",
    OP_STORE: "STORE",
    OP_FAULT: "FAULT",
}


def compute(cycles: int) -> Op:
    """``cycles`` cycles of local computation."""
    if cycles <= 0:
        raise ValueError("compute must take at least 1 cycle")
    return (OP_COMPUTE, cycles, 0)


def load(addr: int) -> Op:
    """Read the word at byte address ``addr``."""
    if addr < 0:
        raise ValueError("negative address")
    return (OP_LOAD, addr, 0)


def store(addr: int, delta: int = 0) -> Op:
    """Add ``delta`` to the word at ``addr`` (read-modify-write)."""
    if addr < 0:
        raise ValueError("negative address")
    return (OP_STORE, addr, delta)


def fault(persistent: bool = False) -> Op:
    """Exception point (page fault by default: resolved after one trip)."""
    return (OP_FAULT, 1 if persistent else 0, 0)


_OP0 = itemgetter(0)


@dataclass
class Segment:
    """Base class for program segments."""

    ops: List[Op]

    def __post_init__(self) -> None:
        # Structural validation at C speed: three map/set sweeps instead
        # of a per-op Python loop (workload builds create tens of
        # thousands of ops per program).  Only a failed sweep pays for
        # the precise per-op error below.
        ops = self.ops
        if not ops:
            return
        try:
            if (
                set(map(type, ops)) == {tuple}
                and set(map(len, ops)) == {3}
                and set(map(_OP0, ops)).issubset(OP_NAMES)
            ):
                return
        except Exception:
            pass
        for op in ops:
            if not (isinstance(op, tuple) and len(op) == 3):
                raise ValueError(f"malformed op {op!r}")
            if op[0] not in OP_NAMES:
                raise ValueError(f"unknown opcode {op[0]}")

    @property
    def num_ops(self) -> int:
        return len(self.ops)


@dataclass
class Plain(Segment):
    """Non-transactional work; time billed to the ``non_tran`` category."""


@dataclass
class Txn(Segment):
    """A critical section (transaction).

    ``tag`` is free-form workload metadata (useful in traces/tests).
    """

    tag: str = ""


    def read_lines(self) -> set:
        """Distinct cache lines read (including RMW stores)."""
        return {op[1] >> 6 for op in self.ops if op[0] in (OP_LOAD, OP_STORE)}

    def write_lines(self) -> set:
        return {op[1] >> 6 for op in self.ops if op[0] == OP_STORE}


Program = List[Segment]

#: One coalesced burst: ``(compute_cycles, steps, terminal_op, last_step)``.
#:
#: * ``compute_cycles`` — total OP_COMPUTE cycles elided into the burst;
#: * ``steps`` — tuple of ``(offset, n)`` pairs, one per elided compute
#:   op: the op starts ``offset`` cycles after the burst's anchor and
#:   retires ``n`` instructions ``n`` cycles later (prefix sums, so
#:   ``offset + n`` is the next op's offset);
#: * ``terminal_op`` — the memop/fault ending the burst, or ``None`` for
#:   a trailing compute-only burst at the end of a segment;
#: * ``last_step`` — cycle count of the final elided compute (0 when
#:   ``steps`` is empty): the interval between the last elided
#:   continuation's allocation and the burst event's fire time, i.e. the
#:   ``fire - vdelay`` gap the CPU passes to the engine so same-cycle
#:   ordering matches the uncoalesced event chain bit-for-bit.
Burst = Tuple[int, Tuple[Tuple[int, int], ...], "Op | None", int]


def coalesce_ops(ops: Sequence[Op]) -> Tuple[Burst, ...]:
    """Flatten an op stream into compute bursts.

    Each burst is a (possibly empty) run of OP_COMPUTE ops followed by
    at most one terminal memop/fault.  The CPU model schedules one
    continuation per burst instead of one per op; ``steps`` preserves
    every elided boundary so instruction retirement (priority input) and
    abort/replay points are bit-identical to uncoalesced stepping.
    """
    bursts: List[Burst] = []
    c = 0
    steps: List[Tuple[int, int]] = []
    for op in ops:
        if op[0] == OP_COMPUTE:
            steps.append((c, op[1]))
            c += op[1]
        else:
            bursts.append((c, tuple(steps), op, steps[-1][1] if steps else 0))
            c = 0
            steps = []
    if steps:
        bursts.append((c, tuple(steps), None, steps[-1][1]))
    return tuple(bursts)


def segment_bursts(segment: Segment) -> Tuple[Burst, ...]:
    """Cached :func:`coalesce_ops` over a segment's ops.

    The cache lives on the segment instance (programs are built once and
    replayed across attempts/sweep points), keyed implicitly by identity
    — segments are not mutated after build.
    """
    cached = getattr(segment, "_bursts", None)
    if cached is None:
        cached = coalesce_ops(segment.ops)
        segment._bursts = cached
    return cached


def program_stats(program: Sequence[Segment]) -> dict:
    """Quick structural summary used by workload tests."""
    txns = [s for s in program if isinstance(s, Txn)]
    loads = sum(
        1 for s in program for op in s.ops if op[0] == OP_LOAD
    )
    stores = sum(
        1 for s in program for op in s.ops if op[0] == OP_STORE
    )
    faults = sum(
        1 for s in program for op in s.ops if op[0] == OP_FAULT
    )
    return {
        "segments": len(program),
        "txns": len(txns),
        "loads": loads,
        "stores": stores,
        "faults": faults,
        "mean_tx_ops": (
            sum(len(t.ops) for t in txns) / len(txns) if txns else 0.0
        ),
    }
