#!/usr/bin/env python
"""Trace a contended run and inspect the conflict dynamics.

Attaches the execution tracer to a small high-contention run on
LockillerTM, then shows: the tail of the event trace (begins, commits,
rejects, wake-ups), per-event counts, the hottest contended lines, and
the commit-latency percentiles — the debugging loop you would actually
use when a workload misbehaves on this simulator.

Run:  python examples/trace_inspection.py
"""

from repro.common.params import typical_params
from repro.harness.systems import get_system
from repro.sim.machine import Machine
from repro.sim.trace import TraceEvent, Tracer
from repro.workloads.registry import get_workload


def main() -> None:
    build = get_workload("intruder").build(threads=6, scale=0.15, seed=42)
    machine = Machine(
        typical_params(), get_system("LockillerTM"), build.programs, seed=42
    )
    tracer = Tracer(capacity=200_000)
    tracer.attach(machine)
    cycles = machine.run()

    failures = build.verify(machine.memsys.memory)
    assert not failures, failures

    print(f"run finished in {cycles} cycles; {len(tracer)} trace records\n")

    counts = tracer.counts()
    print("event counts:")
    for event in TraceEvent:
        if counts.get(event):
            print(f"  {event.value:15s} {counts[event]}")

    print("\nhottest contended lines (by reject events):")
    for line, hits in tracer.contention_profile().hottest(5):
        print(f"  line {line:#x}: {hits} rejected requests")

    merged = machine.core_stats[0]
    hist = machine.core_stats[0].commit_latency_hist
    for cs in machine.core_stats[1:]:
        hist.merge(cs.commit_latency_hist)
    print(
        f"\ncommit latency: mean={hist.mean:.0f} cycles, "
        f"p50<={hist.quantile_upper_bound(0.5)}, "
        f"p95<={hist.quantile_upper_bound(0.95)}, "
        f"p99<={hist.quantile_upper_bound(0.99)}"
    )

    print("\nlast 12 trace records:")
    print(tracer.render_tail(12))


if __name__ == "__main__":
    main()
