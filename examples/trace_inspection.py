#!/usr/bin/env python
"""Observe a contended run: metrics, transaction timeline, Perfetto trace.

Runs a small high-contention workload on LockillerTM with a
``repro.telemetry.Telemetry`` session attached, then shows the
debugging loop you would actually use when a workload misbehaves:

* the per-transaction timeline (spans with abort reasons and NACK
  annotations), written to ``trace_inspection.trace.json`` — open it at
  https://ui.perfetto.dev (or ``chrome://tracing``) to see one track
  per core plus live-set / signature-fill counter tracks;
* the hierarchical metrics registry (``core.N.*``, ``htm.nack.*``,
  ``noc.*``, ``lock_tx.*``);
* the classic event tracer, which now rides the same telemetry event
  bus — note ``attach`` is idempotent and ``detach`` restores the
  machine's callbacks.

Run:  python examples/trace_inspection.py
"""

from repro.common.params import typical_params
from repro.harness.systems import get_system
from repro.sim.machine import Machine
from repro.sim.trace import TraceEvent, Tracer
from repro.telemetry import Telemetry
from repro.workloads.registry import get_workload

TRACE_PATH = "trace_inspection.trace.json"


def main() -> None:
    telemetry = Telemetry()
    tracer = Tracer(capacity=200_000)

    build = get_workload("intruder").build(threads=6, scale=0.15, seed=42)
    machine = Machine(
        typical_params(), get_system("LockillerTM"), build.programs, seed=42
    )
    # Both consumers share one set of callback wraps on the machine's
    # telemetry hub; attaching either twice is a harmless no-op.
    telemetry.attach(machine)
    tracer.attach(machine)
    tracer.attach(machine)  # idempotent: no double-wrapping, no error
    cycles = machine.run()
    failures = build.verify(machine.memsys.memory)
    assert not failures, failures
    telemetry.finalize(None, build)

    print(f"run finished in {cycles} cycles; {len(tracer)} trace records\n")

    # -- the transaction timeline ------------------------------------
    timeline = telemetry.timeline
    summary = timeline.summary()
    print(
        f"timeline: {summary['spans']} spans, outcomes {summary['by_outcome']},"
        f" {summary['nacks']} NACKs inside transactions"
    )
    longest = max(timeline.spans, key=lambda s: s.duration)
    print(
        f"longest span: core{longest.core} tx#{longest.index} "
        f"[{longest.start}, {longest.end}] {longest.label()} "
        f"(nacks={longest.nacks}, wakeups={longest.wakeups})"
    )
    telemetry.write_trace(TRACE_PATH, run_label="intruder/LockillerTM")
    print(
        f"\nPerfetto trace written to {TRACE_PATH} — open it at "
        "https://ui.perfetto.dev\n"
    )

    # -- the metrics registry ----------------------------------------
    reg = telemetry.registry
    print(f"metrics registry: {len(reg)} metrics")
    for name in (
        "htm.nack.received.total",
        "htm.wakeup.registered",
        "lock_tx.arbiter.stl_grants",
        "noc.messages_sent",
    ):
        print(f"  {name:32s} {reg.value(name)}")

    print("\nhottest contended lines (by reject events):")
    for line, hits in tracer.contention_profile().hottest(5):
        print(f"  line {line:#x}: {hits} rejected requests")

    counts = tracer.counts()
    print("\nevent counts:")
    for event in TraceEvent:
        if counts.get(event):
            print(f"  {event.value:15s} {counts[event]}")

    print("\nlast 8 trace records:")
    print(tracer.render_tail(8))

    # Restore the machine's callbacks (reverse order, exact originals).
    tracer.detach()
    telemetry.detach()


if __name__ == "__main__":
    main()
