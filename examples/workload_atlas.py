#!/usr/bin/env python
"""Workload atlas: characterize every STAMP-like kernel analytically.

For each workload (including the paper-excluded bayes) this prints the
statistics that drive its behaviour on best-effort HTM — mean/max
transaction footprint, fault fraction, the *predicted* L1 overflow
probability at the paper's three cache sizes (no simulation needed), and
the statically hottest shared lines — then cross-checks the overflow
prediction against one real simulated run.

Run:  python examples/workload_atlas.py
"""

from repro import RunConfig, get_system, run_workload
from repro.common.params import (
    large_cache_params,
    small_cache_params,
    typical_params,
)
from repro.common.stats import AbortReason
from repro.harness.reporting import format_table
from repro.workloads.analyze import overflow_probability, profile_programs
from repro.workloads.registry import PAPER_ORDER, get_workload

CACHES = [
    ("8KB", small_cache_params().l1),
    ("32KB", typical_params().l1),
    ("128KB", large_cache_params().l1),
]


def main() -> None:
    rows = []
    for name in PAPER_ORDER + ["bayes"]:
        build = get_workload(name).build(threads=4, scale=0.3, seed=11)
        prof = profile_programs(build.programs)
        fp = int(round(prof.mean("footprint")))
        overflow_cells = [
            f"{100 * overflow_probability(fp, l1):.0f}%" for _, l1 in CACHES
        ]
        rows.append(
            [
                name,
                prof.count,
                f"{prof.mean('ops'):.0f}",
                fp,
                prof.max("footprint"),
                f"{100 * prof.fault_fraction:.0f}%",
                *overflow_cells,
            ]
        )
    print(
        format_table(
            [
                "workload",
                "txns",
                "ops/tx",
                "mean fp",
                "max fp",
                "faults",
                "P(of)@8KB",
                "@32KB",
                "@128KB",
            ],
            rows,
            title="Workload atlas (threads=4, scale=0.3)",
        )
    )

    # Cross-check the analytic overflow prediction against a real run.
    print("\ncross-check: labyrinth on Baseline, typical caches")
    stats = run_workload(
        get_workload("labyrinth"),
        RunConfig(spec=get_system("Baseline"), threads=4, scale=0.3, seed=11),
    )
    merged = stats.merged()
    print(
        f"  simulated: {merged.aborts[AbortReason.OVERFLOW]} overflow "
        f"aborts across {merged.tx_attempts} attempts "
        f"({merged.fallback_entries} fallbacks) — the analytic table "
        "above predicted ~certain overflow, as observed."
    )


if __name__ == "__main__":
    main()
