#!/usr/bin/env python
"""Define your own transactional workload against the public API.

This example builds a bank-transfer kernel from scratch — N accounts,
each transaction moves money between two random accounts and bumps a
global transfer counter — registers nothing, and runs it directly
through :func:`repro.run_workload` on three systems.  The conserved-sum
invariant (total balance never changes; the counter equals the number of
transfers) is checked explicitly at the end, on top of the runner's
built-in verification.

Run:  python examples/custom_workload.py
"""

from typing import List

import numpy as np

from repro import RunConfig, get_system, run_workload
from repro.htm.isa import Plain, Segment, compute
from repro.workloads.base import (
    Workload,
    interleave_warmup,
    shared_line_addr,
)
from repro.workloads.mixes import make_txn

N_ACCOUNTS = 64
#: The transfer counter is sharded (like any scalable concurrent
#: counter) so it does not become an artificial global serialization
#: point; the invariant sums the shards.
N_COUNTER_SHARDS = 16
COUNTER_BASE = N_ACCOUNTS  # lines past the accounts
TRANSFER = 10


class BankWorkload(Workload):
    """Random pairwise transfers over a small shared account table."""

    name = "bank"
    base_txs = 120
    summary = "pairwise transfers; conserved total balance"

    def _generate(
        self, threads: int, scale: float, rng: np.random.Generator
    ) -> List[List[Segment]]:
        n_txs = self.txs_per_thread(scale)
        programs: List[List[Segment]] = []
        for t in range(threads):
            prog: List[Segment] = [interleave_warmup(t, rng)]
            for i in range(n_txs):
                prog.append(Plain([compute(int(rng.integers(20, 60)))]))
                src, dst = rng.choice(N_ACCOUNTS, size=2, replace=False)
                shard = COUNTER_BASE + (t % N_COUNTER_SHARDS)
                prog.append(
                    make_txn(
                        rng,
                        reads=[],
                        writes=[],
                        rmw_pairs=[
                            (shared_line_addr(int(src)), -TRANSFER),
                            (shared_line_addr(int(dst)), +TRANSFER),
                            (shared_line_addr(shard), 1),
                        ],
                        pre_compute=6,
                        per_op_compute=2,
                        tag=f"transfer-{t}-{i}",
                    )
                )
            programs.append(prog)
        return programs


def main() -> None:
    workload = BankWorkload()
    threads, scale, seed = 8, 0.5, 99
    n_transfers = threads * workload.txs_per_thread(scale)
    print(f"{n_transfers} transfers across {N_ACCOUNTS} accounts, "
          f"{threads} threads\n")

    for system in ("CGL", "Baseline", "LockillerTM"):
        stats = run_workload(
            workload,
            RunConfig(
                spec=get_system(system), threads=threads, scale=scale, seed=seed
            ),
        )
        print(
            f"{system:12s} cycles={stats.execution_cycles:9d} "
            f"commit_rate={stats.commit_rate:.2f} aborts={stats.total_aborts}"
        )

    # Explicit invariant check on the last run's committed image: the
    # runner already verified the exact memory image; re-derive the
    # domain-level facts for illustration.
    build = workload.build(threads, scale, seed)
    balances = [
        build.expected.get(shared_line_addr(i), 0) for i in range(N_ACCOUNTS)
    ]
    counter = sum(
        build.expected.get(shared_line_addr(COUNTER_BASE + s), 0)
        for s in range(N_COUNTER_SHARDS)
    )
    assert sum(balances) == 0, "money was created or destroyed!"
    assert counter == n_transfers
    print(
        f"\ninvariants hold: total balance delta = {sum(balances)}, "
        f"counter = {counter} transfers"
    )


if __name__ == "__main__":
    main()
