#!/usr/bin/env python
"""Contention showdown: how each Table-II system copes with friendly fire.

Runs the ``intruder`` workload (hot shared queue + dictionary — the
paper's canonical friendly-fire victim) across every evaluated system at
several thread counts and prints speedups over coarse-grained locking,
commit rates, and how conflicts were resolved (aborts vs NACK rejects vs
wake-ups).  Watch three things as you read down the table:

* Baseline's commit rate collapsing as threads grow (friendly fire);
* the recovery systems (RAI/RRI/RWI) trading aborts for rejects;
* HTMLock (RWL/RWIL/LockillerTM) erasing the ``mutex`` kills entirely.

Run:  python examples/contention_showdown.py
"""

from repro import RunConfig, get_system, get_workload, run_workload
from repro.common.stats import AbortReason
from repro.harness.reporting import format_table
from repro.harness.systems import TABLE_ORDER

WORKLOAD = "intruder"
THREADS = (2, 8, 16)
SCALE = 0.25
SEED = 7


def main() -> None:
    workload = get_workload(WORKLOAD)
    print(f"workload: {workload.name} — {workload.summary}\n")
    for threads in THREADS:
        cgl = run_workload(
            workload,
            RunConfig(spec=get_system("CGL"), threads=threads, scale=SCALE, seed=SEED),
        )
        rows = []
        for name in TABLE_ORDER:
            stats = run_workload(
                workload,
                RunConfig(
                    spec=get_system(name),
                    threads=threads,
                    scale=SCALE,
                    seed=SEED,
                ),
            )
            merged = stats.merged()
            rows.append(
                [
                    name,
                    f"{cgl.execution_cycles / stats.execution_cycles:.2f}x",
                    f"{stats.commit_rate:.2f}",
                    merged.total_aborts,
                    merged.aborts[AbortReason.MUTEX],
                    merged.rejects_received,
                    merged.wakeups_sent,
                ]
            )
        print(
            format_table(
                [
                    "system",
                    "speedup",
                    "commit",
                    "aborts",
                    "mutex kills",
                    "rejects",
                    "wakeups",
                ],
                rows,
                title=f"--- {threads} threads ---",
            )
        )
        print()


if __name__ == "__main__":
    main()
