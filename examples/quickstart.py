#!/usr/bin/env python
"""Quickstart: run one STAMP-like workload on two HTM systems.

Builds the ``vacation+`` workload (high-contention travel reservations),
runs it on the requester-wins best-effort HTM baseline and on the full
LockillerTM stack (recovery + HTMLock + switchingMode), and prints the
execution-time breakdown and transaction statistics the paper's figures
are built from.

Run:  python examples/quickstart.py
"""

from repro import RunConfig, get_system, get_workload, run_workload
from repro.common.stats import TimeCat
from repro.harness.reporting import format_table

THREADS = 8
SCALE = 0.3
SEED = 2024


def describe(name: str, stats) -> list:
    bd = stats.time_fractions()
    return [
        name,
        stats.execution_cycles,
        f"{stats.commit_rate:.2f}",
        stats.total_aborts,
        f"{100 * bd[TimeCat.WAITLOCK]:.1f}%",
        f"{100 * bd[TimeCat.ABORTED]:.1f}%",
    ]


def main() -> None:
    workload = get_workload("vacation+")
    print(f"workload: {workload.name} — {workload.summary}")
    print(f"threads={THREADS} scale={SCALE} seed={SEED}\n")

    rows = []
    results = {}
    for system in ("CGL", "Baseline", "LockillerTM"):
        stats = run_workload(
            workload,
            RunConfig(
                spec=get_system(system),
                threads=THREADS,
                scale=SCALE,
                seed=SEED,
            ),
        )
        results[system] = stats
        rows.append(describe(system, stats))

    print(
        format_table(
            ["system", "cycles", "commit rate", "aborts", "waitlock", "aborted work"],
            rows,
        )
    )

    cgl = results["CGL"].execution_cycles
    print()
    for system in ("Baseline", "LockillerTM"):
        speedup = cgl / results[system].execution_cycles
        print(f"{system:12s} speedup vs CGL: {speedup:.2f}x")
    ratio = (
        results["Baseline"].execution_cycles
        / results["LockillerTM"].execution_cycles
    )
    print(f"\nLockillerTM is {ratio:.2f}x faster than best-effort HTM here.")
    print(
        "Every run is functionally verified: the committed memory image "
        "matched the workload's interleaving-independent expectation."
    )


if __name__ == "__main__":
    main()
