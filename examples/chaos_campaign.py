#!/usr/bin/env python
"""Chaos campaign tour: fault plans, the watchdog, resilient sweeps.

Walks the three layers of ``repro.resilience``:

1. arm a composable :class:`FaultPlan` on a single run and show that the
   functional result survives (and that the same seed reproduces the
   exact same injected faults);
2. provoke a genuine livelock with an adversarial reject storm and catch
   the watchdog's structured :class:`LivelockError` — then rerun with
   the bounded-retry escape hatch and watch the machine degrade
   gracefully to the lock path instead;
3. run a small crash-tolerant sweep with a quarantined cell and a
   resumable checkpoint.

Run:  python examples/chaos_campaign.py
"""

import tempfile

from repro import (
    LivelockError,
    Machine,
    RunConfig,
    WatchdogConfig,
    get_plan,
    get_system,
    get_workload,
    run_workload,
)
from repro.common.errors import ConfigError
from repro.harness.sweeps import Sweep
from repro.htm.isa import Txn, compute, store
from repro.resilience import FaultPlan
from repro.resilience.harness import RetryPolicy
from repro.sim.fuzz import fuzz_params

SEED = 2024


def layer1_fault_injection() -> None:
    print("=== 1. deterministic fault injection ===")
    plan = get_plan("jitter") | get_plan("lossy")
    print(f"plan: {plan.describe()}")
    for attempt in ("first", "second"):
        stats = run_workload(
            get_workload("intruder"),
            RunConfig(
                spec=get_system("LockillerTM"),
                threads=4,
                scale=0.1,
                seed=SEED,
                fault_plan=plan,
                watchdog=WatchdogConfig(),
            ),
        )
        print(
            f"{attempt} run: {stats.execution_cycles} cycles, "
            f"commit rate {stats.commit_rate:.2f}"
        )
    print("same seed, same plan -> identical cycles (bit-reproducible)\n")


def layer2_watchdog() -> None:
    print("=== 2. forward-progress watchdog ===")
    progs = [
        [Txn([store(0, 1), compute(50)])],
        [Txn([store(0, 1), compute(50)])],
    ]
    storm = FaultPlan(name="storm", reject_storm_prob=1.0)
    machine = Machine(
        fuzz_params(4),
        get_system("LockillerTM-RRI"),  # RetryLater: retries forever
        progs,
        seed=3,
        fault_plan=storm,
        watchdog=WatchdogConfig(horizon=200_000),
    )
    try:
        machine.run()
    except LivelockError as err:
        print("caught the livelock:")
        print(err)
    escaped = FaultPlan(
        name="storm-esc", reject_storm_prob=1.0, escape_rejects=3
    )
    machine = Machine(
        fuzz_params(4),
        get_system("LockillerTM-RRI"),
        progs,
        seed=3,
        fault_plan=escaped,
        watchdog=WatchdogConfig(horizon=200_000),
    )
    cycles = machine.run()
    print(
        f"\nwith escape_rejects=3: completes in {cycles} cycles "
        f"({machine.injector.escapes_taken} escapes to the lock path)\n"
    )


def layer3_resilient_sweep() -> None:
    print("=== 3. crash-tolerant sweep ===")

    def resolver(name):
        if name == "Broken":
            raise ConfigError("deliberately broken system")
        return get_system(name)

    sweep = Sweep(
        workloads=("ssca2",),
        systems=("CGL", "Broken", "LockillerTM"),
        threads=(2,),
        seeds=(1,),
        scale=0.05,
        spec_resolver=resolver,
    )
    with tempfile.NamedTemporaryFile(suffix=".json") as ckpt:
        report = sweep.run_resilient(
            checkpoint_path=ckpt.name, retry=RetryPolicy(max_attempts=2)
        )
        print(report.render())
        resumed = sweep.run_resilient(
            checkpoint_path=ckpt.name, retry=RetryPolicy(max_attempts=2)
        )
        print(
            f"second pass: {resumed.resumed} cell(s) served from the "
            f"checkpoint, {resumed.executed - len(resumed.quarantined)} "
            "re-run"
        )


if __name__ == "__main__":
    layer1_fault_injection()
    layer2_watchdog()
    layer3_resilient_sweep()
