#!/usr/bin/env python
"""Submit a campaign to the sweep service and watch it run.

Hosts the service in-process (``ServiceThread`` — the same server
``python -m repro serve`` runs), submits a small
CGL-vs-LockillerTM sweep, streams the live event feed, prints the
per-cell fingerprints, and then demonstrates the two headline
properties:

* resubmitting the campaign schedules **zero** cells (everything is
  served from the shared content-addressed store), and
* the service's results are **bit-identical** to a serial
  ``Sweep.run`` of the same campaign.

Run:  python examples/service_campaign.py
"""

import tempfile

from repro.harness.export import fingerprint
from repro.service import CampaignSpec, ServiceClient
from repro.service.server import ServiceConfig, ServiceThread

CAMPAIGN = {
    "kind": "sweep",
    "workloads": ["kmeans+", "ssca2"],
    "systems": ["CGL", "LockillerTM"],
    "threads": [2],
    "seeds": [1],
    "scale": 0.1,
}


def main() -> None:
    with tempfile.TemporaryDirectory() as state_dir:
        config = ServiceConfig(state_dir=state_dir, jobs=2)
        with ServiceThread(config) as handle:
            client = ServiceClient(handle.host, handle.port)
            print(f"service up on {handle.host}:{handle.port}")

            job = client.submit(CAMPAIGN, tenant="example")
            print(f"submitted {job['job_id']} "
                  f"({job['progress']['cells_total']} cells)\n")

            for event in client.stream(job["job_id"]):
                kind = event["event"]
                if kind == "cell_done":
                    print(f"  cell {event['index']:2d} done "
                          f"[{event['source']:8s}] {event['label']}")
                elif kind.startswith("job_"):
                    print(f"  {kind}")

            cells = client.results(job["job_id"], lite=True)["cells"]
            print("\nper-cell fingerprints:")
            for cell in cells:
                print(f"  {cell['index']:2d} {cell['label']:40s} "
                      f"{cell['fingerprint']}")

            # Same campaign again: 100% dedup, nothing executes.
            job2 = client.submit(CAMPAIGN, tenant="someone-else")
            final = client.wait(job2["job_id"])
            progress = final["progress"]
            print(f"\nresubmit: scheduled={progress['cells_scheduled']}"
                  f" from_cache={progress['cells_from_cache']}")

            # And the numbers are exactly what a serial sweep produces.
            serial = CampaignSpec.from_dict(CAMPAIGN).to_sweep().run()
            serial_fps = [fingerprint(r.stats) for r in serial.records]
            service_fps = [c["fingerprint"] for c in cells]
            print(f"bit-identical to serial Sweep.run: "
                  f"{service_fps == serial_fps}")


if __name__ == "__main__":
    main()
