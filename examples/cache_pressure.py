#!/usr/bin/env python
"""Cache pressure: overflow aborts and the switchingMode rescue.

Runs the ``labyrinth`` workload (≈300-line transaction footprints) under
three L1/LLC configurations — the paper's small (8 KB / 1 MB), typical
(32 KB / 8 MB) and large (128 KB / 32 MB) — on three systems:

* ``LockillerTM-RWI``  — recovery only: every overflow aborts to the
  exclusive fallback lock;
* ``LockillerTM-RWIL`` — + HTMLock: the fallback runs concurrently, but
  the overflowing transaction still loses its work;
* ``LockillerTM``      — + switchingMode: the transaction switches to STL
  mode at the overflow point and keeps everything it has done.

Run:  python examples/cache_pressure.py
"""

from repro import (
    RunConfig,
    get_system,
    get_workload,
    large_cache_params,
    run_workload,
    small_cache_params,
    typical_params,
)
from repro.common.stats import AbortReason, TimeCat
from repro.harness.reporting import format_table

WORKLOAD = "labyrinth"
THREADS = 4
SCALE = 0.3
SEED = 13

CONFIGS = [
    ("small  (8KB/1MB)", small_cache_params()),
    ("typical(32KB/8MB)", typical_params()),
    ("large (128KB/32MB)", large_cache_params()),
]
SYSTEMS = ("LockillerTM-RWI", "LockillerTM-RWIL", "LockillerTM")


def main() -> None:
    workload = get_workload(WORKLOAD)
    print(f"workload: {workload.name} — {workload.summary}\n")
    for label, params in CONFIGS:
        rows = []
        for name in SYSTEMS:
            stats = run_workload(
                workload,
                RunConfig(
                    spec=get_system(name),
                    threads=THREADS,
                    scale=SCALE,
                    seed=SEED,
                    params=params,
                ),
            )
            merged = stats.merged()
            frac = stats.time_fractions()
            rows.append(
                [
                    name,
                    stats.execution_cycles,
                    merged.aborts[AbortReason.OVERFLOW],
                    merged.switch_attempts,
                    merged.switch_successes,
                    merged.commits_switched,
                    f"{100 * frac[TimeCat.SWITCH_LOCK]:.1f}%",
                    f"{stats.commit_rate:.2f}",
                ]
            )
        print(
            format_table(
                [
                    "system",
                    "cycles",
                    "of-aborts",
                    "switch try",
                    "switch ok",
                    "switched commits",
                    "switchLock time",
                    "commit rate",
                ],
                rows,
                title=f"--- {label} ---",
            )
        )
        print()
    print(
        "switchingMode turns capacity aborts into switched commits; the "
        "effect is strongest where overflows dominate (small caches)."
    )


if __name__ == "__main__":
    main()
