"""Setuptools shim so legacy editable installs work offline
(the sandbox has no `wheel` package, which PEP-517 editable mode needs)."""

from setuptools import setup

setup()
