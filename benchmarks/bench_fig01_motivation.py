"""Fig. 1 — motivation: requester-wins best-effort HTM vs CGL, 2 threads.

Paper shape: best-effort HTM loses to coarse-grained locking on the
overflow/exception-prone workloads (labyrinth, yada) while winning the
low-contention ones.
"""

from conftest import once

from repro.harness.experiments import fig1_motivation, print_fig1


def test_fig1_motivation(benchmark, ctx, publish):
    data = once(benchmark, lambda: fig1_motivation(ctx))
    publish("fig01_motivation", print_fig1(ctx))
    # Shape assertions: the motivation's losers and winners.
    assert data["yada"] < 1.0
    assert data["labyrinth"] < 1.1
    assert data["ssca2"] > 1.2
    assert data["vacation-"] > 1.2
