"""Perf-smoke gate: compare a pytest-benchmark run against BENCH_PR7.json.

Two modes, one file format:

* ``snapshot`` — reduce a ``--benchmark-json`` output to the
  machine-readable per-case summary (mean/stddev/median/min in ms plus
  ``extra_info`` such as ``events_processed``) that lives at the repo
  root as ``BENCH_PR7.json``.  Pass ``--before`` to fold a previous
  snapshot's ``after_ms`` numbers in as ``before_ms`` so the artifact
  carries its own before/after story.
* ``check`` — compare a fresh ``--benchmark-json`` run against the
  committed baseline and exit non-zero only on *gross* regression
  (default: median > 25% slower).  Shared-runner timing is noisy;
  anything subtler than that belongs in a local A/B with
  ``python -m repro profile``, not a CI gate.

Usage::

    python benchmarks/check_perf_regression.py snapshot run.json \
        --out BENCH_PR7.json [--before OLD.json] [--label "PR 7"]
    python benchmarks/check_perf_regression.py check run.json \
        --baseline BENCH_PR7.json [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional

SCHEMA = "bench-snapshot/1"

#: The statistic the CI gate compares.  Median, not mean: a single
#: scheduler hiccup on a shared runner poisons the mean of a 20-round
#: case but barely moves the median.
GATE_STAT = "median"


def _stats_ms(bench: dict) -> Dict[str, float]:
    s = bench["stats"]
    return {
        "mean": round(s["mean"] * 1e3, 4),
        "stddev": round(s["stddev"] * 1e3, 4),
        "median": round(s["median"] * 1e3, 4),
        "min": round(s["min"] * 1e3, 4),
        "rounds": s["rounds"],
    }


def load_cases(bench_json_path: str) -> Dict[str, dict]:
    with open(bench_json_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    cases: Dict[str, dict] = {}
    for bench in doc.get("benchmarks", []):
        cases[bench["name"]] = {
            "after_ms": _stats_ms(bench),
            "extra_info": bench.get("extra_info", {}),
        }
    return cases


def snapshot(
    bench_json: str,
    out: str,
    before: Optional[str],
    label: str,
    before_label: str,
) -> int:
    cases = load_cases(bench_json)
    if before:
        with open(before, encoding="utf-8") as fh:
            prev = json.load(fh)
        prev_cases = prev.get("cases", prev)
        for name, case in cases.items():
            old = prev_cases.get(name)
            if not old:
                continue
            old_stats = old.get("after_ms") or old.get("stats_ms")
            if not old_stats:
                continue
            case["before_ms"] = old_stats
            if old_stats.get("mean"):
                case["speedup_mean"] = round(
                    old_stats["mean"] / case["after_ms"]["mean"], 3
                )
            if old_stats.get("median"):
                case["speedup_median"] = round(
                    old_stats["median"] / case["after_ms"]["median"], 3
                )
    doc = {
        "schema": SCHEMA,
        "label": label,
        "before_label": before_label if before else None,
        "gate_stat": GATE_STAT,
        "cases": cases,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out} ({len(cases)} cases)")
    return 0


def check(bench_json: str, baseline: str, tolerance: float) -> int:
    with open(baseline, encoding="utf-8") as fh:
        base = json.load(fh)
    base_cases = base.get("cases", {})
    fresh = load_cases(bench_json)
    failures = []
    for name, case in sorted(fresh.items()):
        ref = base_cases.get(name)
        if ref is None:
            print(f"  new case (no baseline): {name}")
            continue
        ref_ms = ref["after_ms"][GATE_STAT]
        got_ms = case["after_ms"][GATE_STAT]
        ratio = got_ms / ref_ms if ref_ms else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failures.append(name)
        print(
            f"  {name}: {GATE_STAT} {got_ms:.3f} ms vs baseline "
            f"{ref_ms:.3f} ms ({ratio:.2f}x) {verdict}"
        )
    if failures:
        print(
            f"FAIL: {len(failures)} case(s) regressed more than "
            f"{tolerance:.0%} on {GATE_STAT}: {', '.join(failures)}"
        )
        return 1
    print(f"perf smoke ok (tolerance {tolerance:.0%} on {GATE_STAT})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="cmd", required=True)

    snap = sub.add_parser("snapshot", help="reduce a bench run to a summary")
    snap.add_argument("bench_json")
    snap.add_argument("--out", required=True)
    snap.add_argument("--before", default=None,
                      help="previous snapshot to fold in as before_ms")
    snap.add_argument("--label", default="current")
    snap.add_argument("--before-label", default="previous")

    chk = sub.add_parser("check", help="gate a bench run against a baseline")
    chk.add_argument("bench_json")
    chk.add_argument("--baseline", required=True)
    chk.add_argument("--tolerance", type=float, default=0.25)

    args = parser.parse_args(argv)
    if args.cmd == "snapshot":
        return snapshot(args.bench_json, args.out, args.before,
                        args.label, args.before_label)
    return check(args.bench_json, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
