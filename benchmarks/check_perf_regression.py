"""Perf-smoke gate: compare a pytest-benchmark run against BENCH_PR7.json.

Two modes, one file format:

* ``snapshot`` — reduce a ``--benchmark-json`` output to the
  machine-readable per-case summary (mean/stddev/median/min in ms plus
  ``extra_info`` such as ``events_processed``) that lives at the repo
  root as ``BENCH_PR7.json``.  Pass ``--before`` to fold a previous
  snapshot's ``after_ms`` numbers in as ``before_ms`` so the artifact
  carries its own before/after story.
* ``check`` — compare a fresh ``--benchmark-json`` run against the
  committed baseline and exit non-zero only on *gross* regression
  (default: median > 25% slower).  Shared-runner timing is noisy;
  anything subtler than that belongs in a local A/B with
  ``python -m repro profile``, not a CI gate.

A third mode reads the whole committed history:

* ``history`` — walk every ``BENCH_PR*.json`` at the repo root in PR
  order and emit a per-case median trajectory with the cumulative
  speedup each case has accumulated since it was first measured.  CI
  appends the markdown rendering to ``$GITHUB_STEP_SUMMARY`` so each
  run's job summary carries the full perf story, not just the latest
  gate verdict.

Usage::

    python benchmarks/check_perf_regression.py snapshot run.json \
        --out BENCH_PR8.json [--before OLD.json] [--label "PR 8"]
    python benchmarks/check_perf_regression.py check run.json \
        --baseline BENCH_PR8.json [--tolerance 0.25]
    python benchmarks/check_perf_regression.py history [--markdown]
"""

from __future__ import annotations

import argparse
import glob as _glob
import json
import os
import re
import sys
from typing import Dict, List, Optional

SCHEMA = "bench-snapshot/1"

#: The statistic the CI gate compares.  Median, not mean: a single
#: scheduler hiccup on a shared runner poisons the mean of a 20-round
#: case but barely moves the median.
GATE_STAT = "median"


def _stats_ms(bench: dict) -> Dict[str, float]:
    s = bench["stats"]
    return {
        "mean": round(s["mean"] * 1e3, 4),
        "stddev": round(s["stddev"] * 1e3, 4),
        "median": round(s["median"] * 1e3, 4),
        "min": round(s["min"] * 1e3, 4),
        "rounds": s["rounds"],
    }


def load_cases(bench_json_path: str) -> Dict[str, dict]:
    with open(bench_json_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    cases: Dict[str, dict] = {}
    for bench in doc.get("benchmarks", []):
        cases[bench["name"]] = {
            "after_ms": _stats_ms(bench),
            "extra_info": bench.get("extra_info", {}),
        }
    return cases


def snapshot(
    bench_json: str,
    out: str,
    before: Optional[str],
    label: str,
    before_label: str,
) -> int:
    cases = load_cases(bench_json)
    if before:
        with open(before, encoding="utf-8") as fh:
            prev = json.load(fh)
        prev_cases = prev.get("cases", prev)
        for name, case in cases.items():
            old = prev_cases.get(name)
            if not old:
                continue
            old_stats = old.get("after_ms") or old.get("stats_ms")
            if not old_stats:
                continue
            case["before_ms"] = old_stats
            if old_stats.get("mean"):
                case["speedup_mean"] = round(
                    old_stats["mean"] / case["after_ms"]["mean"], 3
                )
            if old_stats.get("median"):
                case["speedup_median"] = round(
                    old_stats["median"] / case["after_ms"]["median"], 3
                )
    doc = {
        "schema": SCHEMA,
        "label": label,
        "before_label": before_label if before else None,
        "gate_stat": GATE_STAT,
        "cases": cases,
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out} ({len(cases)} cases)")
    return 0


def check(bench_json: str, baseline: str, tolerance: float) -> int:
    with open(baseline, encoding="utf-8") as fh:
        base = json.load(fh)
    base_cases = base.get("cases", {})
    fresh = load_cases(bench_json)
    failures = []
    for name, case in sorted(fresh.items()):
        ref = base_cases.get(name)
        if ref is None:
            print(f"  new case (no baseline): {name}")
            continue
        ref_ms = ref["after_ms"][GATE_STAT]
        got_ms = case["after_ms"][GATE_STAT]
        ratio = got_ms / ref_ms if ref_ms else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "REGRESSION"
            failures.append(name)
        print(
            f"  {name}: {GATE_STAT} {got_ms:.3f} ms vs baseline "
            f"{ref_ms:.3f} ms ({ratio:.2f}x) {verdict}"
        )
    if failures:
        print(
            f"FAIL: {len(failures)} case(s) regressed more than "
            f"{tolerance:.0%} on {GATE_STAT}: {', '.join(failures)}"
        )
        return 1
    print(f"perf smoke ok (tolerance {tolerance:.0%} on {GATE_STAT})")
    return 0


def _snapshot_order(path: str) -> int:
    """PR number from a ``BENCH_PR<N>.json`` filename (walk order)."""
    m = re.search(r"PR(\d+)", os.path.basename(path))
    return int(m.group(1)) if m else 0


def history(snapshots: List[str], markdown: bool) -> int:
    """Cumulative-speedup trajectory across the committed snapshots.

    One row per benchmark case; one column per snapshot (its
    ``after_ms`` gate statistic); a final column with the cumulative
    speedup relative to the case's *earliest known* number — the
    ``before_ms`` folded into its first snapshot when present, else its
    first ``after_ms``.  Cases missing from a snapshot (added later /
    retired) render as ``-``.
    """
    if not snapshots:
        print("no BENCH_*.json snapshots found", file=sys.stderr)
        return 1
    snapshots = sorted(snapshots, key=_snapshot_order)
    docs = []
    for path in snapshots:
        with open(path, encoding="utf-8") as fh:
            docs.append((os.path.basename(path), json.load(fh)))

    names = sorted({n for _p, d in docs for n in d.get("cases", {})})
    cols = [re.sub(r"^BENCH_|\.json$", "", p) for p, _d in docs]
    rows = []
    for name in names:
        first: Optional[float] = None
        last: Optional[float] = None
        cells = []
        for path, doc in docs:
            case = doc.get("cases", {}).get(name)
            if not isinstance(case, dict):
                cells.append(None)
                continue
            before = case.get("before_ms")
            if first is None and isinstance(before, dict):
                first = before.get(GATE_STAT)
            # Hand-edited or renamed-case snapshots may lack the gate
            # statistic entirely: warn and render "-" instead of dying.
            after = case.get("after_ms")
            val = after.get(GATE_STAT) if isinstance(after, dict) \
                else None
            if val is None:
                print(
                    f"warning: {path}: case {name!r} has no "
                    f"after_ms[{GATE_STAT!r}]; skipping that cell",
                    file=sys.stderr,
                )
                cells.append(None)
                continue
            if first is None:
                first = val
            last = val
            cells.append(val)
        cum = first / last if first and last else None
        rows.append((name, cells, cum))

    if markdown:
        lines = [
            "### Perf trajectory (median ms per case, cumulative speedup)",
            "",
            "| case | " + " | ".join(cols) + " | cumulative |",
            "|" + "---|" * (len(cols) + 2),
        ]
        for name, cells, cum in rows:
            rendered = [
                f"{c:.2f}" if c is not None else "-" for c in cells
            ]
            cum_s = f"**{cum:.2f}x**" if cum else "-"
            lines.append(
                f"| `{name}` | " + " | ".join(rendered) + f" | {cum_s} |"
            )
        out = "\n".join(lines)
        print(out)
        step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if step_summary:
            with open(step_summary, "a", encoding="utf-8") as fh:
                fh.write(out + "\n")
    else:
        width = max(len(n) for n in names) + 2
        head = "".join(f"{c:>14s}" for c in cols)
        print(f"{'case':<{width}s}{head}{'cumulative':>14s}")
        for name, cells, cum in rows:
            rendered = "".join(
                f"{c:>14.3f}" if c is not None else f"{'-':>14s}"
                for c in cells
            )
            cum_s = f"{cum:.2f}x" if cum else "-"
            print(f"{name:<{width}s}{rendered}{cum_s:>14s}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="cmd", required=True)

    snap = sub.add_parser("snapshot", help="reduce a bench run to a summary")
    snap.add_argument("bench_json")
    snap.add_argument("--out", required=True)
    snap.add_argument("--before", default=None,
                      help="previous snapshot to fold in as before_ms")
    snap.add_argument("--label", default="current")
    snap.add_argument("--before-label", default="previous")

    chk = sub.add_parser("check", help="gate a bench run against a baseline")
    chk.add_argument("bench_json")
    chk.add_argument("--baseline", required=True)
    chk.add_argument("--tolerance", type=float, default=0.25)

    hist = sub.add_parser(
        "history", help="cumulative-speedup trajectory across snapshots"
    )
    hist.add_argument(
        "snapshots",
        nargs="*",
        help="snapshot files (default: BENCH_*.json beside the repo root)",
    )
    hist.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown table (appended to $GITHUB_STEP_SUMMARY too)",
    )

    args = parser.parse_args(argv)
    if args.cmd == "snapshot":
        return snapshot(args.bench_json, args.out, args.before,
                        args.label, args.before_label)
    if args.cmd == "history":
        snapshots = args.snapshots or _glob.glob(
            os.path.join(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                "BENCH_*.json",
            )
        )
        return history(snapshots, args.markdown)
    return check(args.bench_json, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
