"""Ablation — Listing 1's TME_MAX_RETRIES budget.

Best-effort HTM's fallback threshold trades speculative retries against
lock serialization.  A tiny budget sends contended transactions to the
(baseline, exclusive) fallback immediately — the degradation spiral the
paper describes in §III-B; a large one burns cycles on doomed retries.
The recovery mechanism flattens this curve because rejected requests
do not consume retries at all.
"""

from dataclasses import replace

from conftest import once

from repro.common.params import typical_params
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload

RETRY_BUDGETS = (1, 4, 16)


def test_ablation_retry_budget(benchmark, ctx, publish):
    def run_with(system, retries):
        base = typical_params()
        params = replace(base, htm=replace(base.htm, max_retries=retries))
        return run_workload(
            get_workload("intruder"),
            RunConfig(
                spec=get_system(system),
                threads=8,
                scale=ctx.scale,
                seed=ctx.seed,
                params=params,
            ),
        )

    def experiment():
        out = {}
        for system in ("Baseline", "LockillerTM-RWI"):
            out[system] = {
                r: {
                    "cycles": (s := run_with(system, r)).execution_cycles,
                    "fallbacks": s.merged().fallback_entries,
                }
                for r in RETRY_BUDGETS
            }
        return out

    data = once(benchmark, experiment)
    lines = ["Ablation: max_retries on intruder, 8 threads"]
    for system, rows in data.items():
        for r, row in rows.items():
            lines.append(
                f"  {system:18s} retries={r:2d} cycles={row['cycles']:9d} "
                f"fallbacks={row['fallbacks']}"
            )
    publish("ablation_retries", "\n".join(lines))

    # Fewer retries -> more fallbacks, in both systems.
    for system in data:
        assert data[system][1]["fallbacks"] >= data[system][16]["fallbacks"]
    # In the sane region (>= 4 retries), recovery is nearly insensitive
    # to the budget — rejections do not consume retries — while
    # requester-wins keeps improving with a bigger budget.
    def spread_4_16(system):
        a = data[system][4]["cycles"]
        b = data[system][16]["cycles"]
        return max(a, b) / min(a, b)

    assert spread_4_16("LockillerTM-RWI") <= spread_4_16("Baseline")
    # And recovery at any sane budget beats Baseline at its best.
    best_baseline = min(data["Baseline"][r]["cycles"] for r in (4, 16))
    assert data["LockillerTM-RWI"][4]["cycles"] < best_baseline
