"""Shared fixtures for the per-figure benchmark harness.

Every bench regenerates one of the paper's tables/figures: it runs the
figure's workload/system/thread grid once (pytest-benchmark pedantic
mode — these are simulations, not microbenchmarks to be repeated), then
prints the series and writes it under ``benchmarks/results/`` so the
output survives pytest's capture.

Scale knobs (environment):

* ``REPRO_BENCH_SCALE``   — workload scale factor (default 0.25);
* ``REPRO_BENCH_THREADS`` — comma-separated thread counts (default
  ``2,8,32``; the paper sweeps 2,4,8,16,32).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.experiments import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """One run cache shared by every figure in the session."""
    return ExperimentContext()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Print a figure's text and persist it to results/<name>.txt."""

    def _publish(name: str, text: str) -> None:
        print("\n" + text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _publish


def once(benchmark, fn):
    """Run a whole-figure experiment exactly once under the timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
