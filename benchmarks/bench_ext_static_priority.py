"""Extension — static pre-assigned priority vs insts-based (§III-A).

The paper's argument for its dynamic, committed-instructions priority is
twofold: it avoids the hard problem of choosing static priorities and it
"helps quite a bit to avoid the unfair situation".  This bench measures
both halves on a symmetric contended workload: per-core commit-latency
fairness (coefficient of variation of per-core aborts) and throughput.
"""

import statistics

from conftest import once

from repro.core.extensions import STATIC_PRIORITY_SPEC
from repro.harness.systems import get_system
from repro.sim.runner import RunConfig, run_workload
from repro.workloads.registry import get_workload


def _unfairness(stats) -> float:
    """Coefficient of variation of per-core abort counts."""
    aborts = [cs.total_aborts for cs in stats.cores]
    mean = statistics.mean(aborts)
    if mean == 0:
        return 0.0
    return statistics.pstdev(aborts) / mean


def test_ext_static_priority(benchmark, ctx, publish):
    th = min(8, max(ctx.threads))

    def experiment():
        out = {}
        for label, spec in (
            ("insts (RWI)", get_system("LockillerTM-RWI")),
            ("static (RWS)", STATIC_PRIORITY_SPEC),
        ):
            stats = run_workload(
                get_workload("kmeans+"),
                RunConfig(
                    spec=spec, threads=th, scale=ctx.scale, seed=ctx.seed
                ),
            )
            out[label] = {
                "cycles": stats.execution_cycles,
                "unfairness": _unfairness(stats),
                "commit_rate": stats.commit_rate,
            }
        return out

    data = once(benchmark, experiment)
    lines = [f"Extension: static vs insts priority (kmeans+, {th} threads)"]
    for label, row in data.items():
        lines.append(
            f"  {label:14s} cycles={row['cycles']:9d} "
            f"abort-CoV={row['unfairness']:.2f} "
            f"commit={row['commit_rate']:.2f}"
        )
    publish("ext_static_priority", "\n".join(lines))

    # The dynamic policy must not lose throughput to the static one, and
    # static must not be *fairer* (the paper's unfairness argument).
    assert data["insts (RWI)"]["cycles"] <= data["static (RWS)"]["cycles"] * 1.1
    assert (
        data["static (RWS)"]["unfairness"]
        >= data["insts (RWI)"]["unfairness"] * 0.8
    )
